//! Convoy: a mobile ad-hoc network under random-waypoint motion. The
//! physical topology — and with it the overlay — reshapes continuously while
//! a command node streams position updates.
//!
//! ```sh
//! cargo run --example convoy
//! ```

use byzcast::harness::{byz_view, MobilityChoice, ScenarioConfig, Workload};
use byzcast::sim::{Field, NodeId, SimConfig, SimDuration, SimTime};

fn main() {
    let n = 40usize;
    let config = ScenarioConfig {
        seed: 3,
        n,
        sim: SimConfig {
            field: Field::new(600.0, 600.0),
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Waypoint {
            min_mps: 3.0,
            max_mps: 9.0,
            pause: SimDuration::from_secs(1),
        },
        ..ScenarioConfig::default()
    };

    let workload = Workload {
        senders: vec![NodeId(0)],
        count: 100,
        payload_bytes: 256,
        start: SimDuration::from_secs(6),
        interval: SimDuration::from_millis(400),
        drain: SimDuration::from_secs(12),
    };

    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }

    // Sample the overlay while the convoy moves.
    let mut checkpoints = Vec::new();
    let horizon = workload.horizon();
    for k in 1..=4u64 {
        let target = SimTime::ZERO + SimDuration::from_micros(horizon.as_micros() * k / 4);
        sim.run_until(target);
        let overlay: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|&id| byz_view(&sim, id).is_some_and(|node| node.is_overlay()))
            .collect();
        checkpoints.push((sim.now(), overlay));
    }

    for (t, overlay) in &checkpoints {
        println!("t={t}: overlay has {} members", overlay.len());
    }
    let (_, first) = &checkpoints[0];
    let (_, last) = &checkpoints[checkpoints.len() - 1];
    let churned = last.iter().filter(|id| !first.contains(id)).count();
    println!("overlay churn across the run: {churned} members are new since the first checkpoint");

    let summary = config.summarize_wire(&sim);
    println!(
        "delivery ratio over {} messages while moving: {:.3} (p99 latency {:.3} s)",
        summary.messages, summary.delivery_ratio, summary.p99_latency_s
    );
    println!(
        "recovery path usage: {} requests, {} recoveries",
        summary.requests, summary.recovered
    );
    assert!(
        summary.delivery_ratio > 0.9,
        "the convoy should keep delivering on the move"
    );
}
