//! Campus mesh with saboteurs: a dense static mesh where the three
//! highest-id nodes — the ones the id-based overlay election favours — turn
//! out to be mute Byzantine nodes claiming dominator status. Watch the
//! failure detectors evict them and the gossip/recovery path carry the
//! traffic meanwhile.
//!
//! ```sh
//! cargo run --example campus_mesh
//! ```

use byzcast::adversary::MutePolicy;
use byzcast::fd::TrustLevel;
use byzcast::harness::{byz_view, AdversaryKind, ScenarioConfig, Workload};
use byzcast::sim::{Field, NodeId, SimConfig, SimDuration, SimTime};

fn main() {
    let n = 60usize;
    let mutes = 3usize;
    let config = ScenarioConfig {
        seed: 7,
        n,
        sim: SimConfig {
            field: Field::new(700.0, 700.0),
            ..SimConfig::default()
        },
        adversary: Some(AdversaryKind::Mute(MutePolicy::DropData)),
        adversary_count: mutes,
        ..ScenarioConfig::default()
    };
    let saboteurs = config.adversary_set();
    println!("saboteurs (mute, claiming overlay dominator): {saboteurs:?}");

    let workload = Workload {
        senders: vec![NodeId(0), NodeId(1)],
        count: 60,
        payload_bytes: 512,
        start: SimDuration::from_secs(8),
        interval: SimDuration::from_millis(250),
        drain: SimDuration::from_secs(15),
    };

    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());

    let summary = config.summarize_wire(&sim);
    println!(
        "delivery ratio over {} messages: {:.3} (worst message {:.3})",
        summary.messages, summary.delivery_ratio, summary.min_delivery_ratio
    );
    println!(
        "recovery machinery: {} requests, {} responses served, {} messages recovered",
        summary.requests, summary.recoveries_served, summary.recovered
    );

    // How widely are the saboteurs distrusted by the end of the run?
    let now = sim.now();
    for &s in &saboteurs {
        let distrusters = (0..n as u32)
            .map(NodeId)
            .filter(|id| !saboteurs.contains(id))
            .filter(|&id| {
                byz_view(&sim, id)
                    .is_some_and(|node| node.trust_level(s, now) == TrustLevel::Untrusted)
            })
            .count();
        println!("saboteur {s} is distrusted by {distrusters} correct nodes");
    }
    println!(
        "suspicions raised: {} against saboteurs, {} false",
        summary.true_suspicions, summary.false_suspicions
    );
    assert!(
        summary.delivery_ratio > 0.95,
        "the mesh should shrug the saboteurs off"
    );
}
