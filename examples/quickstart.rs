//! Quickstart: a 25-node static ad-hoc network, one node broadcasts, watch
//! the message reach everyone through the overlay.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use byzcast::core::{ByzcastConfig, ByzcastNode};
use byzcast::crypto::{KeyRegistry, SignerId, SimScheme, Verifier};
use byzcast::harness::byz_view;
use byzcast::sim::{Field, NodeId, SimBuilder, SimConfig, SimDuration};

fn main() {
    // 25 nodes uniformly placed in 500 m × 500 m with 250 m radios: dense
    // enough that the topology is connected and the overlay has real work
    // to do (roughly 3 hops corner to corner).
    let n: u32 = 25;
    let config = SimConfig {
        seed: 42,
        field: Field::new(500.0, 500.0),
        ..SimConfig::default()
    };

    // The public-key directory the paper assumes: every node can verify
    // every other node's signatures.
    let keys: KeyRegistry<SimScheme> = KeyRegistry::generate(42, n);
    let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(keys.verifier());

    let mut sim = SimBuilder::new(config)
        .with_nodes(n as usize, |id| {
            Box::new(ByzcastNode::new(
                id,
                ByzcastConfig::default(),
                Box::new(keys.signer(SignerId(id.0))),
                Arc::clone(&verifier),
            ))
        })
        .build();

    // Let the overlay converge (beacons every second), then broadcast a
    // 512-byte message from node 0.
    sim.schedule_app_broadcast(SimDuration::from_secs(5), NodeId(0), 1, 512);
    sim.run_for(SimDuration::from_secs(12));

    let metrics = sim.metrics();
    let delivered = metrics.deliveries_of(1).count();
    println!("message 1 accepted by {delivered}/{n} nodes");

    let mut latencies: Vec<f64> = metrics
        .deliveries_of(1)
        .map(|d| {
            d.time
                .saturating_since(metrics.broadcasts[0].time)
                .as_secs_f64()
        })
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if let Some(max) = latencies.last() {
        println!("slowest accept after {max:.3} s");
    }

    let overlay: Vec<NodeId> = (0..n)
        .map(NodeId)
        .filter(|&id| byz_view(&sim, id).is_some_and(|node| node.is_overlay()))
        .collect();
    println!(
        "overlay stabilized to {} of {} nodes: {:?}",
        overlay.len(),
        n,
        overlay
    );
    println!(
        "frames on the air: {} ({} data, {} gossip)",
        metrics.frames_sent,
        metrics.frames_of_kind("data"),
        metrics.frames_of_kind("gossip"),
    );
    assert!(
        delivered as u32 >= n - 1,
        "quickstart should reach (almost) everyone"
    );
}
