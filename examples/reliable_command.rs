//! Reliable delivery on top of semi-reliable broadcast — the paper's
//! footnote 4: "Clearly, with this property [eventual dissemination] it is
//! possible to implement a reliable delivery mechanism."
//!
//! A commander broadcasts an order and keeps re-broadcasting it until every
//! soldier's (broadcast) acknowledgement has come back. The application
//! layer drives the simulation in one-second slices, reacting to deliveries
//! — the pattern a real application built on this library would use.
//!
//! ```sh
//! cargo run --release --example reliable_command
//! ```

use std::collections::BTreeSet;

use byzcast::harness::ScenarioConfig;
use byzcast::sim::{Field, NodeId, SimConfig, SimDuration};

/// Payload-id encoding for the toy application protocol.
const ORDER_BASE: u64 = 1; // order re-broadcast k uses id ORDER_BASE + k
const ACK_BASE: u64 = 1_000; // ack for order copy k by soldier s: ACK_BASE + k*1000 + s

fn main() {
    let n = 30usize;
    let commander = NodeId(0);
    let config = ScenarioConfig {
        seed: 17,
        n,
        sim: SimConfig {
            field: Field::new(520.0, 520.0),
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    let mut sim = config.build_wire_sim();

    // Warm-up, then the first copy of the order.
    let mut order_copies = 0u64;
    sim.schedule_app_broadcast(SimDuration::from_secs(5), commander, ORDER_BASE, 256);
    order_copies += 1;

    let mut acked: BTreeSet<NodeId> = BTreeSet::new();
    // (soldier, order copy) pairs already acknowledged: a soldier re-acks
    // each retransmitted copy it sees, so one lost ack is not fatal.
    let mut ack_sent: BTreeSet<(NodeId, u64)> = BTreeSet::new();
    let slice = SimDuration::from_secs(1);
    let mut last_rebroadcast_at = 5u64;

    for second in 6..120u64 {
        sim.run_for(slice);
        let metrics = sim.metrics();

        // Soldiers ack each order copy they have received (once per copy):
        // a retransmitted order doubles as "please re-ack".
        let order_receptions: BTreeSet<(NodeId, u64)> = metrics
            .deliveries
            .iter()
            .filter(|d| d.payload_id < ACK_BASE)
            .map(|d| (d.node, d.payload_id))
            .collect();
        for &(soldier, copy) in &order_receptions {
            if soldier != commander && ack_sent.insert((soldier, copy)) {
                sim.schedule_app_broadcast(
                    SimDuration::from_secs(second),
                    soldier,
                    ACK_BASE + copy * 1_000 + u64::from(soldier.0),
                    64,
                );
            }
        }

        // The commander collects acks.
        acked = sim
            .metrics()
            .deliveries
            .iter()
            .filter(|d| d.node == commander && d.payload_id >= ACK_BASE)
            .map(|d| NodeId(((d.payload_id - ACK_BASE) % 1_000) as u32))
            .collect();
        if acked.len() == n - 1 {
            println!("t={second:>3}s  all {} acks collected", n - 1);
            break;
        }

        // Retransmit the order every 10 s while acks are missing — the
        // reliability loop footnote 4 alludes to.
        if second - last_rebroadcast_at >= 10 {
            order_copies += 1;
            sim.schedule_app_broadcast(
                SimDuration::from_secs(second),
                commander,
                ORDER_BASE + order_copies - 1,
                256,
            );
            last_rebroadcast_at = second;
            println!(
                "t={second:>3}s  {} of {} acks — retransmitting order (copy {order_copies})",
                acked.len(),
                n - 1
            );
        } else if second % 5 == 0 {
            println!("t={second:>3}s  {} of {} acks", acked.len(), n - 1);
        }
    }

    let distinct_ackers: BTreeSet<NodeId> = ack_sent.iter().map(|&(s, _)| s).collect();
    println!(
        "\nreliable delivery achieved with {order_copies} order cop{} and {} ack broadcasts from {} soldiers",
        if order_copies == 1 { "y" } else { "ies" },
        ack_sent.len(),
        distinct_ackers.len(),
    );
    println!(
        "total frames on the air: {} ({} data)",
        sim.metrics().frames_sent,
        sim.metrics().frames_of_kind("data"),
    );
    assert_eq!(acked.len(), n - 1, "not every soldier's ack arrived");
}
