//! The paper's Figure-5 worst case, live: a chain in which **every overlay
//! node is Byzantine**, so "all messages will be disseminated using the
//! gossip-request mechanism". Watch each hop cost roughly one
//! gossip/request/rebroadcast cycle, and check the measured dissemination
//! time against the §3.5 analysis bounds.
//!
//! ```sh
//! cargo run --release --example worst_case_chain
//! ```

use byzcast::harness::{figure5_worst_case, Workload};
use byzcast::sim::{NodeId, SimDuration, SimTime};

fn main() {
    let correct = 8usize;
    let config = figure5_worst_case(correct, 1);
    let n = config.n;
    println!(
        "chain of {n}: {correct} correct nodes on a line, {} mute Byzantine nodes with the \
         highest ids interleaved — every correct node prunes itself, the overlay is mutes-only",
        n - correct
    );

    let workload = Workload {
        senders: vec![NodeId(0)],
        count: 6,
        payload_bytes: 256,
        start: SimDuration::from_secs(8),
        interval: SimDuration::from_secs(2),
        drain: SimDuration::from_secs(60),
    };
    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());

    // Per-hop arrival times of the first message at the correct nodes.
    let m = sim.metrics();
    let b0 = m.broadcasts[0];
    println!("\nfirst message's march down the chain (gossip → request → rebroadcast per hop):");
    let mut arrivals: Vec<(NodeId, f64)> = m
        .deliveries_of(b0.payload_id)
        .map(|d| (d.node, d.time.saturating_since(b0.time).as_secs_f64()))
        .collect();
    arrivals.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (node, at) in &arrivals {
        println!("  {node:>4} accepted after {at:7.3} s");
    }

    let summary = config.summarize_wire(&sim);
    let beta = SimDuration::from_micros(config.sim.radio.air_time_us(2700));
    let max_timeout = config.byzcast.max_timeout(beta);
    println!("\ndelivery ratio: {:.3}", summary.delivery_ratio);
    println!(
        "slowest accept: {:.2} s — static bound max_timeout·n/2 = {:.2} s, Thm 3.4 bound = {:.2} s",
        summary.max_latency_s,
        max_timeout.saturating_mul(n as u64 / 2).as_secs_f64(),
        max_timeout.saturating_mul(n as u64 - 1).as_secs_f64(),
    );
    println!(
        "recovery machinery carried the run: {} requests, {} responses served",
        summary.requests, summary.recoveries_served
    );
    assert_eq!(summary.delivery_ratio, 1.0);
}
