//! Adversary gauntlet: run the same network against every Byzantine
//! behaviour model in the fault taxonomy of paper §2.1 — "Byzantine
//! processes may fail to send messages, send too many messages, send
//! messages with false information" — and report how delivery, recovery and
//! suspicion respond to each.
//!
//! ```sh
//! cargo run --example adversary_gauntlet
//! ```

use byzcast::adversary::MutePolicy;
use byzcast::harness::{AdversaryKind, ScenarioConfig, Table, Workload};
use byzcast::sim::{Field, NodeId, SimConfig, SimDuration};

fn main() {
    let gauntlet: Vec<(&str, AdversaryKind)> = vec![
        (
            "mute (drop data)",
            AdversaryKind::Mute(MutePolicy::DropData),
        ),
        (
            "mute (drop data+gossip)",
            AdversaryKind::Mute(MutePolicy::DropDataAndGossip),
        ),
        ("silent (crash-like)", AdversaryKind::Silent),
        ("forger (tampers payloads)", AdversaryKind::Forger),
        (
            "verbose (request spam)",
            AdversaryKind::Verbose {
                period: SimDuration::from_millis(200),
                per_tick: 5,
            },
        ),
        ("gossip liar", AdversaryKind::GossipLiar),
        (
            "selective forwarder (censors node 0)",
            AdversaryKind::SelectiveForwarder(vec![NodeId(0)]),
        ),
        (
            "impersonator (frames node 0)",
            AdversaryKind::Impersonator { victim: NodeId(0) },
        ),
    ];

    let workload = Workload {
        senders: vec![NodeId(0), NodeId(1)],
        count: 40,
        payload_bytes: 512,
        start: SimDuration::from_secs(8),
        interval: SimDuration::from_millis(250),
        drain: SimDuration::from_secs(12),
    };

    let mut table = Table::new([
        "adversary",
        "delivery",
        "min-delivery",
        "requests",
        "recovered",
        "suspicions(T/F)",
    ]);

    // Baseline without any adversary, for reference.
    let base = ScenarioConfig {
        seed: 11,
        n: 50,
        sim: SimConfig {
            field: Field::new(650.0, 650.0),
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    let clean = base.run(&workload);
    table.add_row([
        "(none)".to_owned(),
        format!("{:.3}", clean.delivery_ratio),
        format!("{:.3}", clean.min_delivery_ratio),
        clean.requests.to_string(),
        clean.recovered.to_string(),
        format!("{}/{}", clean.true_suspicions, clean.false_suspicions),
    ]);

    for (label, adversary) in gauntlet {
        let config = ScenarioConfig {
            adversary: Some(adversary),
            adversary_count: 5,
            ..base.clone()
        };
        let s = config.run(&workload);
        table.add_row([
            label.to_owned(),
            format!("{:.3}", s.delivery_ratio),
            format!("{:.3}", s.min_delivery_ratio),
            s.requests.to_string(),
            s.recovered.to_string(),
            format!("{}/{}", s.true_suspicions, s.false_suspicions),
        ]);
        assert!(
            s.delivery_ratio > 0.85,
            "{label}: delivery collapsed to {}",
            s.delivery_ratio
        );
    }
    print!("{table}");
    println!();
    println!("every adversary model leaves delivery essentially intact —");
    println!("signatures catch forgery, recovery routes around the mutes,");
    println!("and the failure detectors convert misbehaviour into distrust.");
}
