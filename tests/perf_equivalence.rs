//! Differential determinism: the PR-2 performance machinery (spatial grids
//! in the engine, per-node signature-verification caches, fixed-base
//! exponentiation tables) must not change a single observable result.
//!
//! Each test runs one mid-size **mobile** byzcast scenario twice per seed —
//! everything enabled vs. the naive paths — and asserts the summaries and
//! the per-run JSONL records are byte-identical. The only tolerated
//! difference is the `sig_cache_hits`/`sig_cache_misses` counters, which are
//! observability *of the cache itself* (necessarily zero when it is off);
//! the test masks them after asserting the cached run actually used the
//! cache.

use byzcast_core::{RecoveryConfig, ResourceConfig};
use byzcast_harness::record::{run_record, RecordMeta};
use byzcast_harness::{MobilityChoice, ScenarioConfig, Workload};
use byzcast_sim::{Field, SimConfig, SimDuration};

fn scenario(seed: u64, optimized: bool) -> ScenarioConfig {
    let mut config = ScenarioConfig {
        seed,
        n: 40,
        sim: SimConfig {
            field: Field::new(700.0, 700.0),
            mobility_tick: SimDuration::from_millis(100),
            spatial_index: optimized,
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Waypoint {
            min_mps: 1.0,
            max_mps: 15.0,
            pause: SimDuration::from_secs(1),
        },
        ..ScenarioConfig::default()
    };
    config.byzcast.sig_cache_capacity = if optimized { 512 } else { 0 };
    config
}

fn workload() -> Workload {
    Workload {
        count: 5,
        payload_bytes: 512,
        start: SimDuration::from_secs(4),
        interval: SimDuration::from_secs(1),
        drain: SimDuration::from_secs(10),
        ..Workload::default()
    }
}

#[test]
fn optimized_run_is_byte_identical_to_naive_for_three_seeds() {
    for seed in [1, 2, 3] {
        let naive = scenario(seed, false).run(&workload());
        let mut optimized = scenario(seed, true).run(&workload());

        // The scenario must be non-trivial and the cache actually exercised,
        // otherwise equality proves nothing.
        assert!(
            optimized.delivery_ratio > 0.5 && optimized.frames_sent > 500,
            "seed {seed}: scenario too trivial (ratio {}, frames {})",
            optimized.delivery_ratio,
            optimized.frames_sent
        );
        let counters = optimized.counters.as_mut().expect("byzcast counters");
        assert!(
            counters.sig_cache_hits > 0,
            "seed {seed}: signature cache never hit"
        );
        // Mask the cache's own observability counters; every *simulation*
        // quantity must match exactly.
        counters.sig_cache_hits = 0;
        counters.sig_cache_misses = 0;

        assert_eq!(naive, optimized, "seed {seed}: summaries diverged");

        // And the full JSONL records agree byte for byte.
        let params = vec![("seed".to_owned(), seed.to_string())];
        let record = |summary| {
            run_record(
                &RecordMeta {
                    experiment: "perf_equivalence",
                    label: "mobile-40",
                    params: &params,
                    seed,
                    run_index: 0,
                    wall_ms: 0.0, // wall-clock differs by construction
                },
                summary,
                &[],
            )
        };
        assert_eq!(
            record(&naive),
            record(&optimized),
            "seed {seed}: JSONL records diverged"
        );
    }
}

#[test]
fn generous_governance_envelope_is_decision_free() {
    // The resource-governance layer must be pure bookkeeping until a limit
    // actually binds: a run under an envelope too generous to ever deny
    // anything must match the ungoverned run in every simulation observable.
    // The only tolerated difference is the `resources` stats section itself,
    // which exists precisely when governance is on — the test asserts the
    // stats prove traffic flowed through the admission path, then masks the
    // section and requires byte-identical summaries and JSONL records.
    let generous = ResourceConfig {
        frames_per_sec: 1_000_000,
        frame_burst: 1_000_000,
        verifs_per_sec: 1_000_000,
        verif_burst: 1_000_000,
        max_store_msgs: 1 << 30,
        max_store_bytes: 1 << 40,
        max_seen_ids: 1 << 30,
        max_gossip_per_origin: 1 << 30,
        max_missing_per_origin: 1 << 30,
    };
    for seed in [1, 2, 3] {
        let ungoverned = scenario(seed, true).run(&workload());
        let mut governed_scenario = scenario(seed, true);
        governed_scenario.byzcast.resources = generous;
        let mut governed = governed_scenario.run(&workload());

        let stats = governed.resources.take().expect("governed stats");
        assert!(
            stats.frames_admitted > 0 && stats.verifs_charged > 0,
            "seed {seed}: the admission path was never exercised: {stats:?}"
        );
        assert_eq!(
            stats.frames_dropped + stats.verifs_dropped + stats.store_rejects + stats.quota_drops,
            0,
            "seed {seed}: a generous envelope denied something: {stats:?}"
        );
        assert_eq!(ungoverned, governed, "seed {seed}: summaries diverged");

        let params = vec![("seed".to_owned(), seed.to_string())];
        let record = |summary| {
            run_record(
                &RecordMeta {
                    experiment: "perf_equivalence",
                    label: "mobile-40-governed",
                    params: &params,
                    seed,
                    run_index: 0,
                    wall_ms: 0.0,
                },
                summary,
                &[],
            )
        };
        assert_eq!(
            record(&ungoverned),
            record(&governed),
            "seed {seed}: JSONL records diverged"
        );
    }
}

#[test]
fn dormant_recovery_envelope_is_decision_free() {
    // The recovery-escalation layer must be pure bookkeeping until it
    // actually triggers: a run with the envelope *on* but thresholds no
    // healthy retry ever reaches must match the default-off run in every
    // simulation observable. The only tolerated difference is the
    // `recovery` stats section itself, which exists precisely when the
    // envelope is on — the test asserts the stats prove the layer stayed
    // dormant, then masks the section and requires byte-identical summaries
    // and JSONL records.
    //
    // Liveness re-election is deliberately *off* here: purging an expired
    // beacon record at the failure-detector tick instead of the next beacon
    // tick is the repair feature itself (it legitimately shifts prune
    // timing), so it can never be decision-free. Its behavior is pinned by
    // the protocol unit tests and the chaos corpus instead.
    let dormant = RecoveryConfig {
        // == max_requests_per_msg: a request would have to exhaust the
        // paper's full retry budget unanswered before anything widens.
        escalate_after: 5,
        max_escalations: 4,
        backoff_base: SimDuration::from_millis(1000),
        backoff_cap: SimDuration::from_millis(4000),
        widen_fanout: 3,
        find_ttl: 3,
        reelect_on_indictment: false,
    };
    for seed in [1u64, 2, 3] {
        let off = scenario(seed, true).run(&workload());
        let mut on_scenario = scenario(seed, true);
        on_scenario.byzcast.recovery = dormant;
        let mut on = on_scenario.run(&workload());

        let stats = on
            .recovery
            .take()
            .expect("recovery-enabled runs report stats");
        assert_eq!(
            stats.requests_widened
                + stats.finds_escalated
                + stats.peak_escalation
                + stats.reelections
                + stats.neighbors_purged,
            0,
            "seed {seed}: the envelope was supposed to stay dormant: {stats:?}"
        );
        // The stats still mirror real traffic: every plain recovery request
        // the run made was counted.
        assert_eq!(
            stats.requests_originated, on.requests,
            "seed {seed}: stats disagree with the request counter"
        );
        assert_eq!(off, on, "seed {seed}: summaries diverged");

        let params = vec![("seed".to_owned(), seed.to_string())];
        let record = |summary| {
            run_record(
                &RecordMeta {
                    experiment: "perf_equivalence",
                    label: "mobile-40-recovery",
                    params: &params,
                    seed,
                    run_index: 0,
                    wall_ms: 0.0,
                },
                summary,
                &[],
            )
        };
        assert_eq!(
            record(&off),
            record(&on),
            "seed {seed}: JSONL records diverged"
        );
    }
}
