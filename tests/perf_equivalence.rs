//! Differential determinism: the PR-2 performance machinery (spatial grids
//! in the engine, per-node signature-verification caches, fixed-base
//! exponentiation tables) must not change a single observable result.
//!
//! Each test runs one mid-size **mobile** byzcast scenario twice per seed —
//! everything enabled vs. the naive paths — and asserts the summaries and
//! the per-run JSONL records are byte-identical. The only tolerated
//! difference is the `sig_cache_hits`/`sig_cache_misses` counters, which are
//! observability *of the cache itself* (necessarily zero when it is off);
//! the test masks them after asserting the cached run actually used the
//! cache.

use byzcast_harness::record::{run_record, RecordMeta};
use byzcast_harness::{MobilityChoice, ScenarioConfig, Workload};
use byzcast_sim::{Field, SimConfig, SimDuration};

fn scenario(seed: u64, optimized: bool) -> ScenarioConfig {
    let mut config = ScenarioConfig {
        seed,
        n: 40,
        sim: SimConfig {
            field: Field::new(700.0, 700.0),
            mobility_tick: SimDuration::from_millis(100),
            spatial_index: optimized,
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Waypoint {
            min_mps: 1.0,
            max_mps: 15.0,
            pause: SimDuration::from_secs(1),
        },
        ..ScenarioConfig::default()
    };
    config.byzcast.sig_cache_capacity = if optimized { 512 } else { 0 };
    config
}

fn workload() -> Workload {
    Workload {
        count: 5,
        payload_bytes: 512,
        start: SimDuration::from_secs(4),
        interval: SimDuration::from_secs(1),
        drain: SimDuration::from_secs(10),
        ..Workload::default()
    }
}

#[test]
fn optimized_run_is_byte_identical_to_naive_for_three_seeds() {
    for seed in [1, 2, 3] {
        let naive = scenario(seed, false).run(&workload());
        let mut optimized = scenario(seed, true).run(&workload());

        // The scenario must be non-trivial and the cache actually exercised,
        // otherwise equality proves nothing.
        assert!(
            optimized.delivery_ratio > 0.5 && optimized.frames_sent > 500,
            "seed {seed}: scenario too trivial (ratio {}, frames {})",
            optimized.delivery_ratio,
            optimized.frames_sent
        );
        let counters = optimized.counters.as_mut().expect("byzcast counters");
        assert!(
            counters.sig_cache_hits > 0,
            "seed {seed}: signature cache never hit"
        );
        // Mask the cache's own observability counters; every *simulation*
        // quantity must match exactly.
        counters.sig_cache_hits = 0;
        counters.sig_cache_misses = 0;

        assert_eq!(naive, optimized, "seed {seed}: summaries diverged");

        // And the full JSONL records agree byte for byte.
        let params = vec![("seed".to_owned(), seed.to_string())];
        let record = |summary| {
            run_record(
                &RecordMeta {
                    experiment: "perf_equivalence",
                    label: "mobile-40",
                    params: &params,
                    seed,
                    run_index: 0,
                    wall_ms: 0.0, // wall-clock differs by construction
                },
                summary,
                &[],
            )
        };
        assert_eq!(
            record(&naive),
            record(&optimized),
            "seed {seed}: JSONL records diverged"
        );
    }
}
