//! Replays the committed chaos corpus: every reproducer under
//! `tests/chaos_corpus/` must parse, run, and produce exactly the per-oracle
//! violation counts its `expect` lines record. The corpus pins the oracles'
//! ability to catch deliberately broken protocol behavior — if a refactor
//! makes a reproducer stop reproducing, either the bug class is genuinely
//! impossible now (regenerate the corpus) or an oracle went blind.
//!
//! A case with *no* `expect` lines is an explicitly healthy reproducer: a
//! scenario that used to violate an oracle and was fixed (e.g.
//! `crash-thin-chain`, stranded before the recovery-escalation layer). It
//! must replay with zero violations — a regression there is a fixed bug
//! coming back.

use std::path::PathBuf;

use byzcast_harness::chaos::violation_counts;
use byzcast_harness::{parse_case, run_case};

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/chaos_corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/chaos_corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "chaos"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_corpus_reproducer_replays_verbatim() {
    let files = corpus_files();
    assert!(
        files.len() >= 3,
        "corpus should hold at least the three sabotage reproducers, found {files:?}"
    );
    let mut violating = 0usize;
    for path in &files {
        let text = std::fs::read_to_string(path).expect("read corpus file");
        let case = parse_case(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if !case.expect.is_empty() {
            violating += 1;
        }
        let got = violation_counts(&run_case(&case).violations);
        assert_eq!(
            got,
            case.expect,
            "{}: reproducer no longer replays (empty expect = must run clean)",
            path.display()
        );
    }
    assert!(
        violating >= 3,
        "corpus lost its violating reproducers — the oracles are unpinned"
    );
}

#[test]
fn crash_thin_chain_replays_clean_under_recovery() {
    // The PR-4 soak found this case: a crash next to a thin chain stranded
    // 4 connected, up, correct nodes past the recovery slack, because
    // retries only travelled the stale dominator overlay. With the recovery
    // envelope on (the corpus file carries a `recovery` line) it must
    // deliver everywhere.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/chaos_corpus");
    let text =
        std::fs::read_to_string(path.join("crash-thin-chain.chaos")).expect("corpus file exists");
    let case = parse_case(&text).expect("parse");
    assert!(
        case.scenario.byzcast.recovery.enabled(),
        "the thin-chain reproducer must run with the recovery envelope on"
    );
    assert!(case.expect.is_empty(), "the case is pinned as healthy");
    let checked = run_case(&case);
    assert!(
        checked.violations.is_empty(),
        "thin-chain stranding is back: {:?}",
        checked.violations
    );
    // The clean replay must come from recovery doing work, not from the
    // topology accidentally healing: the run reports escalation activity.
    let recovery = checked
        .summary
        .recovery
        .expect("recovery-enabled runs report RecoveryStats");
    assert!(
        recovery.requests_originated > 0,
        "no recovery requests at all — the case no longer exercises the path"
    );

    // The control arm: the same case with the envelope forced off must
    // still strand the chain. If it runs clean too, the clean replay above
    // proves nothing about the recovery layer.
    let mut control = case;
    control.scenario.byzcast.recovery = byzcast_core::RecoveryConfig::off();
    let stranded = run_case(&control);
    let semi = stranded
        .violations
        .iter()
        .filter(|v| v.oracle == "semi-reliability")
        .count();
    assert!(
        semi > 0,
        "the thin-chain case no longer strands without recovery — regenerate it"
    );
}

#[test]
fn corpus_violations_vanish_without_the_sabotage() {
    // The control arm: the same scenarios run clean once the deliberately
    // broken delivery layer is removed, so the corpus findings are caused by
    // the sabotage, not by the topology or workload.
    for path in &corpus_files() {
        let text = std::fs::read_to_string(path).expect("read corpus file");
        let mut case = parse_case(&text).expect("parse corpus file");
        if case.scenario.sabotage.is_none() {
            continue;
        }
        case.scenario.sabotage = None;
        let checked = run_case(&case);
        assert!(
            checked.violations.is_empty(),
            "{}: violations persist without sabotage: {:?}",
            path.display(),
            checked.violations
        );
    }
}

#[test]
fn corpus_covers_three_distinct_oracles() {
    let mut oracles = std::collections::BTreeSet::new();
    for path in &corpus_files() {
        let text = std::fs::read_to_string(path).expect("read corpus file");
        let case = parse_case(&text).expect("parse corpus file");
        oracles.extend(case.expect.iter().map(|(o, _)| o.clone()));
    }
    for needed in ["validity", "no-duplication", "semi-reliability"] {
        assert!(
            oracles.contains(needed),
            "corpus lost its {needed} reproducer (has {oracles:?})"
        );
    }
}
