//! Replays the committed chaos corpus: every reproducer under
//! `tests/chaos_corpus/` must parse, run, and produce exactly the per-oracle
//! violation counts its `expect` lines record. The corpus pins the oracles'
//! ability to catch deliberately broken protocol behavior — if a refactor
//! makes a reproducer stop reproducing, either the bug class is genuinely
//! impossible now (regenerate the corpus) or an oracle went blind.

use std::path::PathBuf;

use byzcast_harness::chaos::violation_counts;
use byzcast_harness::{parse_case, run_case};

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/chaos_corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/chaos_corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "chaos"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_corpus_reproducer_replays_verbatim() {
    let files = corpus_files();
    assert!(
        files.len() >= 3,
        "corpus should hold at least the three sabotage reproducers, found {files:?}"
    );
    for path in &files {
        let text = std::fs::read_to_string(path).expect("read corpus file");
        let case = parse_case(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            !case.expect.is_empty(),
            "{}: corpus reproducers must record what they reproduce",
            path.display()
        );
        let got = violation_counts(&run_case(&case).violations);
        assert_eq!(
            got,
            case.expect,
            "{}: reproducer no longer replays",
            path.display()
        );
    }
}

#[test]
fn corpus_violations_vanish_without_the_sabotage() {
    // The control arm: the same scenarios run clean once the deliberately
    // broken delivery layer is removed, so the corpus findings are caused by
    // the sabotage, not by the topology or workload.
    for path in &corpus_files() {
        let text = std::fs::read_to_string(path).expect("read corpus file");
        let mut case = parse_case(&text).expect("parse corpus file");
        if case.scenario.sabotage.is_none() {
            continue;
        }
        case.scenario.sabotage = None;
        let checked = run_case(&case);
        assert!(
            checked.violations.is_empty(),
            "{}: violations persist without sabotage: {:?}",
            path.display(),
            checked.violations
        );
    }
}

#[test]
fn corpus_covers_three_distinct_oracles() {
    let mut oracles = std::collections::BTreeSet::new();
    for path in &corpus_files() {
        let text = std::fs::read_to_string(path).expect("read corpus file");
        let case = parse_case(&text).expect("parse corpus file");
        oracles.extend(case.expect.iter().map(|(o, _)| o.clone()));
    }
    for needed in ["validity", "no-duplication", "semi-reliability"] {
        assert!(
            oracles.contains(needed),
            "corpus lost its {needed} reproducer (has {oracles:?})"
        );
    }
}
