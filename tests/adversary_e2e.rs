//! End-to-end runs against the standalone adversaries: a gossip liar (lies
//! about holding messages, ignores the resulting requests), an impersonator
//! (injects frames forged in a victim's name), a selective forwarder, a
//! verbose spammer, and a replayer (re-injects captured frames after their
//! bodies have been purged). The protocol must shrug them all off — every
//! correct node delivers everything exactly once — and the failure
//! detectors must end up suspecting the adversary, not a correct node.

use byzcast_harness::{check_run, standard_oracles, AdversaryKind, ScenarioConfig, Workload};
use byzcast_sim::{Field, NodeId, SimConfig, SimDuration};

fn dense_scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        n: 25,
        sim: SimConfig {
            field: Field::new(500.0, 500.0),
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

fn workload() -> Workload {
    Workload {
        senders: vec![NodeId(0)],
        count: 5,
        payload_bytes: 256,
        start: SimDuration::from_secs(5),
        interval: SimDuration::from_secs(1),
        drain: SimDuration::from_secs(15),
    }
}

#[test]
fn gossip_liar_is_suspected_and_harmless() {
    let mut scenario = dense_scenario(2);
    scenario
        .adversary_assignments
        .push((NodeId(24), AdversaryKind::GossipLiar));
    let summary = scenario.run(&workload());
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "a gossip liar must not cost any correct node a delivery: {summary:?}"
    );
    assert!(
        summary.true_suspicions > 0,
        "no detector ever suspected the liar: {summary:?}"
    );
    assert_eq!(
        summary.false_suspicions, 0,
        "the liar got a correct node suspected: {summary:?}"
    );
}

#[test]
fn impersonator_is_suspected_and_its_victim_is_not() {
    let mut scenario = dense_scenario(3);
    scenario.adversary_assignments.push((
        NodeId(24),
        AdversaryKind::Impersonator { victim: NodeId(1) },
    ));
    let summary = scenario.run(&workload());
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "forged frames must not cost any correct node a delivery: {summary:?}"
    );
    assert!(
        summary.true_suspicions > 0,
        "no detector ever suspected the impersonator: {summary:?}"
    );
    assert_eq!(
        summary.false_suspicions, 0,
        "the impersonation framed a correct node: {summary:?}"
    );
    let forged = summary
        .counters
        .as_ref()
        .map_or(0, |c| c.bad_signatures_seen);
    assert!(
        forged > 0,
        "the impersonator's forgeries never reached a verifier: {summary:?}"
    );
}

#[test]
fn selective_forwarder_cannot_starve_its_victim() {
    let mut scenario = dense_scenario(5);
    scenario.adversary_assignments.push((
        NodeId(24),
        AdversaryKind::SelectiveForwarder(vec![NodeId(0)]),
    ));
    let summary = scenario.run(&workload());
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "overlay redundancy must route around a selective forwarder: {summary:?}"
    );
    assert_eq!(
        summary.false_suspicions, 0,
        "the selective forwarder got a correct node suspected: {summary:?}"
    );
}

#[test]
fn verbose_spammer_is_suspected_and_harmless() {
    let mut scenario = dense_scenario(6);
    scenario.adversary_assignments.push((
        NodeId(24),
        AdversaryKind::Verbose {
            period: SimDuration::from_millis(500),
            per_tick: 3,
        },
    ));
    let summary = scenario.run(&workload());
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "gossip spam must not cost any correct node a delivery: {summary:?}"
    );
    assert!(
        summary.true_suspicions > 0,
        "no detector ever suspected the verbose spammer: {summary:?}"
    );
    assert_eq!(
        summary.false_suspicions, 0,
        "the spam got a correct node suspected: {summary:?}"
    );
}

#[test]
fn replayed_frames_after_body_purge_are_still_duplicates() {
    // The replay hole this pins shut: with `purge_after` well under the
    // replay delay, every captured body (and, before the fix, its seen-id
    // four holds later) would be long gone when the replayer re-injects the
    // frame — which then carried a valid signature and a fresh-looking id.
    // Seen-ids are now retained for the life of the run (bounded only by
    // the configured cap), so the replay must be recognised as a duplicate
    // by every correct node: the no-duplication oracle stays clean.
    let mut scenario = dense_scenario(7);
    scenario.byzcast.purge_after = SimDuration::from_secs(2);
    scenario.adversary_assignments.push((
        NodeId(24),
        AdversaryKind::Replayer {
            delay: SimDuration::from_secs(10),
        },
    ));
    let checked = check_run(&scenario, &workload(), &standard_oracles());
    let dups = checked
        .violations
        .iter()
        .filter(|v| v.oracle == "no-duplication")
        .count();
    assert_eq!(
        dups, 0,
        "replayed frames were re-delivered: {:?}",
        checked.violations
    );
    assert_eq!(
        checked.summary.min_delivery_ratio, 1.0,
        "the replayer cost a correct node a delivery: {:?}",
        checked.summary
    );
}

#[test]
fn mixed_adversary_assignments_compose() {
    // One of each, at the overlay-election-winning ids: the protocol rides
    // out a liar and an impersonator at once.
    let mut scenario = dense_scenario(4);
    scenario
        .adversary_assignments
        .push((NodeId(24), AdversaryKind::GossipLiar));
    scenario.adversary_assignments.push((
        NodeId(23),
        AdversaryKind::Impersonator { victim: NodeId(2) },
    ));
    let summary = scenario.run(&workload());
    assert_eq!(summary.correct, 23);
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "mixed adversaries broke delivery: {summary:?}"
    );
    assert_eq!(summary.false_suspicions, 0, "{summary:?}");
}
