//! End-to-end runs against the standalone adversaries: a gossip liar (lies
//! about holding messages, ignores the resulting requests) and an
//! impersonator (injects frames forged in a victim's name). The protocol
//! must shrug both off — every correct node delivers everything — and the
//! failure detectors must end up suspecting the adversary, not the victim.

use byzcast_harness::{AdversaryKind, ScenarioConfig, Workload};
use byzcast_sim::{Field, NodeId, SimConfig, SimDuration};

fn dense_scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        n: 25,
        sim: SimConfig {
            field: Field::new(500.0, 500.0),
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

fn workload() -> Workload {
    Workload {
        senders: vec![NodeId(0)],
        count: 5,
        payload_bytes: 256,
        start: SimDuration::from_secs(5),
        interval: SimDuration::from_secs(1),
        drain: SimDuration::from_secs(15),
    }
}

#[test]
fn gossip_liar_is_suspected_and_harmless() {
    let mut scenario = dense_scenario(2);
    scenario
        .adversary_assignments
        .push((NodeId(24), AdversaryKind::GossipLiar));
    let summary = scenario.run(&workload());
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "a gossip liar must not cost any correct node a delivery: {summary:?}"
    );
    assert!(
        summary.true_suspicions > 0,
        "no detector ever suspected the liar: {summary:?}"
    );
    assert_eq!(
        summary.false_suspicions, 0,
        "the liar got a correct node suspected: {summary:?}"
    );
}

#[test]
fn impersonator_is_suspected_and_its_victim_is_not() {
    let mut scenario = dense_scenario(3);
    scenario.adversary_assignments.push((
        NodeId(24),
        AdversaryKind::Impersonator { victim: NodeId(1) },
    ));
    let summary = scenario.run(&workload());
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "forged frames must not cost any correct node a delivery: {summary:?}"
    );
    assert!(
        summary.true_suspicions > 0,
        "no detector ever suspected the impersonator: {summary:?}"
    );
    assert_eq!(
        summary.false_suspicions, 0,
        "the impersonation framed a correct node: {summary:?}"
    );
    let forged = summary
        .counters
        .as_ref()
        .map_or(0, |c| c.bad_signatures_seen);
    assert!(
        forged > 0,
        "the impersonator's forgeries never reached a verifier: {summary:?}"
    );
}

#[test]
fn mixed_adversary_assignments_compose() {
    // One of each, at the overlay-election-winning ids: the protocol rides
    // out a liar and an impersonator at once.
    let mut scenario = dense_scenario(4);
    scenario
        .adversary_assignments
        .push((NodeId(24), AdversaryKind::GossipLiar));
    scenario.adversary_assignments.push((
        NodeId(23),
        AdversaryKind::Impersonator { victim: NodeId(2) },
    ));
    let summary = scenario.run(&workload());
    assert_eq!(summary.correct, 23);
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "mixed adversaries broke delivery: {summary:?}"
    );
    assert_eq!(summary.false_suspicions, 0, "{summary:?}");
}
