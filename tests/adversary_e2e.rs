//! End-to-end runs against the standalone adversaries: a gossip liar (lies
//! about holding messages, ignores the resulting requests), an impersonator
//! (injects frames forged in a victim's name), a selective forwarder, a
//! verbose spammer, and a replayer (re-injects captured frames after their
//! bodies have been purged). The protocol must shrug them all off — every
//! correct node delivers everything exactly once — and the failure
//! detectors must end up suspecting the adversary, not a correct node.

use byzcast_core::RecoveryConfig;
use byzcast_harness::{
    check_run, standard_oracles, AdversaryKind, MobilityChoice, ScenarioConfig, Workload,
};
use byzcast_sim::{FaultKind, Field, NodeId, Position, RadioConfig, SimConfig, SimDuration};

fn dense_scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        n: 25,
        sim: SimConfig {
            field: Field::new(500.0, 500.0),
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

fn workload() -> Workload {
    Workload {
        senders: vec![NodeId(0)],
        count: 5,
        payload_bytes: 256,
        start: SimDuration::from_secs(5),
        interval: SimDuration::from_secs(1),
        drain: SimDuration::from_secs(15),
    }
}

#[test]
fn gossip_liar_is_suspected_and_harmless() {
    let mut scenario = dense_scenario(2);
    scenario
        .adversary_assignments
        .push((NodeId(24), AdversaryKind::GossipLiar));
    let summary = scenario.run(&workload());
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "a gossip liar must not cost any correct node a delivery: {summary:?}"
    );
    assert!(
        summary.true_suspicions > 0,
        "no detector ever suspected the liar: {summary:?}"
    );
    assert_eq!(
        summary.false_suspicions, 0,
        "the liar got a correct node suspected: {summary:?}"
    );
}

#[test]
fn impersonator_is_suspected_and_its_victim_is_not() {
    let mut scenario = dense_scenario(3);
    scenario.adversary_assignments.push((
        NodeId(24),
        AdversaryKind::Impersonator { victim: NodeId(1) },
    ));
    let summary = scenario.run(&workload());
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "forged frames must not cost any correct node a delivery: {summary:?}"
    );
    assert!(
        summary.true_suspicions > 0,
        "no detector ever suspected the impersonator: {summary:?}"
    );
    assert_eq!(
        summary.false_suspicions, 0,
        "the impersonation framed a correct node: {summary:?}"
    );
    let forged = summary
        .counters
        .as_ref()
        .map_or(0, |c| c.bad_signatures_seen);
    assert!(
        forged > 0,
        "the impersonator's forgeries never reached a verifier: {summary:?}"
    );
}

#[test]
fn selective_forwarder_cannot_starve_its_victim() {
    let mut scenario = dense_scenario(5);
    scenario.adversary_assignments.push((
        NodeId(24),
        AdversaryKind::SelectiveForwarder(vec![NodeId(0)]),
    ));
    let summary = scenario.run(&workload());
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "overlay redundancy must route around a selective forwarder: {summary:?}"
    );
    assert_eq!(
        summary.false_suspicions, 0,
        "the selective forwarder got a correct node suspected: {summary:?}"
    );
}

#[test]
fn verbose_spammer_is_suspected_and_harmless() {
    let mut scenario = dense_scenario(6);
    scenario.adversary_assignments.push((
        NodeId(24),
        AdversaryKind::Verbose {
            period: SimDuration::from_millis(500),
            per_tick: 3,
        },
    ));
    let summary = scenario.run(&workload());
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "gossip spam must not cost any correct node a delivery: {summary:?}"
    );
    assert!(
        summary.true_suspicions > 0,
        "no detector ever suspected the verbose spammer: {summary:?}"
    );
    assert_eq!(
        summary.false_suspicions, 0,
        "the spam got a correct node suspected: {summary:?}"
    );
}

#[test]
fn replayed_frames_after_body_purge_are_still_duplicates() {
    // The replay hole this pins shut: with `purge_after` well under the
    // replay delay, every captured body (and, before the fix, its seen-id
    // four holds later) would be long gone when the replayer re-injects the
    // frame — which then carried a valid signature and a fresh-looking id.
    // Seen-ids are now retained for the life of the run (bounded only by
    // the configured cap), so the replay must be recognised as a duplicate
    // by every correct node: the no-duplication oracle stays clean.
    let mut scenario = dense_scenario(7);
    scenario.byzcast.purge_after = SimDuration::from_secs(2);
    scenario.adversary_assignments.push((
        NodeId(24),
        AdversaryKind::Replayer {
            delay: SimDuration::from_secs(10),
        },
    ));
    let checked = check_run(&scenario, &workload(), &standard_oracles());
    let dups = checked
        .violations
        .iter()
        .filter(|v| v.oracle == "no-duplication")
        .count();
    assert_eq!(
        dups, 0,
        "replayed frames were re-delivered: {:?}",
        checked.violations
    );
    assert_eq!(
        checked.summary.min_delivery_ratio, 1.0,
        "the replayer cost a correct node a delivery: {:?}",
        checked.summary
    );
}

/// A hand-built thin-chain topology (ideal-disk radio, 250 m range):
///
/// ```text
/// cluster 0-1-2 --- 3 (spare bridge, passive: covered by 7)
///              \--- 7 (dominator bridge, highest id) --- 4 --- 5 --- 6
/// ```
///
/// Node 7 wins the id-based election and is the chain's only *active*
/// gateway; node 3 covers the same cut but self-prunes. Crashing 7 before
/// the broadcast leaves the chain connected (through 3) but served only by
/// a stale overlay — the shape the PR-4 soak found stranding nodes past the
/// recovery slack.
fn thin_chain_scenario(crash_at: SimDuration) -> ScenarioConfig {
    let positions = vec![
        Position::new(50.0, 50.0),   // 0: sender
        Position::new(150.0, 50.0),  // 1: cluster
        Position::new(250.0, 50.0),  // 2: cluster edge, reaches both bridges
        Position::new(380.0, 120.0), // 3: spare bridge (passive under 7)
        Position::new(600.0, 50.0),  // 4: chain hop 1
        Position::new(800.0, 50.0),  // 5: chain hop 2
        Position::new(1000.0, 50.0), // 6: chain hop 3
        Position::new(380.0, 50.0),  // 7: doomed bridge, wins the election
    ];
    let mut scenario = ScenarioConfig {
        seed: 11,
        n: positions.len(),
        sim: SimConfig {
            field: Field::new(1100.0, 200.0),
            radio: RadioConfig::ideal_disk(250.0),
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Explicit(positions),
        ..ScenarioConfig::default()
    };
    scenario.fault_plan.push(
        crash_at,
        FaultKind::Crash {
            node: NodeId(7),
            retain_state: false,
        },
    );
    scenario
}

fn chain_workload() -> Workload {
    Workload {
        senders: vec![NodeId(0)],
        count: 1,
        payload_bytes: 256,
        start: SimDuration::from_secs(5),
        interval: SimDuration::from_secs(1),
        drain: SimDuration::from_secs(18),
    }
}

#[test]
fn crash_adjacent_to_thin_chain_recovers_within_slack() {
    // The bridge crashes a second before the broadcast: the chain is still
    // connected (through the spare bridge) but every overlay decision near
    // the cut is stale. With the recovery envelope on, the liveness repair
    // must purge the dead dominator, re-elect, and deliver to every up node
    // within the semi-reliability slack.
    let mut scenario = thin_chain_scenario(SimDuration::from_secs(4));
    scenario.byzcast.recovery = RecoveryConfig::standard();
    let checked = check_run(&scenario, &chain_workload(), &standard_oracles());
    let semi = checked
        .violations
        .iter()
        .filter(|v| v.oracle == "semi-reliability")
        .count();
    assert_eq!(
        semi, 0,
        "a chain node stayed stranded past the slack: {:?}",
        checked.violations
    );
    // Only the crashed bridge itself may miss the message.
    assert!(
        checked.summary.min_delivery_ratio >= 7.0 / 8.0,
        "an up node missed the broadcast: {:?}",
        checked.summary
    );
    let recovery = checked
        .summary
        .recovery
        .expect("recovery-enabled runs report RecoveryStats");
    assert!(
        recovery.neighbors_purged >= 1 && recovery.reelections >= 1,
        "the dead dominator was never purged from the overlay: {recovery:?}"
    );
    assert!(
        recovery.requests_originated >= 1,
        "the chain never exercised the request path: {recovery:?}"
    );
}

#[test]
fn mixed_adversary_assignments_compose() {
    // One of each, at the overlay-election-winning ids: the protocol rides
    // out a liar and an impersonator at once.
    let mut scenario = dense_scenario(4);
    scenario
        .adversary_assignments
        .push((NodeId(24), AdversaryKind::GossipLiar));
    scenario.adversary_assignments.push((
        NodeId(23),
        AdversaryKind::Impersonator { victim: NodeId(2) },
    ));
    let summary = scenario.run(&workload());
    assert_eq!(summary.correct, 23);
    assert_eq!(
        summary.min_delivery_ratio, 1.0,
        "mixed adversaries broke delivery: {summary:?}"
    );
    assert_eq!(summary.false_suspicions, 0, "{summary:?}");
}
