//! Integration tests for the failure detectors' interval properties
//! (paper §2.2, Lemmas 3.7–3.9) measured on live runs:
//!
//! * **Accuracy** — with an ideal radio (no collisions, no fading) and no
//!   Byzantine nodes, *no* correct node is ever suspected: suspicion-free
//!   runs stay suspicion-free.
//! * **Completeness** — mute overlay claimants blocking a sparse cut are
//!   suspected by their neighbours within a bounded interval, and the
//!   overlay self-heals into a connected correct cover.

use byzcast::adversary::MutePolicy;
use byzcast::harness::{byz_view, AdversaryKind, MobilityChoice, ScenarioConfig, Workload};
use byzcast::sim::{Field, NodeId, RadioConfig, SimConfig, SimDuration, SimTime};

fn run(
    config: &ScenarioConfig,
    workload: &Workload,
) -> byzcast::sim::Simulator<byzcast::core::WireMsg> {
    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());
    sim
}

fn workload(count: usize) -> Workload {
    Workload {
        senders: vec![NodeId(0)],
        count,
        payload_bytes: 256,
        start: SimDuration::from_secs(6),
        interval: SimDuration::from_millis(400),
        drain: SimDuration::from_secs(25),
    }
}

/// Lemma 3.8 in spirit: under timely network behaviour (ideal radio — every
/// frame arrives), non-mute processes are never suspected.
#[test]
fn no_suspicions_in_timely_failure_free_runs() {
    let config = ScenarioConfig {
        seed: 3,
        n: 30,
        sim: SimConfig {
            field: Field::new(500.0, 500.0),
            radio: RadioConfig::ideal_disk(250.0),
            mac: byzcast::sim::mac::MacConfig {
                // Wide contention window: effectively no collisions.
                cw_slots: 256,
                ..Default::default()
            },
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    let sim = run(&config, &workload(12));
    for i in 0..config.n as u32 {
        let node = byz_view(&sim, NodeId(i)).expect("all nodes are byzcast");
        assert!(
            node.suspicion_log().episodes().is_empty(),
            "node {i} suspected someone in a timely failure-free run: {:?}",
            node.suspicion_log().episodes()
        );
    }
}

/// The star-cut topology that *forces* the mute node to matter: two cliques
/// joined only by a low-id correct connector B (id 4) and a highest-id node
/// A (id 9) adjacent to everyone. A wins every overlay election (everyone
/// prunes to it), so the overlay is exactly {A} — the paper's "all overlay
/// nodes Byzantine" situation in miniature.
fn star_cut() -> (ScenarioConfig, usize) {
    let positions = vec![
        // Clique 1 (ids 0–3), left.
        byzcast::sim::Position::new(0.0, 0.0),
        byzcast::sim::Position::new(40.0, 0.0),
        byzcast::sim::Position::new(0.0, 40.0),
        byzcast::sim::Position::new(40.0, 40.0),
        // B (id 4): the correct connector in the middle.
        byzcast::sim::Position::new(230.0, 60.0),
        // Clique 2 (ids 5–8), right.
        byzcast::sim::Position::new(420.0, 0.0),
        byzcast::sim::Position::new(460.0, 0.0),
        byzcast::sim::Position::new(420.0, 40.0),
        byzcast::sim::Position::new(460.0, 40.0),
        // A (id 9): adjacent to everyone, mute, claims dominator.
        byzcast::sim::Position::new(230.0, 40.0),
    ];
    let n = positions.len();
    let config = ScenarioConfig {
        seed: 5,
        n,
        sim: SimConfig {
            field: Field::new(470.0, 100.0),
            radio: RadioConfig::ideal_disk(250.0),
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Explicit(positions),
        adversary: Some(AdversaryKind::Mute(MutePolicy::DropDataAndGossip)),
        adversary_ids: Some(vec![NodeId(9)]),
        ..ScenarioConfig::default()
    };
    (config, n)
}

/// Lemma 3.7 in spirit: the mute sole-overlay node is suspected by the
/// correct nodes whose traffic it blocks (clique 2, whose first copies only
/// ever arrive through B's recovery responses).
#[test]
fn blocking_mute_node_gets_suspected() {
    let (config, n) = star_cut();
    let w = workload(15);
    let sim = run(&config, &w);
    // Delivery must survive the mute overlay (via B's gossip + recovery).
    let summary = config.summarize_wire(&sim);
    assert_eq!(summary.delivery_ratio, 1.0, "mute overlay not recovered");
    // And the blocked side must have caught the mute node.
    let suspected_by = (0..n as u32)
        .filter(|&i| i != 9)
        .filter(|&i| {
            byz_view(&sim, NodeId(i)).is_some_and(|node| {
                node.suspicion_log()
                    .episodes()
                    .iter()
                    .any(|ep| ep.suspect == NodeId(9))
            })
        })
        .count();
    assert!(
        suspected_by >= 1,
        "no correct node ever suspected the mute overlay node"
    );
}

/// Lemma 3.9 in spirit: after the mutes are suspected, the correct overlay
/// members form a connected cover again.
#[test]
fn overlay_self_heals_after_suspicion() {
    let config = ScenarioConfig {
        seed: 8,
        n: 50,
        sim: SimConfig {
            field: Field::new(600.0, 600.0),
            ..SimConfig::default()
        },
        adversary: Some(AdversaryKind::Mute(MutePolicy::DropData)),
        adversary_count: 5,
        ..ScenarioConfig::default()
    };
    let w = Workload {
        count: 60,
        interval: SimDuration::from_millis(200),
        ..workload(60)
    };
    let sim = run(&config, &w);
    let summary = config.summarize_wire(&sim);
    assert!(
        summary.delivery_ratio > 0.99,
        "delivery {}",
        summary.delivery_ratio
    );
    assert_eq!(
        summary.overlay_ok,
        Some(true),
        "overlay failed to heal into a connected correct cover"
    );
}

/// The interval-spec checker agrees with a run's recorded episodes: the
/// mute node is caught within (mute_interval + suspicion_interval) of the
/// first broadcast.
#[test]
fn interval_completeness_checker_on_a_run() {
    use byzcast::fd::{IntervalSpec, SuspicionLog};

    let (config, n) = star_cut();
    let w = workload(15);
    let sim = run(&config, &w);

    // Merge per-node logs into one.
    let mut merged = SuspicionLog::new();
    for i in 0..n as u32 {
        if let Some(node) = byz_view(&sim, NodeId(i)) {
            for ep in node.suspicion_log().episodes() {
                merged.begin(ep.start, ep.observer, ep.suspect);
                if ep.end != SimTime::MAX {
                    merged.end(ep.end, ep.observer, ep.suspect);
                }
            }
        }
    }
    let spec = IntervalSpec {
        mute_interval: SimDuration::from_secs(15),
        suspicion_interval: SimDuration::from_secs(20),
        suspicion_free_interval: SimDuration::from_secs(5),
    };
    // Observers: clique 2 — the nodes whose traffic the mute node blocks.
    let observers: Vec<NodeId> = (5..9).map(NodeId).collect();
    let mute_start = SimTime::ZERO + w.start;
    let misses = merged.completeness_misses(&spec, mute_start, &observers, &[NodeId(9)]);
    assert!(
        misses.len() < observers.len(),
        "no observer satisfied interval completeness: {misses:?}"
    );
}
