//! Integration tests for the paper's *eventual dissemination* property
//! (Theorem 3.2): "If a correct node p invokes broadcast(p, ·) infinitely
//! often, then eventually every correct node q invokes accept(q, p, ·)" —
//! under the assumption that correct nodes form a connected graph.
//!
//! Each test builds a topology where that assumption holds, injects
//! messages, and checks that every correct node accepts every message —
//! including on the paper's Figure-5 worst case where *every overlay node is
//! Byzantine* and dissemination must run entirely over the gossip-request
//! mechanism.

use std::collections::BTreeSet;

use byzcast::adversary::MutePolicy;
use byzcast::harness::{AdversaryKind, MobilityChoice, ProtocolChoice, ScenarioConfig, Workload};
use byzcast::overlay::OverlayKind;
use byzcast::sim::{Field, NodeId, Position, RadioConfig, SimConfig, SimDuration};

fn deliveries_complete(config: &ScenarioConfig, workload: &Workload) -> (f64, f64) {
    let s = config.run(workload);
    (s.delivery_ratio, s.min_delivery_ratio)
}

fn ideal_line(n: usize, spacing: f64) -> ScenarioConfig {
    ScenarioConfig {
        seed: 5,
        n,
        sim: SimConfig {
            field: Field::new(spacing * n as f64 + 1.0, 100.0),
            radio: RadioConfig::ideal_disk(250.0),
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Line { spacing },
        ..ScenarioConfig::default()
    }
}

fn workload(count: usize) -> Workload {
    Workload {
        senders: vec![NodeId(0)],
        count,
        payload_bytes: 256,
        start: SimDuration::from_secs(6),
        interval: SimDuration::from_millis(500),
        drain: SimDuration::from_secs(20),
    }
}

#[test]
fn line_topology_all_correct() {
    let (mean, min) = deliveries_complete(&ideal_line(12, 200.0), &workload(6));
    assert_eq!(mean, 1.0, "mean delivery {mean}");
    assert_eq!(min, 1.0, "worst message {min}");
}

#[test]
fn grid_topology_all_correct() {
    let config = ScenarioConfig {
        seed: 5,
        n: 36,
        sim: SimConfig {
            field: Field::new(900.0, 900.0),
            radio: RadioConfig::ideal_disk(250.0),
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Grid,
        ..ScenarioConfig::default()
    };
    let (mean, min) = deliveries_complete(&config, &workload(6));
    assert_eq!(mean, 1.0, "mean delivery {mean}");
    assert_eq!(min, 1.0, "worst message {min}");
}

#[test]
fn dense_random_topology_with_realistic_radio() {
    let config = ScenarioConfig {
        seed: 9,
        n: 50,
        sim: SimConfig {
            field: Field::new(600.0, 600.0),
            ..SimConfig::default() // fading + noise + collisions
        },
        ..ScenarioConfig::default()
    };
    let (mean, min) = deliveries_complete(&config, &workload(10));
    assert!(mean > 0.99, "mean delivery {mean}");
    assert!(min > 0.95, "worst message {min}");
}

#[test]
fn both_overlays_disseminate() {
    for overlay in [OverlayKind::Cds, OverlayKind::MisBridges] {
        let mut config = ideal_line(10, 200.0);
        config.byzcast.overlay = overlay;
        let (mean, _) = deliveries_complete(&config, &workload(4));
        assert_eq!(mean, 1.0, "{} failed", overlay.name());
    }
}

/// The paper's Figure 5: every overlay node Byzantine. The highest-id nodes
/// are fully mute dominator-claimants positioned so that every correct node
/// prunes itself — the overlay is mutes-only and dissemination must run on
/// the gossip-request chain.
#[test]
fn figure_5_byzantine_overlay_line() {
    let config = byzcast::harness::figure5_worst_case(7, 5);
    let w = Workload {
        drain: SimDuration::from_secs(90), // gossip-request path is slow
        ..workload(5)
    };
    let s = config.run(&w);
    assert_eq!(s.delivery_ratio, 1.0, "mean delivery {}", s.delivery_ratio);
    assert_eq!(
        s.min_delivery_ratio, 1.0,
        "worst message {}",
        s.min_delivery_ratio
    );
    assert!(
        s.requests > 0,
        "the mute overlay should force the recovery path"
    );
}

/// Mute dominator-claimants scattered over a random topology; the paper's
/// appealing property — "it only requires the existence of one correct node
/// in each one-hop neighborhood" — carried by gossip recovery.
#[test]
fn mute_overlay_claimants_random_topology() {
    let config = ScenarioConfig {
        seed: 13,
        n: 60,
        sim: SimConfig {
            field: Field::new(700.0, 700.0),
            ..SimConfig::default()
        },
        adversary: Some(AdversaryKind::Mute(MutePolicy::DropData)),
        adversary_count: 6,
        ..ScenarioConfig::default()
    };
    let w = Workload {
        drain: SimDuration::from_secs(25),
        ..workload(10)
    };
    let (mean, min) = deliveries_complete(&config, &w);
    assert!(mean > 0.99, "mean delivery {mean}");
    assert!(min > 0.95, "worst message {min}");
}

/// The explicit-position escape hatch: a bowtie where the centre node is the
/// only cut vertex; it must end up relaying no matter what the overlay says.
#[test]
fn cut_vertex_bowtie() {
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(0.0, 200.0),
        Position::new(150.0, 100.0), // the cut vertex
        Position::new(300.0, 0.0),
        Position::new(300.0, 200.0),
    ];
    let config = ScenarioConfig {
        seed: 1,
        n: 5,
        sim: SimConfig {
            field: Field::new(400.0, 300.0),
            radio: RadioConfig::ideal_disk(190.0),
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Explicit(positions),
        ..ScenarioConfig::default()
    };
    let (mean, min) = deliveries_complete(&config, &workload(4));
    assert_eq!(mean, 1.0);
    assert_eq!(min, 1.0);
}

/// Flooding and the f+1-overlay baseline satisfy dissemination on the same
/// topologies (they are the comparison points of experiment R1/R2).
#[test]
fn baselines_disseminate_on_the_line() {
    for protocol in [
        ProtocolChoice::Flooding,
        ProtocolChoice::MultiOverlay { f: 1 },
    ] {
        let mut config = ideal_line(10, 200.0);
        config.protocol = protocol.clone();
        let (mean, _) = deliveries_complete(&config, &workload(4));
        assert_eq!(mean, 1.0, "{protocol:?} failed");
    }
}

/// Every correct node accepts each payload exactly once (the "only once"
/// half of validity interacts with dissemination here).
#[test]
fn no_duplicate_deliveries() {
    let config = ScenarioConfig {
        seed: 21,
        n: 30,
        sim: SimConfig {
            field: Field::new(500.0, 500.0),
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    let w = workload(8);
    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in w.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(byzcast::sim::SimTime::ZERO + w.horizon());
    let mut seen: BTreeSet<(NodeId, u64)> = BTreeSet::new();
    for d in &sim.metrics().deliveries {
        assert!(
            seen.insert((d.node, d.payload_id)),
            "duplicate delivery of payload {} at {}",
            d.payload_id,
            d.node
        );
    }
}
