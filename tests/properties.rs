//! Property-based tests over randomized topologies, workloads and
//! adversary placements.
//!
//! Simulation-backed properties run with a reduced case count (each case is
//! a full discrete-event run); pure-function properties run with the
//! proptest default.

use proptest::prelude::*;

use byzcast::adversary::MutePolicy;
use byzcast::core::message::DataMsg;
use byzcast::crypto::{KeyRegistry, SchnorrScheme, Signer, SignerId, SimScheme, Verifier};
use byzcast::harness::{AdversaryKind, MobilityChoice, ScenarioConfig, Workload};
use byzcast::overlay::analysis::{bfs_distances, connected_correct_cover, induced_connected};
use byzcast::sim::{Field, NodeId, Position, RadioConfig, SimConfig, SimDuration, SimRng};

// ---------------------------------------------------------------------
// Topology helpers
// ---------------------------------------------------------------------

/// Adjacency of a disk graph.
fn disk_adjacency(positions: &[Position], range: f64) -> Vec<Vec<NodeId>> {
    (0..positions.len())
        .map(|i| {
            (0..positions.len())
                .filter(|&j| j != i && positions[i].distance(&positions[j]) <= range)
                .map(|j| NodeId(j as u32))
                .collect()
        })
        .collect()
}

fn is_connected(adj: &[Vec<NodeId>]) -> bool {
    bfs_distances(adj, NodeId(0)).iter().all(Option::is_some)
}

/// Draws a *connected* random geometric topology by rejection sampling.
fn connected_positions(seed: u64, n: usize, side: f64, range: f64) -> Vec<Position> {
    let mut rng = SimRng::new(seed);
    let field = Field::new(side, side);
    loop {
        let positions: Vec<Position> = (0..n).map(|_| field.random_position(&mut rng)).collect();
        if is_connected(&disk_adjacency(&positions, range)) {
            return positions;
        }
    }
}

fn scenario_on(positions: Vec<Position>, side: f64, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        n: positions.len(),
        sim: SimConfig {
            field: Field::new(side, side),
            radio: RadioConfig::ideal_disk(250.0),
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Explicit(positions),
        ..ScenarioConfig::default()
    }
}

fn small_workload(count: usize) -> Workload {
    Workload {
        senders: vec![NodeId(0)],
        count,
        payload_bytes: 128,
        start: SimDuration::from_secs(6),
        interval: SimDuration::from_millis(400),
        drain: SimDuration::from_secs(15),
    }
}

// ---------------------------------------------------------------------
// Simulation-backed properties (few, expensive cases)
// ---------------------------------------------------------------------

fn dissemination_case(seed: u64, n: usize) -> Result<(), TestCaseError> {
    let positions = connected_positions(seed, n, 550.0, 250.0);
    let config = scenario_on(positions, 550.0, seed);
    let s = config.run(&small_workload(4));
    prop_assert_eq!(s.delivery_ratio, 1.0);
    Ok(())
}

fn reproducibility_case(seed: u64, n: usize) -> Result<(), TestCaseError> {
    let config = ScenarioConfig {
        seed,
        n,
        sim: SimConfig {
            field: Field::new(500.0, 500.0),
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    let a = config.run(&small_workload(3));
    let b = config.run(&small_workload(3));
    prop_assert_eq!(a.frames_sent, b.frames_sent);
    prop_assert_eq!(a.bytes_sent, b.bytes_sent);
    prop_assert_eq!(a.collisions, b.collisions);
    prop_assert_eq!(a.delivery_ratio, b.delivery_ratio);
    prop_assert_eq!(a.mean_latency_s, b.mean_latency_s);
    Ok(())
}

/// Shrunk case from `properties.proptest-regressions` (`seed = 271,
/// n = 15`), pinned against both simulation-backed (seed, n) properties
/// so the exact failing topology replays on every run.
#[test]
fn regression_seed_271_n_15() {
    dissemination_case(271, 15).unwrap();
    reproducibility_case(271, 15).unwrap();
    bfs_metric_case(271, 15).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Eventual dissemination on arbitrary connected topologies: every
    /// correct node accepts every message (ideal radio, failure-free).
    #[test]
    fn dissemination_on_random_connected_topologies(
        seed in 0u64..1000,
        n in 8usize..22,
    ) {
        dissemination_case(seed, n)?;
    }

    /// Determinism: the same scenario and seed reproduce identical metrics.
    #[test]
    fn runs_are_bit_reproducible(seed in 0u64..1000, n in 10usize..30) {
        reproducibility_case(seed, n)?;
    }

    /// Validity under random mute-adversary placements: correct nodes only
    /// accept genuinely broadcast payloads, each once.
    #[test]
    fn validity_under_random_mute_placements(
        seed in 0u64..1000,
        adversaries in 1usize..5,
    ) {
        let n = 20usize;
        let positions = connected_positions(seed ^ 0xABCD, n, 550.0, 250.0);
        let mut config = scenario_on(positions, 550.0, seed);
        config.adversary = Some(AdversaryKind::Mute(MutePolicy::DropData));
        // Random adversary ids, never the sender (node 0).
        let mut rng = SimRng::new(seed);
        let mut ids: Vec<NodeId> = (1..n as u32).map(NodeId).collect();
        rng.shuffle(&mut ids);
        ids.truncate(adversaries);
        config.adversary_ids = Some(ids);

        let w = small_workload(4);
        let mut sim = config.build_wire_sim();
        for (at, sender, payload_id, size) in w.schedule() {
            sim.schedule_app_broadcast(at, sender, payload_id, size);
        }
        sim.run_until(byzcast::sim::SimTime::ZERO + w.horizon());
        let metrics = sim.metrics();
        let correct = config.correct_mask();
        let mut seen = std::collections::BTreeSet::new();
        for d in &metrics.deliveries {
            if !correct[d.node.index()] {
                continue;
            }
            let matching = metrics
                .broadcasts
                .iter()
                .any(|b| b.payload_id == d.payload_id && b.origin == d.origin);
            prop_assert!(matching, "phantom delivery {:?}", d);
            prop_assert!(seen.insert((d.node, d.payload_id)), "duplicate {:?}", d);
        }
    }
}

// ---------------------------------------------------------------------
// Pure-function properties (cheap, many cases)
// ---------------------------------------------------------------------

proptest! {
    /// Any single corrupted byte invalidates both signature schemes.
    #[test]
    fn signatures_reject_any_single_byte_corruption(
        seed in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 1..128),
        flip_byte in 0usize..40,
        flip_bit in 0u8..8,
    ) {
        let sim_keys: KeyRegistry<SimScheme> = KeyRegistry::generate(seed, 2);
        let sch_keys: KeyRegistry<SchnorrScheme> = KeyRegistry::generate(seed, 2);

        let sig1 = sim_keys.signer(SignerId(0)).sign(&data);
        let sig2 = sch_keys.signer(SignerId(0)).sign(&data);
        prop_assert!(sim_keys.verifier().verify(SignerId(0), &data, &sig1));
        prop_assert!(sch_keys.verifier().verify(SignerId(0), &data, &sig2));

        let mut bad1 = sig1;
        bad1.0[flip_byte] ^= 1 << flip_bit;
        prop_assert!(!sim_keys.verifier().verify(SignerId(0), &data, &bad1));
        let mut bad2 = sig2;
        bad2.0[flip_byte] ^= 1 << flip_bit;
        prop_assert!(!sch_keys.verifier().verify(SignerId(0), &data, &bad2));
    }

    /// Data-message signatures bind every signed field.
    #[test]
    fn data_message_binds_fields(
        seed in any::<u64>(),
        seq in 1u64..u64::MAX,
        payload_id in any::<u64>(),
        payload_len in 0u32..65_536,
        delta in 1u64..1000,
    ) {
        let keys: KeyRegistry<SimScheme> = KeyRegistry::generate(seed, 2);
        let v = keys.verifier();
        let m = DataMsg::sign(&keys.signer(SignerId(0)), seq, payload_id, payload_len);
        prop_assert!(m.verify(&v));
        prop_assert!(m.gossip_entry().verify(&v));

        let mut bad = m;
        bad.payload_id = bad.payload_id.wrapping_add(delta);
        prop_assert!(!bad.verify(&v));
        let mut bad = m;
        bad.id.seq = bad.id.seq.wrapping_add(delta);
        prop_assert!(!bad.verify(&v));
        let mut bad = m;
        bad.id.origin = NodeId(1);
        prop_assert!(!bad.verify(&v));
        // TTL is a hop counter, deliberately unsigned.
        prop_assert!(m.with_ttl(2).verify(&v));
    }

    /// `connected_correct_cover` implies both of its component properties.
    #[test]
    fn cover_decomposition(
        seed in any::<u64>(),
        n in 4usize..24,
        overlay_bits in any::<u32>(),
        correct_bits in any::<u32>(),
    ) {
        let mut rng = SimRng::new(seed);
        let field = Field::new(400.0, 400.0);
        let positions: Vec<Position> = (0..n).map(|_| field.random_position(&mut rng)).collect();
        let adj = disk_adjacency(&positions, 180.0);
        let overlay: Vec<bool> = (0..n).map(|i| overlay_bits >> (i % 32) & 1 == 1).collect();
        let correct: Vec<bool> = (0..n).map(|i| correct_bits >> (i % 32) & 1 == 1).collect();
        if connected_correct_cover(&adj, &overlay, &correct) {
            let correct_overlay: Vec<bool> =
                (0..n).map(|i| overlay[i] && correct[i]).collect();
            prop_assert!(induced_connected(&adj, &correct_overlay));
            for i in 0..n {
                if correct[i] {
                    let covered = correct_overlay[i]
                        || adj[i].iter().any(|v| correct_overlay[v.index()]);
                    prop_assert!(covered);
                }
            }
        }
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_distance_is_a_metric_along_edges(seed in any::<u64>(), n in 2usize..30) {
        bfs_metric_case(seed, n)?;
    }

    /// The multi-overlay planner always covers every component, for any
    /// geometry and overlay count.
    #[test]
    fn planned_overlays_always_dominate(
        seed in any::<u64>(),
        n in 2usize..30,
        k in 1u8..4,
    ) {
        planned_overlays_case(seed, n, k)?;
    }
}

fn bfs_metric_case(seed: u64, n: usize) -> Result<(), TestCaseError> {
    let mut rng = SimRng::new(seed);
    let field = Field::new(400.0, 400.0);
    let positions: Vec<Position> = (0..n).map(|_| field.random_position(&mut rng)).collect();
    let adj = disk_adjacency(&positions, 200.0);
    let dist = bfs_distances(&adj, NodeId(0));
    for (u, nbrs) in adj.iter().enumerate() {
        for v in nbrs {
            match (dist[u], dist[v.index()]) {
                (Some(du), Some(dv)) => {
                    prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}) gap {du}-{dv}")
                }
                (Some(_), None) | (None, Some(_)) => {
                    prop_assert!(false, "edge spans components")
                }
                (None, None) => {}
            }
        }
    }
    Ok(())
}

fn planned_overlays_case(seed: u64, n: usize, k: u8) -> Result<(), TestCaseError> {
    let mut rng = SimRng::new(seed);
    let field = Field::new(500.0, 500.0);
    let positions: Vec<Position> = (0..n).map(|_| field.random_position(&mut rng)).collect();
    let adj = disk_adjacency(&positions, 220.0);
    let memberships = byzcast::baselines::plan_overlays(&adj, k, seed);
    for (i, row) in memberships.iter().enumerate() {
        for (overlay, &member) in row.iter().enumerate() {
            let covered = member || adj[i].iter().any(|v| memberships[v.index()][overlay]);
            prop_assert!(covered, "node {i} uncovered in overlay {overlay}");
        }
    }
    Ok(())
}

/// Shrunk case from `properties.proptest-regressions`
/// (`seed = 297956877030878764, n = 3, k = 1`): a tiny, possibly
/// disconnected geometry where the planner must still dominate every
/// component.
#[test]
fn regression_planner_dominates_tiny_disconnected_graph() {
    planned_overlays_case(297956877030878764, 3, 1).unwrap();
}
