//! Determinism of the chaos layer: the same seeds must yield byte-identical
//! JSONL records regardless of worker-thread count, and a case must survive
//! the corpus text round-trip with its run outcome intact.

use byzcast_harness::chaos::{generate_case, run_case, soak, violation_counts, ChaosProfile};
use byzcast_harness::parse_case;

#[test]
fn soak_records_are_identical_across_thread_counts() {
    let serial = soak(0xD0_0D, 8, true, 1, ChaosProfile::Standard);
    let parallel = soak(0xD0_0D, 8, true, 4, ChaosProfile::Standard);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.record, b.record, "JSONL diverged for seed {}", a.seed);
        assert_eq!(a.violations, b.violations);
    }
}

#[test]
fn corpus_round_trip_preserves_the_run() {
    for seed in [5u64, 17, 40] {
        let case = generate_case(seed, true);
        let parsed = parse_case(&case.to_text()).expect("round-trip parse");
        let direct = run_case(&case);
        let replayed = run_case(&parsed);
        assert_eq!(
            direct.summary, replayed.summary,
            "summary diverged after text round-trip (seed {seed})"
        );
        assert_eq!(
            violation_counts(&direct.violations),
            violation_counts(&replayed.violations),
            "violations diverged after text round-trip (seed {seed})"
        );
    }
}
