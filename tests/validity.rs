//! Integration tests for the paper's *validity* property (Theorem 3.1):
//! "If a correct node q invokes accept(p, q, m) and p is correct, then
//! indeed q invoked broadcast(p, m) beforehand. Moreover, for the same
//! message m, a correct node p can only invoke accept(p, q, m) once."
//!
//! The adversaries here try to break it: forgers tamper with relayed
//! payloads, impersonators inject messages under other nodes' names. With
//! unforgeable signatures, no correct node must ever accept a payload the
//! claimed originator did not broadcast.

use std::collections::{BTreeMap, BTreeSet};

use byzcast::harness::{AdversaryKind, ScenarioConfig, Workload};
use byzcast::sim::{Field, Metrics, NodeId, SimConfig, SimDuration, SimTime};

fn run_scenario(config: &ScenarioConfig, workload: &Workload) -> Metrics {
    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());
    sim.metrics().clone()
}

/// Checks Theorem 3.1 against the run's ground truth: every delivery at a
/// correct node corresponds to a real broadcast by the claimed originator,
/// and deliveries are unique per (node, payload).
fn assert_validity(metrics: &Metrics, correct: &[bool]) {
    let broadcasts: BTreeMap<u64, NodeId> = metrics
        .broadcasts
        .iter()
        .map(|b| (b.payload_id, b.origin))
        .collect();
    let mut seen: BTreeSet<(NodeId, NodeId, u64)> = BTreeSet::new();
    for d in &metrics.deliveries {
        if !correct[d.node.index()] {
            continue; // Byzantine nodes may "deliver" whatever they like
        }
        match broadcasts.get(&d.payload_id) {
            Some(&origin) => assert_eq!(
                origin, d.origin,
                "correct node {} accepted payload {} under the wrong originator",
                d.node, d.payload_id
            ),
            None => panic!(
                "correct node {} accepted payload {} that nobody broadcast",
                d.node, d.payload_id
            ),
        }
        assert!(
            seen.insert((d.node, d.origin, d.payload_id)),
            "correct node {} accepted ({}, {}) twice",
            d.node,
            d.origin,
            d.payload_id
        );
    }
}

fn base(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        n: 40,
        sim: SimConfig {
            field: Field::new(550.0, 550.0),
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

fn workload() -> Workload {
    Workload {
        senders: vec![NodeId(0), NodeId(1)],
        count: 20,
        payload_bytes: 256,
        start: SimDuration::from_secs(6),
        interval: SimDuration::from_millis(300),
        drain: SimDuration::from_secs(12),
    }
}

#[test]
fn validity_failure_free() {
    let config = base(2);
    let metrics = run_scenario(&config, &workload());
    assert_validity(&metrics, &config.correct_mask());
    assert!(!metrics.deliveries.is_empty());
}

#[test]
fn validity_under_forgers() {
    let mut config = base(3);
    config.adversary = Some(AdversaryKind::Forger);
    config.adversary_count = 6;
    let metrics = run_scenario(&config, &workload());
    assert_validity(&metrics, &config.correct_mask());
}

#[test]
fn validity_under_impersonators() {
    let mut config = base(4);
    config.adversary = Some(AdversaryKind::Impersonator { victim: NodeId(0) });
    config.adversary_count = 4;
    let metrics = run_scenario(&config, &workload());
    assert_validity(&metrics, &config.correct_mask());
    // In particular: the victim is never credited with the forged payloads
    // (ids >= 0xBAD0) at any correct node.
    let correct = config.correct_mask();
    for d in &metrics.deliveries {
        if correct[d.node.index()] {
            assert!(d.payload_id < 0xBAD0, "forged payload accepted: {d:?}");
        }
    }
}

#[test]
fn validity_under_gossip_liars() {
    let mut config = base(5);
    config.adversary = Some(AdversaryKind::GossipLiar);
    config.adversary_count = 5;
    let metrics = run_scenario(&config, &workload());
    assert_validity(&metrics, &config.correct_mask());
}

#[test]
fn validity_under_combined_noise_and_verbose_spam() {
    let mut config = base(6);
    config.adversary = Some(AdversaryKind::Verbose {
        period: SimDuration::from_millis(150),
        per_tick: 8,
    });
    config.adversary_count = 5;
    let metrics = run_scenario(&config, &workload());
    assert_validity(&metrics, &config.correct_mask());
}
