//! Integration tests for the §3.5 analysis: dissemination-time bounds
//! (Theorem 3.4 and the static `n/2` worst case) and the buffer bound.

use byzcast::harness::{byz_view, figure5_worst_case, ScenarioConfig, Workload};
use byzcast::sim::{NodeId, SimDuration, SimTime};

/// The paper's Figure-5 worst case (see `figure5_worst_case`): the overlay
/// is mutes-only, so dissemination runs on the gossip-request chain.
/// `correct` is the number of correct nodes; total n = 2·correct − 1.
fn figure5(correct: usize) -> (ScenarioConfig, Workload) {
    let config = figure5_worst_case(correct, 1);
    let workload = Workload {
        senders: vec![NodeId(0)],
        count: 6,
        payload_bytes: 256,
        start: SimDuration::from_secs(8),
        interval: SimDuration::from_secs(2),
        drain: SimDuration::from_secs(90),
    };
    (config, workload)
}

#[test]
fn bound_theorem_3_4_mobile_form() {
    // Theorem 3.4: all correct nodes receive m within max_timeout · (n − 1).
    let (config, workload) = figure5(9);
    let summary = config.run(&workload);
    assert_eq!(summary.delivery_ratio, 1.0, "worst case must still deliver");
    let beta = SimDuration::from_micros(config.sim.radio.air_time_us(2700));
    let bound = config
        .byzcast
        .max_timeout(beta)
        .saturating_mul(config.n as u64 - 1)
        .as_secs_f64();
    assert!(
        summary.max_latency_s <= bound,
        "max latency {} exceeds Theorem 3.4 bound {}",
        summary.max_latency_s,
        bound
    );
}

#[test]
fn bound_static_worst_case_n_over_2() {
    // §3.5: in a static network the Figure-5 chain costs at most
    // max_timeout · n/2 (one Byzantine overlay node + one correct node per
    // hop).
    let (config, workload) = figure5(11);
    let summary = config.run(&workload);
    assert_eq!(summary.delivery_ratio, 1.0);
    let beta = SimDuration::from_micros(config.sim.radio.air_time_us(2700));
    let bound = config
        .byzcast
        .max_timeout(beta)
        .saturating_mul(config.n as u64 / 2)
        .as_secs_f64();
    assert!(
        summary.max_latency_s <= bound,
        "max latency {} exceeds static bound {}",
        summary.max_latency_s,
        bound
    );
}

#[test]
fn buffer_bound_holds() {
    // §3.5: in a mobile network every node needs at most
    // max_timeout · (n − 1) · δ buffered messages; the static requirement is
    // only max_timeout · δ. The measured high-water mark must stay within
    // the mobile (loose) bound — and our purge keeps it near the workload's
    // in-flight size.
    let (config, workload) = figure5(7);
    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());
    let beta = SimDuration::from_micros(config.sim.radio.air_time_us(2700));
    let max_timeout = config.byzcast.max_timeout(beta).as_secs_f64();
    let bound = (max_timeout * (config.n as f64 - 1.0) * workload.delta()).ceil() as usize;
    for i in 0..config.n as u32 {
        if let Some(node) = byz_view(&sim, NodeId(i)) {
            let hw = node.store().high_water();
            assert!(
                hw <= bound.max(workload.count),
                "node {i} buffered {hw} > bound {bound}"
            );
        }
    }
}

#[test]
fn buffer_bound_static_failure_free() {
    // §3.5's static requirement: a node needs at most max_timeout · δ
    // buffered messages. The bound presumes bodies are retired once the
    // dissemination timeout for them has lapsed, so the run pins
    // `purge_after` to half of max_timeout (the purge timer fires every
    // `purge_after`, so worst-case body retention is 2 × purge_after —
    // exactly the max_timeout budget the paper grants).
    let mut config = ScenarioConfig {
        seed: 5,
        n: 25,
        sim: byzcast::sim::SimConfig {
            field: byzcast::sim::Field::new(500.0, 500.0),
            ..byzcast::sim::SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    config.byzcast.request_timeout = SimDuration::from_secs(1);
    config.byzcast.purge_after = SimDuration::from_secs(1);
    let workload = Workload {
        senders: vec![NodeId(0)],
        count: 40,
        payload_bytes: 256,
        start: SimDuration::from_secs(5),
        interval: SimDuration::from_millis(250),
        drain: SimDuration::from_secs(10),
    };
    let beta = SimDuration::from_micros(config.sim.radio.air_time_us(2700));
    let max_timeout = config.byzcast.max_timeout(beta);
    assert!(
        config.byzcast.purge_after.saturating_mul(2) <= max_timeout,
        "retention window exceeds the max_timeout budget"
    );
    let bound = (max_timeout.as_secs_f64() * workload.delta()).ceil() as usize;

    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());
    let mut max_hw = 0;
    for i in 0..config.n as u32 {
        if let Some(node) = byz_view(&sim, NodeId(i)) {
            let hw = node.store().high_water();
            max_hw = max_hw.max(hw);
            assert!(hw <= bound, "node {i} buffered {hw} > static bound {bound}");
        }
    }
    assert!(max_hw > 1, "scenario too trivial to exercise the bound");
}

#[test]
fn dissemination_time_scales_linearly_not_worse() {
    // Sanity on the bound's *shape*: doubling the chain roughly doubles the
    // worst-case latency, it does not square it.
    let (c1, w) = figure5(6);
    let (c2, _) = figure5(11);
    let s1 = c1.run(&w);
    let s2 = c2.run(&w);
    assert_eq!(s1.delivery_ratio, 1.0);
    assert_eq!(s2.delivery_ratio, 1.0);
    // Latency grows with chain length, within a generous linear envelope.
    assert!(
        s2.max_latency_s <= (s1.max_latency_s + 1e-3) * 8.0,
        "latency blow-up: {} -> {}",
        s1.max_latency_s,
        s2.max_latency_s
    );
}
