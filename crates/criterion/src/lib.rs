//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds in environments with no access to crates.io, so the
//! benches link against this shim. It reproduces the API subset the benches
//! use — `Criterion`, benchmark groups, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — with a
//! simple calibrated timing loop printing mean ns/iter (and throughput when
//! configured) instead of criterion's statistical machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput configuration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter alone (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` in a calibrated loop and records the elapsed time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate: grow the batch until it takes ~10 ms, then measure.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || batch >= 1 << 24 {
                self.total = elapsed;
                self.iters = batch;
                return;
            }
            batch *= 4;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count (accepted for compatibility; the shim runs one
    /// calibrated batch).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, f);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Accepted for compatibility with `criterion_main!`'s configuration
    /// hook; the shim has no external configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<40} (no iterations recorded)");
        return;
    }
    let ns_per_iter = b.total.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => {
            let mbps = bytes as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0);
            format!("  {mbps:10.1} MiB/s")
        }
        Throughput::Elements(n) => {
            let eps = n as f64 / ns_per_iter * 1e9;
            format!("  {eps:10.0} elem/s")
        }
    });
    println!(
        "{label:<40} {ns_per_iter:12.1} ns/iter{}",
        rate.unwrap_or_default()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64)).bench_with_input(
            BenchmarkId::from_parameter(64),
            &64usize,
            |b, &n| b.iter(|| n * 2),
        );
        g.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("sha", 64).to_string(), "sha/64");
        assert_eq!(BenchmarkId::from_parameter(512).to_string(), "512");
    }
}
