//! Property-based tests for the simulator's foundations: the PRNG, time
//! arithmetic, geometry, the radio model and the event queue.

use proptest::prelude::*;

use byzcast_sim::event::{EventKind, EventQueue};
use byzcast_sim::{Field, Position, RadioConfig, RadioModel, SimDuration, SimRng, SimTime};

proptest! {
    #[test]
    fn rng_streams_are_seed_deterministic(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_gen_range_stays_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            let v = rng.gen_range(lo, lo + span);
            prop_assert!(v >= lo && v < lo + span);
        }
    }

    #[test]
    fn forked_streams_never_mirror_the_parent(seed in any::<u64>()) {
        let mut parent = SimRng::new(seed);
        let mut child = parent.fork(1);
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        prop_assert!(same < 4, "parent and child streams look identical");
    }

    #[test]
    fn time_addition_is_monotone(base in 0u64..u64::MAX / 4, d1 in 0u64..1_000_000, d2 in 0u64..1_000_000) {
        let t = SimTime::from_micros(base);
        let a = t + SimDuration::from_micros(d1);
        let b = a + SimDuration::from_micros(d2);
        prop_assert!(a >= t);
        prop_assert!(b >= a);
        prop_assert_eq!(b.saturating_since(t), SimDuration::from_micros(d1 + d2));
    }

    #[test]
    fn saturating_since_never_underflows(a in any::<u64>(), b in any::<u64>()) {
        let ta = SimTime::from_micros(a);
        let tb = SimTime::from_micros(b);
        let d = ta.saturating_since(tb);
        if a >= b {
            prop_assert_eq!(d.as_micros(), a - b);
        } else {
            prop_assert_eq!(d, SimDuration::ZERO);
        }
    }

    #[test]
    fn step_towards_never_overshoots(
        ax in 0.0f64..1000.0, ay in 0.0f64..1000.0,
        bx in 0.0f64..1000.0, by in 0.0f64..1000.0,
        step in 0.01f64..500.0,
    ) {
        let a = Position::new(ax, ay);
        let b = Position::new(bx, by);
        let d0 = a.distance(&b);
        let (next, reached) = a.step_towards(&b, step);
        let d1 = next.distance(&b);
        prop_assert!(d1 <= d0 + 1e-9, "moved away: {d0} -> {d1}");
        if reached {
            prop_assert!(d1 < 1e-9);
        } else {
            // Moved exactly `step` (within float tolerance).
            prop_assert!((a.distance(&next) - step).abs() < 1e-6);
        }
    }

    #[test]
    fn random_positions_are_inside_any_field(
        seed in any::<u64>(),
        w in 1.0f64..10_000.0,
        h in 1.0f64..10_000.0,
    ) {
        let f = Field::new(w, h);
        let mut rng = SimRng::new(seed);
        for _ in 0..16 {
            prop_assert!(f.contains(f.random_position(&mut rng)));
        }
    }

    #[test]
    fn link_probability_is_monotone_in_distance(
        range in 50.0f64..500.0,
        fade in 0.0f64..0.5,
        d1 in 0.0f64..1000.0,
        d2 in 0.0f64..1000.0,
    ) {
        let model = RadioModel::new(RadioConfig {
            range_m: range,
            fading_fraction: fade,
            ..RadioConfig::default()
        });
        let o = Position::new(0.0, 0.0);
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let p_near = model.link_success_probability(&o, &Position::new(near, 0.0));
        let p_far = model.link_success_probability(&o, &Position::new(far, 0.0));
        prop_assert!(p_near + 1e-12 >= p_far, "p({near})={p_near} < p({far})={p_far}");
        prop_assert!((0.0..=1.0).contains(&p_near));
    }

    #[test]
    fn air_time_is_monotone_in_size(bytes in 0usize..10_000, extra in 1usize..1000) {
        let c = RadioConfig::default();
        prop_assert!(c.air_time_us(bytes + extra) >= c.air_time_us(bytes));
    }

    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_micros(t), EventKind::MobilityTick);
        }
        let mut last = SimTime::ZERO;
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= last);
            last = e.time;
        }
    }
}
