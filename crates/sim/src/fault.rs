//! Deterministic fault injection: a timed plan of crashes, restarts,
//! Byzantine activation windows and radio-degradation (jamming) windows.
//!
//! A [`FaultPlan`] is handed to the [`crate::SimBuilder`] before the run
//! starts. Its events flow through the same deterministic event queue as
//! every other event, so a faulty run is exactly as reproducible as a clean
//! one: same seed, same plan, same bits. An **empty** plan schedules nothing
//! and perturbs nothing — the engine consumes identical RNG streams with and
//! without the fault layer, which the differential tests rely on.
//!
//! The fault vocabulary mirrors the failure modes of the paper's environment
//! (§2.1): process crashes with or without stable storage (state retention),
//! correct nodes that *become* Byzantine mid-run and possibly recover
//! (activation windows — the hardest case for the MUTE/TRUST detectors,
//! which must not permanently convict a node for a transient lapse), and
//! regional radio degradation modelling a raised noise floor or a jammer.

use crate::geometry::Position;
use crate::node::NodeId;
use crate::time::SimDuration;

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// `node` crashes: it stops sending, receiving and running callbacks.
    /// Pending timers and queued frames are lost. With `retain_state` the
    /// protocol state survives for a later [`FaultKind::Restart`] (crash
    /// with stable storage); without it the restart gets a fresh protocol
    /// instance from the builder's restart factory.
    Crash {
        /// The node that crashes.
        node: NodeId,
        /// Whether protocol state survives until the restart.
        retain_state: bool,
    },
    /// `node` comes back up (no-op if it is already up). Its protocol — the
    /// retained instance or a fresh one — receives `on_start`.
    Restart {
        /// The node that restarts.
        node: NodeId,
    },
    /// Toggles `node`'s Byzantine behaviour via
    /// [`crate::Protocol::on_byzantine`]. Only protocols that implement the
    /// hook (e.g. a flapping adversary wrapper) change behaviour; for
    /// everything else this is a recorded no-op.
    SetByzantine {
        /// The node whose behaviour flips.
        node: NodeId,
        /// `true` activates the Byzantine behaviour, `false` deactivates it.
        active: bool,
    },
    /// A jamming / raised-noise-floor region switches on: receptions at
    /// positions within `radius_m` of `center` are additionally lost with
    /// probability `loss` until the matching [`FaultKind::JamEnd`].
    JamStart {
        /// Plan-chosen identifier linking start and end.
        id: u32,
        /// Centre of the degraded region.
        center: Position,
        /// Radius of the degraded region in metres.
        radius_m: f64,
        /// Extra loss probability applied to receptions inside the region.
        loss: f64,
    },
    /// The jamming region `id` switches off.
    JamEnd {
        /// The identifier given at [`FaultKind::JamStart`].
        id: u32,
    },
}

/// A fault scheduled at an instant (offset from simulation start).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires, relative to simulation start.
    pub at: SimDuration,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-ordered plan of fault events for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Schedules `kind` at `at`.
    pub fn push(&mut self, at: SimDuration, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// Removes the event at `index` (for scenario shrinking).
    pub fn remove(&mut self, index: usize) -> FaultEvent {
        self.events.remove(index)
    }

    /// Builder-style [`FaultPlan::push`].
    pub fn with(mut self, at: SimDuration, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Convenience: crash `node` at `at`.
    pub fn crash(self, at: SimDuration, node: NodeId, retain_state: bool) -> Self {
        self.with(at, FaultKind::Crash { node, retain_state })
    }

    /// Convenience: restart `node` at `at`.
    pub fn restart(self, at: SimDuration, node: NodeId) -> Self {
        self.with(at, FaultKind::Restart { node })
    }

    /// Convenience: flip `node`'s Byzantine behaviour at `at`.
    pub fn set_byzantine(self, at: SimDuration, node: NodeId, active: bool) -> Self {
        self.with(at, FaultKind::SetByzantine { node, active })
    }

    /// Convenience: a jam window over `[from, until)`.
    pub fn jam_window(
        mut self,
        id: u32,
        from: SimDuration,
        until: SimDuration,
        center: Position,
        radius_m: f64,
        loss: f64,
    ) -> Self {
        self.push(
            from,
            FaultKind::JamStart {
                id,
                center,
                radius_m,
                loss,
            },
        );
        self.push(until, FaultKind::JamEnd { id });
        self
    }

    /// Node ids referenced by crash / restart / byzantine events.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Crash { node, .. }
                | FaultKind::Restart { node }
                | FaultKind::SetByzantine { node, .. } => Some(node),
                FaultKind::JamStart { .. } | FaultKind::JamEnd { .. } => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Checks the plan against a simulation of `n` nodes.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            match e.kind {
                FaultKind::Crash { node, .. }
                | FaultKind::Restart { node }
                | FaultKind::SetByzantine { node, .. } => {
                    if node.index() >= n {
                        return Err(format!(
                            "fault event {i} references {node} but the simulation has {n} nodes"
                        ));
                    }
                }
                FaultKind::JamStart { radius_m, loss, .. } => {
                    if !radius_m.is_finite() || radius_m <= 0.0 {
                        return Err(format!("fault event {i}: jam radius must be positive"));
                    }
                    if !(0.0..=1.0).contains(&loss) {
                        return Err(format!("fault event {i}: jam loss must be in [0, 1]"));
                    }
                }
                FaultKind::JamEnd { .. } => {}
            }
        }
        Ok(())
    }

    /// The events sorted by firing time (stable, so same-instant events keep
    /// plan order — matching the event queue's insertion-order tie-break).
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at);
        evs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.validate(0), Ok(()));
    }

    #[test]
    fn builder_helpers_compose_in_order() {
        let plan = FaultPlan::new()
            .crash(SimDuration::from_secs(2), NodeId(1), true)
            .restart(SimDuration::from_secs(4), NodeId(1))
            .set_byzantine(SimDuration::from_secs(1), NodeId(3), true)
            .jam_window(
                7,
                SimDuration::from_secs(3),
                SimDuration::from_secs(5),
                Position::new(100.0, 100.0),
                150.0,
                0.8,
            );
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.touched_nodes(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(plan.validate(4), Ok(()));
        assert!(plan.validate(2).is_err());
    }

    #[test]
    fn sorted_events_are_time_ordered_and_stable() {
        let plan = FaultPlan::new()
            .restart(SimDuration::from_secs(4), NodeId(0))
            .crash(SimDuration::from_secs(2), NodeId(0), false)
            // Same instant as the crash: must stay after it (plan order).
            .set_byzantine(SimDuration::from_secs(2), NodeId(0), true);
        let evs = plan.sorted_events();
        assert_eq!(evs[0].at, SimDuration::from_secs(2));
        assert!(matches!(evs[0].kind, FaultKind::Crash { .. }));
        assert!(matches!(evs[1].kind, FaultKind::SetByzantine { .. }));
        assert!(matches!(evs[2].kind, FaultKind::Restart { .. }));
    }

    #[test]
    fn validate_rejects_bad_jams() {
        let bad_radius = FaultPlan::new().with(
            SimDuration::ZERO,
            FaultKind::JamStart {
                id: 0,
                center: Position::new(0.0, 0.0),
                radius_m: 0.0,
                loss: 0.5,
            },
        );
        assert!(bad_radius.validate(1).is_err());
        let bad_loss = FaultPlan::new().with(
            SimDuration::ZERO,
            FaultKind::JamStart {
                id: 0,
                center: Position::new(0.0, 0.0),
                radius_m: 10.0,
                loss: 1.5,
            },
        );
        assert!(bad_loss.validate(1).is_err());
    }
}
