//! # byzcast-sim — deterministic discrete-event wireless ad-hoc network simulator
//!
//! This crate is the substrate on which the Byzantine broadcast protocol of
//! Drabkin, Friedman & Segal (DSN 2005) and its baselines run. It replaces the
//! SWANS/JiST simulator used in the paper with a pure-Rust, bit-for-bit
//! deterministic discrete-event simulation of a wireless ad-hoc network:
//!
//! * **Radio model** ([`radio`]) — a transmission-disk model with optional
//!   log-distance fading distortion and background-noise packet loss, matching
//!   the paper's remark that its simulator models "a real transmission range
//!   behavior including distortions, background noise, etc.".
//! * **Shared medium with collisions** ([`engine`]) — overlapping
//!   transmissions audible at a common receiver destroy each other (with an
//!   optional capture threshold), reproducing the paper's collision model:
//!   "if two nodes p and q transmit a message at the same time, then if there
//!   exists a node r that is a direct neighbor of both, then r will not
//!   receive either message".
//! * **CSMA broadcast MAC** ([`mac`]) — carrier sense plus random backoff,
//!   no RTS/CTS and no link-level ACKs, as for IEEE 802.11 broadcast frames.
//! * **Mobility** ([`mobility`]) — static placement, random waypoint and
//!   random walk.
//! * **Sans-io protocol interface** ([`node`]) — protocols are state machines
//!   driven by `on_start` / `on_packet` / `on_timer` / `on_app_broadcast`
//!   callbacks and emit actions through a [`Context`], so they are unit
//!   testable without a simulator and swappable inside one.
//!
//! # Example
//!
//! ```
//! use byzcast_sim::{SimBuilder, SimConfig, Protocol, Context, NodeId, Message,
//!                   AppPayload, TimerKey, SimDuration};
//!
//! /// A toy protocol: deliver and re-broadcast everything once.
//! #[derive(Clone, Debug)]
//! struct Flood { msg: u64, origin: NodeId, size: usize }
//! impl Message for Flood {
//!     fn wire_size(&self) -> usize { self.size }
//!     fn kind(&self) -> &'static str { "flood" }
//! }
//! struct FloodNode { seen: std::collections::HashSet<u64> }
//! impl Protocol for FloodNode {
//!     type Msg = Flood;
//!     fn on_packet(&mut self, ctx: &mut Context<'_, Flood>, _from: NodeId, msg: &Flood) {
//!         if self.seen.insert(msg.msg) {
//!             ctx.deliver(msg.origin, msg.msg);
//!             ctx.send(msg.clone());
//!         }
//!     }
//!     fn on_app_broadcast(&mut self, ctx: &mut Context<'_, Flood>, payload: AppPayload) {
//!         self.seen.insert(payload.id);
//!         ctx.deliver(ctx.node_id(), payload.id);
//!         ctx.send(Flood { msg: payload.id, origin: ctx.node_id(), size: payload.size_bytes });
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, Flood>, _t: TimerKey) {}
//! }
//!
//! let config = SimConfig::default();
//! let mut sim = SimBuilder::new(config)
//!     .with_nodes(16, |_id| Box::new(FloodNode { seen: Default::default() }))
//!     .build();
//! sim.schedule_app_broadcast(SimDuration::from_millis(10), NodeId(0), 1, 256);
//! sim.run_for(SimDuration::from_secs(2));
//! assert!(sim.metrics().deliveries.len() > 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod fault;
pub mod geometry;
pub mod mac;
pub mod metrics;
pub mod mobility;
pub mod node;
pub mod radio;
pub mod rng;
pub mod spatial;
pub mod time;
pub mod trace;

pub use engine::{BoxedProtocol, DynProtocol, SimBuilder, SimConfig, Simulator};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use geometry::{Field, Position};
pub use metrics::{DeliveryRecord, FaultStats, Metrics, NodeMetrics};
pub use mobility::{MobilityModel, RandomWalk, RandomWaypoint, StaticPlacement};
pub use node::{AppPayload, Context, Message, NodeId, Protocol, TimerKey};
pub use radio::{RadioConfig, RadioModel};
pub use rng::SimRng;
pub use spatial::{NodeGrid, TxGrid};
pub use time::{SimDuration, SimTime};
