//! Planar geometry: node positions and the simulation field.

use crate::rng::SimRng;

/// A position in the plane, in metres.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Position {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position from coordinates in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(&self, other: &Position) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance, for range checks without a sqrt.
    pub fn distance_squared(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Moves `self` towards `target` by at most `step` metres, without
    /// overshooting. Returns the new position and whether the target was
    /// reached.
    pub fn step_towards(&self, target: &Position, step: f64) -> (Position, bool) {
        let d = self.distance(target);
        if d <= step || d == 0.0 {
            (*target, true)
        } else {
            let f = step / d;
            (
                Position::new(
                    self.x + (target.x - self.x) * f,
                    self.y + (target.y - self.y) * f,
                ),
                false,
            )
        }
    }
}

/// The rectangular simulation area, anchored at the origin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Field {
    /// Width in metres.
    pub width: f64,
    /// Height in metres.
    pub height: f64,
}

impl Field {
    /// Creates a field of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is non-positive or non-finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "field dimensions must be positive and finite"
        );
        Field { width, height }
    }

    /// A uniformly random position inside the field.
    pub fn random_position(&self, rng: &mut SimRng) -> Position {
        Position::new(rng.gen_f64() * self.width, rng.gen_f64() * self.height)
    }

    /// Clamps a position to lie inside the field.
    pub fn clamp(&self, p: Position) -> Position {
        Position::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// Whether `p` lies inside (or on the border of) the field.
    pub fn contains(&self, p: Position) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }
}

impl Default for Field {
    /// The 1000 m × 1000 m field conventional for 2005-era ad-hoc evaluations.
    fn default() -> Self {
        Field::new(1000.0, 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn step_towards_moves_and_terminates() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(10.0, 0.0);
        let (mid, done) = a.step_towards(&b, 4.0);
        assert!(!done);
        assert!((mid.x - 4.0).abs() < 1e-9);
        let (end, done) = mid.step_towards(&b, 100.0);
        assert!(done);
        assert_eq!(end, b);
    }

    #[test]
    fn step_towards_self_is_done() {
        let a = Position::new(1.0, 1.0);
        let (p, done) = a.step_towards(&a, 1.0);
        assert!(done);
        assert_eq!(p, a);
    }

    #[test]
    fn field_random_positions_are_inside() {
        let f = Field::new(100.0, 50.0);
        let mut rng = SimRng::new(1);
        for _ in 0..200 {
            assert!(f.contains(f.random_position(&mut rng)));
        }
    }

    #[test]
    fn field_clamp() {
        let f = Field::new(10.0, 10.0);
        assert_eq!(f.clamp(Position::new(-5.0, 20.0)), Position::new(0.0, 10.0));
        assert_eq!(f.clamp(Position::new(5.0, 5.0)), Position::new(5.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_field_panics() {
        Field::new(0.0, 10.0);
    }
}
