//! A simplified CSMA broadcast MAC.
//!
//! Broadcast frames in IEEE 802.11 use no RTS/CTS handshake and no link-level
//! acknowledgements: a sender waits for the medium to be idle for a DIFS,
//! counts down a random backoff drawn from the minimum contention window, and
//! transmits. This module models exactly that — per-node outgoing queue,
//! carrier sense, random backoff — which is what makes collisions possible
//! but not rampant, matching the loss environment the paper's recovery
//! mechanisms (gossip + request) are designed for.

use crate::time::SimDuration;

/// MAC-layer timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MacConfig {
    /// Slot time in microseconds (802.11 DSSS: 20 µs).
    pub slot_us: u64,
    /// Distributed inter-frame space in microseconds (802.11 DSSS: 50 µs).
    pub difs_us: u64,
    /// Contention window in slots; broadcast always draws from `[0, cw)`.
    pub cw_slots: u64,
    /// Bound on the queue of frames awaiting transmission per node; frames
    /// beyond it are dropped and counted (models interface-queue overflow).
    pub queue_capacity: usize,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            slot_us: 20,
            difs_us: 50,
            cw_slots: 32,
            queue_capacity: 512,
        }
    }
}

impl MacConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.cw_slots == 0 {
            return Err("cw_slots must be positive".to_owned());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be positive".to_owned());
        }
        Ok(())
    }

    /// A random DIFS + backoff delay, given a uniform draw `slots` in
    /// `[0, cw_slots)`.
    pub fn backoff_delay(&self, slots: u64) -> SimDuration {
        debug_assert!(slots < self.cw_slots);
        SimDuration::from_micros(self.difs_us + slots * self.slot_us)
    }
}

/// Per-node MAC state tracked by the engine.
///
/// The generic parameter is the wire message type; the MAC itself never looks
/// inside frames.
#[derive(Debug)]
pub struct MacState<M> {
    queue: std::collections::VecDeque<M>,
    /// Whether a `MacAttempt` event is already pending for this node, so we
    /// never schedule two concurrent attempt chains.
    attempt_pending: bool,
    /// Whether this node is currently transmitting.
    transmitting: bool,
    /// Frames dropped because the queue was full.
    overflow_drops: u64,
}

impl<M> Default for MacState<M> {
    fn default() -> Self {
        MacState {
            queue: std::collections::VecDeque::new(),
            attempt_pending: false,
            transmitting: false,
            overflow_drops: 0,
        }
    }
}

impl<M> MacState<M> {
    /// Enqueues an outgoing frame. Returns `false` (and counts a drop) if the
    /// queue is full.
    pub fn enqueue(&mut self, msg: M, capacity: usize) -> bool {
        if self.queue.len() >= capacity {
            self.overflow_drops += 1;
            false
        } else {
            self.queue.push_back(msg);
            true
        }
    }

    /// Removes the frame at the head of the queue.
    pub fn dequeue(&mut self) -> Option<M> {
        self.queue.pop_front()
    }

    /// Whether frames are waiting.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Number of frames waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a `MacAttempt` event chain is live for this node.
    pub fn attempt_pending(&self) -> bool {
        self.attempt_pending
    }

    /// Marks the attempt chain live/idle.
    pub fn set_attempt_pending(&mut self, v: bool) {
        self.attempt_pending = v;
    }

    /// Whether this node is mid-transmission (half-duplex: cannot receive).
    pub fn transmitting(&self) -> bool {
        self.transmitting
    }

    /// Marks the radio busy/idle.
    pub fn set_transmitting(&mut self, v: bool) {
        self.transmitting = v;
    }

    /// Frames dropped to interface-queue overflow so far.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_respects_capacity() {
        let mut m: MacState<u32> = MacState::default();
        assert!(m.enqueue(1, 2));
        assert!(m.enqueue(2, 2));
        assert!(!m.enqueue(3, 2));
        assert_eq!(m.overflow_drops(), 1);
        assert_eq!(m.queue_len(), 2);
        assert_eq!(m.dequeue(), Some(1));
        assert_eq!(m.dequeue(), Some(2));
        assert_eq!(m.dequeue(), None);
        assert!(!m.has_pending());
    }

    #[test]
    fn backoff_delay_formula() {
        let c = MacConfig {
            slot_us: 20,
            difs_us: 50,
            cw_slots: 32,
            queue_capacity: 8,
        };
        assert_eq!(c.backoff_delay(0), SimDuration::from_micros(50));
        assert_eq!(c.backoff_delay(31), SimDuration::from_micros(50 + 31 * 20));
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(MacConfig {
            cw_slots: 0,
            ..MacConfig::default()
        }
        .validate()
        .is_err());
        assert!(MacConfig {
            queue_capacity: 0,
            ..MacConfig::default()
        }
        .validate()
        .is_err());
        assert!(MacConfig::default().validate().is_ok());
    }

    #[test]
    fn flags_toggle() {
        let mut m: MacState<()> = MacState::default();
        assert!(!m.attempt_pending());
        m.set_attempt_pending(true);
        assert!(m.attempt_pending());
        assert!(!m.transmitting());
        m.set_transmitting(true);
        assert!(m.transmitting());
    }
}
