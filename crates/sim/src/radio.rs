//! The radio propagation model.
//!
//! The paper's formal model is a transmission disk: a node `q` receives `p`'s
//! transmissions iff `dist(p, q) < r_p`. Its simulation, however, ran on
//! SWANS, which models "a real transmission range behavior including
//! distortions, background noise, etc.". [`RadioModel`] covers both:
//!
//! * In **ideal disk** mode (`fading_fraction == 0`) reception succeeds with
//!   probability 1 inside the range and 0 outside — the formal model, used by
//!   deterministic unit and correctness tests.
//! * With a positive `fading_fraction` `f`, links shorter than `r·(1−f)` are
//!   certain, links longer than `r·(1+f)` are dead, and in between the success
//!   probability falls off smoothly — a pragmatic stand-in for log-normal
//!   shadowing that keeps the simulator deterministic per seed.
//! * `background_loss` adds an independent per-reception loss probability
//!   (thermal noise, interference from outside the simulated network).

use crate::geometry::Position;
use crate::rng::SimRng;

/// Radio parameters shared by all nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadioConfig {
    /// Nominal transmission range in metres (802.11b-era default: 250 m).
    pub range_m: f64,
    /// Fractional width of the fading band around the nominal range, in
    /// `[0, 1)`. Zero selects the ideal-disk model.
    pub fading_fraction: f64,
    /// Independent per-reception loss probability from background noise.
    pub background_loss: f64,
    /// Carrier-sense range as a multiple of `range_m` (≥ 1). Transmissions
    /// audible within this radius defer CSMA senders and collide receptions.
    pub carrier_sense_factor: f64,
    /// Link bit rate in bits per second (802.11 broadcast frames are sent at
    /// a base rate; default 2 Mb/s).
    pub bitrate_bps: u64,
    /// Fixed per-frame physical-layer overhead in microseconds (preamble +
    /// PLCP header).
    pub phy_overhead_us: u64,
    /// Capture effect: a reception survives overlapping interference when
    /// every interferer is at least this factor farther from the receiver
    /// than the signal source (distance standing in for power under the
    /// disk model). `0.0` disables capture — any overlap collides, the
    /// paper's formal collision model.
    pub capture_ratio: f64,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            range_m: 250.0,
            fading_fraction: 0.1,
            background_loss: 0.005,
            carrier_sense_factor: 1.5,
            bitrate_bps: 2_000_000,
            phy_overhead_us: 192,
            capture_ratio: 0.0,
        }
    }
}

impl RadioConfig {
    /// The ideal-disk model of the paper's formal sections: no fading, no
    /// background noise. Used by deterministic correctness tests.
    pub fn ideal_disk(range_m: f64) -> Self {
        RadioConfig {
            range_m,
            fading_fraction: 0.0,
            background_loss: 0.0,
            carrier_sense_factor: 1.0,
            ..RadioConfig::default()
        }
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.range_m.is_nan() || self.range_m <= 0.0 {
            return Err(format!("range_m must be positive, got {}", self.range_m));
        }
        if !(0.0..1.0).contains(&self.fading_fraction) {
            return Err(format!(
                "fading_fraction must be in [0,1), got {}",
                self.fading_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.background_loss) {
            return Err(format!(
                "background_loss must be in [0,1], got {}",
                self.background_loss
            ));
        }
        if self.carrier_sense_factor < 1.0 {
            return Err(format!(
                "carrier_sense_factor must be >= 1, got {}",
                self.carrier_sense_factor
            ));
        }
        if self.bitrate_bps == 0 {
            return Err("bitrate_bps must be positive".to_owned());
        }
        if self.capture_ratio < 0.0 || !self.capture_ratio.is_finite() {
            return Err(format!(
                "capture_ratio must be a non-negative finite number, got {}",
                self.capture_ratio
            ));
        }
        Ok(())
    }

    /// Air time in microseconds for a frame of `bytes` payload bytes.
    pub fn air_time_us(&self, bytes: usize) -> u64 {
        self.phy_overhead_us + (bytes as u64 * 8 * 1_000_000) / self.bitrate_bps
    }
}

/// Evaluates link quality between positions under a [`RadioConfig`].
#[derive(Clone, Debug)]
pub struct RadioModel {
    config: RadioConfig,
}

impl RadioModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; see [`RadioConfig::validate`].
    pub fn new(config: RadioConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid radio config: {e}");
        }
        RadioModel { config }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &RadioConfig {
        &self.config
    }

    /// Probability that a frame sent from `tx` is decodable at `rx`,
    /// ignoring collisions and background noise.
    pub fn link_success_probability(&self, tx: &Position, rx: &Position) -> f64 {
        let d = tx.distance(rx);
        let r = self.config.range_m;
        let f = self.config.fading_fraction;
        if f == 0.0 {
            return if d <= r { 1.0 } else { 0.0 };
        }
        let inner = r * (1.0 - f);
        let outer = r * (1.0 + f);
        if d <= inner {
            1.0
        } else if d >= outer {
            0.0
        } else {
            // Smoothstep falloff across the fading band.
            let t = (d - inner) / (outer - inner);
            let s = 1.0 - t;
            s * s * (3.0 - 2.0 * s)
        }
    }

    /// The audible (carrier-sense) radius in metres: beyond this distance a
    /// transmission can neither defer a sender nor corrupt a reception, so
    /// it bounds every spatial query the engine makes.
    pub fn audible_radius(&self) -> f64 {
        self.config.range_m * self.config.carrier_sense_factor * (1.0 + self.config.fading_fraction)
    }

    /// Whether a transmission from `tx` is *audible* at `rx` — strong enough
    /// to defer a CSMA sender or corrupt an overlapping reception, even if
    /// not decodable.
    pub fn audible(&self, tx: &Position, rx: &Position) -> bool {
        let cs = self.audible_radius();
        tx.distance_squared(rx) <= cs * cs
    }

    /// Draws whether a frame from `tx` is received at `rx`, combining link
    /// fading and background noise (but not collisions, which the engine
    /// resolves from transmission overlap).
    pub fn draw_reception(&self, tx: &Position, rx: &Position, rng: &mut SimRng) -> bool {
        let p = self.link_success_probability(tx, rx);
        if p <= 0.0 {
            return false;
        }
        if !rng.gen_bool(p) {
            return false;
        }
        !rng.gen_bool(self.config.background_loss)
    }

    /// Whether a reception from `signal` at `rx` survives interference from
    /// a concurrent transmission at `interferer` — the capture effect.
    /// Always `false` when capture is disabled.
    pub fn captures(&self, signal: &Position, interferer: &Position, rx: &Position) -> bool {
        if self.config.capture_ratio <= 0.0 {
            return false;
        }
        let ds = signal.distance(rx);
        let di = interferer.distance(rx);
        di >= ds * self.config.capture_ratio
    }

    /// Whether two nodes are neighbours under the *formal* disk model — used
    /// to compute ground-truth `N(1, p)` sets in analyses and tests.
    pub fn in_nominal_range(&self, a: &Position, b: &Position) -> bool {
        let r = self.config.range_m;
        a.distance_squared(b) <= r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_disk_is_sharp() {
        let m = RadioModel::new(RadioConfig::ideal_disk(100.0));
        let o = Position::new(0.0, 0.0);
        assert_eq!(
            m.link_success_probability(&o, &Position::new(99.0, 0.0)),
            1.0
        );
        assert_eq!(
            m.link_success_probability(&o, &Position::new(101.0, 0.0)),
            0.0
        );
        let mut rng = SimRng::new(1);
        assert!(m.draw_reception(&o, &Position::new(50.0, 0.0), &mut rng));
        assert!(!m.draw_reception(&o, &Position::new(150.0, 0.0), &mut rng));
    }

    #[test]
    fn fading_band_is_monotone() {
        let m = RadioModel::new(RadioConfig {
            range_m: 100.0,
            fading_fraction: 0.2,
            ..RadioConfig::default()
        });
        let o = Position::new(0.0, 0.0);
        let mut last = 1.0;
        for d in [70.0, 80.0, 85.0, 90.0, 100.0, 110.0, 115.0, 120.0, 130.0] {
            let p = m.link_success_probability(&o, &Position::new(d, 0.0));
            assert!(p <= last + 1e-12, "non-monotone at {d}: {p} > {last}");
            last = p;
        }
        assert_eq!(
            m.link_success_probability(&o, &Position::new(79.9, 0.0)),
            1.0
        );
        assert_eq!(
            m.link_success_probability(&o, &Position::new(120.1, 0.0)),
            0.0
        );
    }

    #[test]
    fn audible_extends_beyond_decodable() {
        let m = RadioModel::new(RadioConfig {
            range_m: 100.0,
            fading_fraction: 0.0,
            carrier_sense_factor: 2.0,
            ..RadioConfig::default()
        });
        let o = Position::new(0.0, 0.0);
        assert!(m.audible(&o, &Position::new(150.0, 0.0)));
        assert!(!m.audible(&o, &Position::new(250.0, 0.0)));
        assert_eq!(
            m.link_success_probability(&o, &Position::new(150.0, 0.0)),
            0.0
        );
    }

    #[test]
    fn background_loss_drops_some_frames() {
        let m = RadioModel::new(RadioConfig {
            range_m: 100.0,
            fading_fraction: 0.0,
            background_loss: 0.3,
            ..RadioConfig::default()
        });
        let o = Position::new(0.0, 0.0);
        let rx = Position::new(10.0, 0.0);
        let mut rng = SimRng::new(7);
        let ok = (0..10_000)
            .filter(|_| m.draw_reception(&o, &rx, &mut rng))
            .count();
        let ratio = ok as f64 / 10_000.0;
        assert!((ratio - 0.7).abs() < 0.03, "ratio was {ratio}");
    }

    #[test]
    fn air_time_accounts_for_overhead_and_rate() {
        let c = RadioConfig {
            bitrate_bps: 1_000_000,
            phy_overhead_us: 100,
            ..RadioConfig::default()
        };
        // 125 bytes at 1 Mb/s = 1000 us + 100 us overhead.
        assert_eq!(c.air_time_us(125), 1100);
        assert_eq!(c.air_time_us(0), 100);
    }

    #[test]
    #[should_panic(expected = "invalid radio config")]
    fn invalid_config_panics() {
        RadioModel::new(RadioConfig {
            range_m: -1.0,
            ..RadioConfig::default()
        });
    }

    #[test]
    fn validate_reports_each_field() {
        let base = RadioConfig::default();
        assert!(RadioConfig {
            fading_fraction: 1.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(RadioConfig {
            background_loss: 1.5,
            ..base
        }
        .validate()
        .is_err());
        assert!(RadioConfig {
            carrier_sense_factor: 0.5,
            ..base
        }
        .validate()
        .is_err());
        assert!(RadioConfig {
            bitrate_bps: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(base.validate().is_ok());
    }
}

#[cfg(test)]
mod capture_tests {
    use super::*;

    #[test]
    fn capture_disabled_by_default() {
        let m = RadioModel::new(RadioConfig::default());
        let rx = Position::new(0.0, 0.0);
        assert!(!m.captures(&Position::new(10.0, 0.0), &Position::new(1000.0, 0.0), &rx));
    }

    #[test]
    fn near_signal_captures_over_far_interferer() {
        let m = RadioModel::new(RadioConfig {
            capture_ratio: 3.0,
            ..RadioConfig::default()
        });
        let rx = Position::new(0.0, 0.0);
        let near = Position::new(50.0, 0.0);
        let far = Position::new(200.0, 0.0);
        // 200 >= 50 * 3: the near signal survives.
        assert!(m.captures(&near, &far, &rx));
        // The far "signal" does not survive the near interferer.
        assert!(!m.captures(&far, &near, &rx));
        // Comparable distances: nobody captures.
        assert!(!m.captures(&near, &Position::new(60.0, 0.0), &rx));
    }

    #[test]
    fn invalid_capture_ratio_rejected() {
        assert!(RadioConfig {
            capture_ratio: -1.0,
            ..RadioConfig::default()
        }
        .validate()
        .is_err());
        assert!(RadioConfig {
            capture_ratio: f64::NAN,
            ..RadioConfig::default()
        }
        .validate()
        .is_err());
    }
}
