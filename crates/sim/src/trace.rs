//! Optional structured event tracing for debugging and white-box tests.
//!
//! Tracing is off by default and costs one branch per event when disabled.
//! When enabled, the engine records radio and protocol events into a bounded
//! ring buffer that tests can inspect.

use std::collections::VecDeque;

use crate::node::NodeId;
use crate::time::SimTime;

/// A traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node started transmitting a frame.
    TxStart {
        /// The transmitting node.
        node: NodeId,
        /// Message kind label.
        kind: &'static str,
        /// Frame size in bytes.
        bytes: usize,
    },
    /// A frame was successfully received.
    Rx {
        /// The receiving node.
        node: NodeId,
        /// The transmitting node.
        from: NodeId,
        /// Message kind label.
        kind: &'static str,
    },
    /// A reception was destroyed by a collision.
    Collision {
        /// The receiver that lost the frame.
        node: NodeId,
        /// The transmitter whose frame was lost.
        from: NodeId,
    },
    /// A protocol emitted a free-form note via [`crate::Context::note`].
    Note {
        /// The node that emitted the note.
        node: NodeId,
        /// The note text.
        text: String,
    },
    /// An application-level delivery.
    Deliver {
        /// The accepting node.
        node: NodeId,
        /// Claimed originator.
        origin: NodeId,
        /// Payload id.
        payload_id: u64,
    },
    /// A fault-plan event was executed by the engine.
    Fault {
        /// The affected node, if the fault targets one (jams do not).
        node: Option<NodeId>,
        /// Short label: `"crash"`, `"restart"`, `"byz-on"`, `"byz-off"`,
        /// `"jam-start"`, `"jam-end"`.
        label: &'static str,
    },
}

/// A timestamped trace entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event happened.
    pub time: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// A bounded trace buffer.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            capacity: 0,
            entries: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Creates an enabled trace keeping the most recent `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity,
            entries: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Whether tracing is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` at `time` if enabled.
    pub fn record(&mut self, time: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { time, event });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// How many entries were evicted by the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(
            SimTime::ZERO,
            TraceEvent::Note {
                node: NodeId(0),
                text: "x".into(),
            },
        );
        assert!(t.is_empty());
        assert!(!t.enabled());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::with_capacity(2);
        for i in 0..4u64 {
            t.record(
                SimTime::from_micros(i),
                TraceEvent::Deliver {
                    node: NodeId(0),
                    origin: NodeId(1),
                    payload_id: i,
                },
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 2);
        let times: Vec<u64> = t.entries().map(|e| e.time.as_micros()).collect();
        assert_eq!(times, vec![2, 3]);
    }
}
