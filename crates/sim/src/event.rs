//! The discrete-event queue.
//!
//! Events are ordered by time with a monotone sequence number as tie-breaker,
//! so simultaneous events are processed in insertion order and runs are fully
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::{AppPayload, NodeId, TimerKey};
use crate::time::SimTime;

/// What happens when an event fires. Interpreted by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Deliver `on_start` to every node (scheduled once at time zero).
    StartAll,
    /// A protocol timer may be due on `node` (stale timers are skipped).
    Timer {
        /// The node owning the timer.
        node: NodeId,
        /// The protocol-chosen key.
        key: TimerKey,
    },
    /// The workload injects an application broadcast at `node`.
    AppBroadcast {
        /// The originating node.
        node: NodeId,
        /// The payload being broadcast.
        payload: AppPayload,
    },
    /// `node`'s MAC should re-check the medium and try to transmit.
    MacAttempt {
        /// The node with a pending frame.
        node: NodeId,
    },
    /// Transmission `tx_id` finishes; resolve its receptions.
    TxEnd {
        /// The engine-assigned transmission id.
        tx_id: u64,
    },
    /// Advance the mobility model by one tick.
    MobilityTick,
    /// Execute the fault-plan event at `index` (into the sorted plan).
    Fault {
        /// Index into the engine's sorted fault-event list.
        index: usize,
    },
}

/// A scheduled event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone tie-breaker ensuring deterministic ordering.
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), EventKind::MobilityTick);
        q.push(SimTime::from_secs(1), EventKind::StartAll);
        q.push(SimTime::from_secs(2), EventKind::TxEnd { tx_id: 1 });
        assert_eq!(q.pop().unwrap().kind, EventKind::StartAll);
        assert_eq!(q.pop().unwrap().kind, EventKind::TxEnd { tx_id: 1 });
        assert_eq!(q.pop().unwrap().kind, EventKind::MobilityTick);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for id in 0..10 {
            q.push(t, EventKind::TxEnd { tx_id: id });
        }
        for id in 0..10 {
            match q.pop().unwrap().kind {
                EventKind::TxEnd { tx_id } => assert_eq!(tx_id, id),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(5), EventKind::MobilityTick);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }
}
