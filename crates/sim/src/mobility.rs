//! Node mobility models.
//!
//! The paper's system model is a mobile ad-hoc network: "due to mobility, the
//! physical structure of the network is constantly evolving". The engine
//! advances positions on a fixed tick by calling the configured
//! [`MobilityModel`]. Three models are provided:
//!
//! * [`StaticPlacement`] — nodes never move; placements can be uniform
//!   random, explicit, a line, or a grid (the last two are used by the
//!   worst-case analyses of paper §3.5).
//! * [`RandomWaypoint`] — the classic model: pick a destination uniformly in
//!   the field, move to it at a uniform-random speed, pause, repeat.
//! * [`RandomWalk`] — pick a heading, walk for an exponential time, turn.

use crate::geometry::{Field, Position};
use crate::rng::SimRng;
use crate::time::SimDuration;

/// A mobility model: produces initial placements and advances them in time.
pub trait MobilityModel {
    /// Initial positions for `n` nodes.
    fn initial_positions(&mut self, n: usize, field: &Field, rng: &mut SimRng) -> Vec<Position>;

    /// Advances all positions by `dt`. Implementations must keep positions
    /// inside `field`.
    fn step(
        &mut self,
        positions: &mut [Position],
        dt: SimDuration,
        field: &Field,
        rng: &mut SimRng,
    );

    /// Whether positions can ever change; static models let the engine skip
    /// mobility ticks entirely.
    fn is_static(&self) -> bool {
        false
    }
}

/// Fixed node placements.
#[derive(Clone, Debug)]
pub enum StaticPlacement {
    /// Uniformly random positions in the field.
    UniformRandom,
    /// Exactly these positions (must match the node count).
    Explicit(Vec<Position>),
    /// Evenly spaced along a horizontal line through the field's centre,
    /// `spacing` metres apart, starting at x = 0.
    Line {
        /// Distance between consecutive nodes in metres.
        spacing: f64,
    },
    /// A square-ish grid filling the field.
    Grid,
}

impl MobilityModel for StaticPlacement {
    fn initial_positions(&mut self, n: usize, field: &Field, rng: &mut SimRng) -> Vec<Position> {
        match self {
            StaticPlacement::UniformRandom => (0..n).map(|_| field.random_position(rng)).collect(),
            StaticPlacement::Explicit(ps) => {
                assert_eq!(
                    ps.len(),
                    n,
                    "explicit placement has {} positions for {} nodes",
                    ps.len(),
                    n
                );
                ps.clone()
            }
            StaticPlacement::Line { spacing } => {
                let y = field.height / 2.0;
                (0..n)
                    .map(|i| field.clamp(Position::new(i as f64 * *spacing, y)))
                    .collect()
            }
            StaticPlacement::Grid => {
                let cols = (n as f64).sqrt().ceil() as usize;
                let rows = n.div_ceil(cols);
                let dx = field.width / cols as f64;
                let dy = field.height / rows as f64;
                (0..n)
                    .map(|i| {
                        let c = i % cols;
                        let r = i / cols;
                        Position::new((c as f64 + 0.5) * dx, (r as f64 + 0.5) * dy)
                    })
                    .collect()
            }
        }
    }

    fn step(&mut self, _: &mut [Position], _: SimDuration, _: &Field, _: &mut SimRng) {}

    fn is_static(&self) -> bool {
        true
    }
}

/// Per-node random-waypoint state.
#[derive(Clone, Copy, Debug)]
enum WaypointState {
    Moving { target: Position, speed_mps: f64 },
    Pausing { remaining: SimDuration },
}

/// The random waypoint model.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    /// Minimum speed in metres per second (must be positive so nodes cannot
    /// freeze forever — the classic RWP pitfall).
    pub min_speed_mps: f64,
    /// Maximum speed in metres per second.
    pub max_speed_mps: f64,
    /// Pause duration on reaching a waypoint.
    pub pause: SimDuration,
    states: Vec<WaypointState>,
}

impl RandomWaypoint {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if speeds are not `0 < min <= max`.
    pub fn new(min_speed_mps: f64, max_speed_mps: f64, pause: SimDuration) -> Self {
        assert!(
            min_speed_mps > 0.0 && min_speed_mps <= max_speed_mps,
            "need 0 < min_speed <= max_speed"
        );
        RandomWaypoint {
            min_speed_mps,
            max_speed_mps,
            pause,
            states: Vec::new(),
        }
    }

    fn random_speed(&self, rng: &mut SimRng) -> f64 {
        self.min_speed_mps + rng.gen_f64() * (self.max_speed_mps - self.min_speed_mps)
    }
}

impl MobilityModel for RandomWaypoint {
    fn initial_positions(&mut self, n: usize, field: &Field, rng: &mut SimRng) -> Vec<Position> {
        let positions: Vec<Position> = (0..n).map(|_| field.random_position(rng)).collect();
        self.states = (0..n)
            .map(|_| WaypointState::Moving {
                target: field.random_position(rng),
                speed_mps: self.random_speed(rng),
            })
            .collect();
        positions
    }

    fn step(
        &mut self,
        positions: &mut [Position],
        dt: SimDuration,
        field: &Field,
        rng: &mut SimRng,
    ) {
        let dt_s = dt.as_secs_f64();
        for (i, pos) in positions.iter_mut().enumerate() {
            match self.states[i] {
                WaypointState::Moving { target, speed_mps } => {
                    let (next, reached) = pos.step_towards(&target, speed_mps * dt_s);
                    *pos = next;
                    if reached {
                        self.states[i] = if self.pause > SimDuration::ZERO {
                            WaypointState::Pausing {
                                remaining: self.pause,
                            }
                        } else {
                            WaypointState::Moving {
                                target: field.random_position(rng),
                                speed_mps: self.random_speed(rng),
                            }
                        };
                    }
                }
                WaypointState::Pausing { remaining } => {
                    if remaining <= dt {
                        self.states[i] = WaypointState::Moving {
                            target: field.random_position(rng),
                            speed_mps: self.random_speed(rng),
                        };
                    } else {
                        self.states[i] = WaypointState::Pausing {
                            remaining: remaining - dt,
                        };
                    }
                }
            }
        }
    }
}

/// The random walk (random direction) model: walk on a heading for an
/// exponentially distributed leg time, then turn; reflect off field borders.
#[derive(Clone, Debug)]
pub struct RandomWalk {
    /// Constant walking speed in metres per second.
    pub speed_mps: f64,
    /// Mean leg duration before picking a new heading.
    pub mean_leg: SimDuration,
    headings: Vec<f64>,
    leg_remaining: Vec<SimDuration>,
}

impl RandomWalk {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps` is not positive.
    pub fn new(speed_mps: f64, mean_leg: SimDuration) -> Self {
        assert!(speed_mps > 0.0, "speed must be positive");
        RandomWalk {
            speed_mps,
            mean_leg,
            headings: Vec::new(),
            leg_remaining: Vec::new(),
        }
    }

    fn new_leg(&self, rng: &mut SimRng) -> (f64, SimDuration) {
        let heading = rng.gen_f64() * std::f64::consts::TAU;
        let leg = SimDuration::from_secs_f64(rng.gen_exp(self.mean_leg.as_secs_f64()));
        (heading, leg)
    }
}

impl MobilityModel for RandomWalk {
    fn initial_positions(&mut self, n: usize, field: &Field, rng: &mut SimRng) -> Vec<Position> {
        let positions: Vec<Position> = (0..n).map(|_| field.random_position(rng)).collect();
        self.headings.clear();
        self.leg_remaining.clear();
        for _ in 0..n {
            let (h, l) = self.new_leg(rng);
            self.headings.push(h);
            self.leg_remaining.push(l);
        }
        positions
    }

    fn step(
        &mut self,
        positions: &mut [Position],
        dt: SimDuration,
        field: &Field,
        rng: &mut SimRng,
    ) {
        let dt_s = dt.as_secs_f64();
        for (i, pos) in positions.iter_mut().enumerate() {
            if self.leg_remaining[i] <= dt {
                let (h, l) = self.new_leg(rng);
                self.headings[i] = h;
                self.leg_remaining[i] = l;
            } else {
                self.leg_remaining[i] = self.leg_remaining[i] - dt;
            }
            let mut x = pos.x + self.speed_mps * dt_s * self.headings[i].cos();
            let mut y = pos.y + self.speed_mps * dt_s * self.headings[i].sin();
            // Reflect off the borders, flipping the heading component.
            if x < 0.0 || x > field.width {
                self.headings[i] = std::f64::consts::PI - self.headings[i];
                x = x.clamp(0.0, field.width);
            }
            if y < 0.0 || y > field.height {
                self.headings[i] = -self.headings[i];
                y = y.clamp(0.0, field.height);
            }
            *pos = Position::new(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Field {
        Field::new(100.0, 100.0)
    }

    #[test]
    fn static_models_do_not_move() {
        let mut m = StaticPlacement::UniformRandom;
        let mut rng = SimRng::new(1);
        let f = field();
        let mut ps = m.initial_positions(5, &f, &mut rng);
        let before = ps.clone();
        m.step(&mut ps, SimDuration::from_secs(10), &f, &mut rng);
        assert_eq!(ps, before);
        assert!(m.is_static());
    }

    #[test]
    fn explicit_placement_round_trips() {
        let want = vec![Position::new(1.0, 2.0), Position::new(3.0, 4.0)];
        let mut m = StaticPlacement::Explicit(want.clone());
        let mut rng = SimRng::new(1);
        assert_eq!(m.initial_positions(2, &field(), &mut rng), want);
    }

    #[test]
    #[should_panic(expected = "explicit placement")]
    fn explicit_placement_wrong_count_panics() {
        let mut m = StaticPlacement::Explicit(vec![Position::new(1.0, 2.0)]);
        let mut rng = SimRng::new(1);
        m.initial_positions(2, &field(), &mut rng);
    }

    #[test]
    fn line_placement_spacing() {
        let mut m = StaticPlacement::Line { spacing: 10.0 };
        let mut rng = SimRng::new(1);
        let ps = m.initial_positions(4, &field(), &mut rng);
        assert_eq!(ps[0], Position::new(0.0, 50.0));
        assert_eq!(ps[3], Position::new(30.0, 50.0));
    }

    #[test]
    fn grid_placement_covers_field() {
        let mut m = StaticPlacement::Grid;
        let mut rng = SimRng::new(1);
        let f = field();
        let ps = m.initial_positions(9, &f, &mut rng);
        assert_eq!(ps.len(), 9);
        for p in &ps {
            assert!(f.contains(*p));
        }
        // 3x3 grid in a 100x100 field: first cell centre.
        assert!((ps[0].x - 100.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn waypoint_nodes_move_and_stay_in_field() {
        let mut m = RandomWaypoint::new(1.0, 5.0, SimDuration::from_secs(1));
        let mut rng = SimRng::new(2);
        let f = field();
        let mut ps = m.initial_positions(10, &f, &mut rng);
        let before = ps.clone();
        for _ in 0..100 {
            m.step(&mut ps, SimDuration::from_millis(200), &f, &mut rng);
            for p in &ps {
                assert!(f.contains(*p), "escaped field: {p:?}");
            }
        }
        let moved = ps
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.distance(b) > 1.0)
            .count();
        assert!(moved >= 8, "only {moved} nodes moved");
    }

    #[test]
    fn waypoint_pause_holds_position() {
        let mut m = RandomWaypoint::new(100.0, 100.0, SimDuration::from_secs(60));
        let mut rng = SimRng::new(3);
        let f = field();
        let mut ps = m.initial_positions(1, &f, &mut rng);
        // Fast speed: reaches waypoint quickly, then must pause for 60 s.
        for _ in 0..50 {
            m.step(&mut ps, SimDuration::from_millis(200), &f, &mut rng);
        }
        let at_pause = ps[0];
        m.step(&mut ps, SimDuration::from_millis(200), &f, &mut rng);
        assert_eq!(ps[0], at_pause, "node moved during pause");
    }

    #[test]
    fn walk_nodes_move_and_stay_in_field() {
        let mut m = RandomWalk::new(3.0, SimDuration::from_secs(5));
        let mut rng = SimRng::new(4);
        let f = field();
        let mut ps = m.initial_positions(10, &f, &mut rng);
        for _ in 0..500 {
            m.step(&mut ps, SimDuration::from_millis(200), &f, &mut rng);
            for p in &ps {
                assert!(f.contains(*p), "escaped field: {p:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "min_speed")]
    fn waypoint_rejects_zero_speed() {
        RandomWaypoint::new(0.0, 1.0, SimDuration::ZERO);
    }
}
