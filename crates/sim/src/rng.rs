//! Deterministic pseudo-random number generation for the simulator.
//!
//! The engine must be bit-for-bit reproducible from a seed across platforms
//! and across versions of external crates, so it carries its own small PRNG —
//! a PCG32 seeded through SplitMix64 — instead of depending on `rand`'s
//! implementation details. Workload generation in higher layers may still use
//! `rand`; the simulator core uses only this.

/// A PCG-XSH-RR 32-bit generator with a SplitMix64-expanded seed.
///
/// Statistically strong for simulation purposes, 16 bytes of state, and
/// trivially reproducible.
///
/// ```
/// use byzcast_sim::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let die = a.gen_range(1, 7);
/// assert!((1..7).contains(&die));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = splitmix64(&mut sm);
        let inc = splitmix64(&mut sm) | 1; // stream must be odd
        let mut rng = SimRng { state: 0, inc };
        rng.state = state.wrapping_add(inc);
        rng.next_u32();
        rng
    }

    /// Derives an independent child generator; used to give each node its own
    /// stream so that adding a node does not perturb the draws of the others.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let mut sm = self.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
        let state = splitmix64(&mut sm);
        let inc = splitmix64(&mut sm) | 1;
        let mut rng = SimRng { state: 0, inc };
        rng.state = state.wrapping_add(inc);
        rng.next_u32();
        rng
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform integer in `[0, bound)` using Lemire-style rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be positive");
        // Rejection sampling over the top of the range to remove modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi");
        lo + self.gen_range_u64(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// inter-arrival workloads).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.gen_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range_u64(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn forked_streams_are_independent_of_sibling_draws() {
        let mut root1 = SimRng::new(7);
        let mut root2 = SimRng::new(7);
        let mut f1 = root1.fork(0);
        let mut f2 = root2.fork(0);
        // Using root2 further must not change what fork 0 produces.
        let _ = root2.fork(1);
        for _ in 0..100 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0, 10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-3.0));
        assert!(rng.gen_bool(7.0));
    }

    #[test]
    fn gen_exp_has_requested_mean() {
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(17);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::new(1).gen_range_u64(0);
    }
}
