//! Simulation time: microsecond-resolution instants and durations.
//!
//! [`SimTime`] is an absolute instant since the start of the run, [`SimDuration`]
//! a non-negative span. Both are newtypes over `u64` microseconds so that times
//! and durations cannot be confused and arithmetic saturates instead of
//! panicking on overflow.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute simulation instant, in microseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulation time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw value in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds; negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6) as u64)
    }

    /// Raw value in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating scalar multiplication.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Checked scalar division; `None` when `k` is zero.
    pub fn checked_div(self, k: u64) -> Option<SimDuration> {
        self.0.checked_div(k).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn negative_f64_duration_clamps_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn add_and_subtract() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(
            t.saturating_since(SimTime::from_secs(1)),
            SimDuration::from_millis(500)
        );
        // Saturating: earlier.since(later) is zero, not a panic.
        assert_eq!(SimTime::from_secs(1).saturating_since(t), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs(1).checked_since(t), None);
    }

    #[test]
    fn overflow_saturates() {
        let t = SimTime::MAX + SimDuration::from_secs(10);
        assert_eq!(t, SimTime::MAX);
        let d = SimDuration::MAX.saturating_mul(3);
        assert_eq!(d, SimDuration::MAX);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_micros(2));
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
