//! Spatial indexing of the radio medium.
//!
//! The engine's hot path asks two geometric questions per transmission end:
//! *which nodes might hear this frame* and *which other transmissions might
//! interfere at a given receiver*. Answered naively both cost a scan over all
//! nodes or all in-flight transmissions; this module answers them with
//! uniform grids over the field, SWANS-style, so each query touches only the
//! cells a disk of the audible radius can overlap.
//!
//! Both indexes are **conservative**: a query returns a superset of the
//! entities inside the query disk (everything in the overlapping cells), and
//! the caller re-applies the exact geometric predicate. Because the engine
//! filters candidates with the very same [`crate::radio::RadioModel::audible`]
//! check the naive scan uses — and [`NodeGrid::candidates_within`] returns
//! ids in ascending order, matching the naive `0..n` iteration — runs are
//! bit-for-bit identical with and without the index.

use crate::geometry::{Field, Position};
use crate::time::SimTime;

/// Shared cell geometry: a `cols × rows` uniform grid over the field.
///
/// Positions outside the field (legal for explicitly placed nodes) are
/// clamped onto the boundary cells. Clamping is monotone, so the
/// conservative-superset property survives: if an unclamped cell coordinate
/// falls inside an unclamped query range, the clamped coordinate falls inside
/// the clamped range.
#[derive(Clone, Debug)]
struct CellGeometry {
    cell: f64,
    cols: usize,
    rows: usize,
}

impl CellGeometry {
    fn new(field: &Field, cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
        CellGeometry {
            cell,
            cols: (field.width / cell).ceil().max(1.0) as usize,
            rows: (field.height / cell).ceil().max(1.0) as usize,
        }
    }

    fn clamp_col(&self, c: f64) -> usize {
        (c.max(0.0) as usize).min(self.cols - 1)
    }

    fn clamp_row(&self, r: f64) -> usize {
        (r.max(0.0) as usize).min(self.rows - 1)
    }

    fn cell_index(&self, p: &Position) -> usize {
        let col = self.clamp_col((p.x / self.cell).floor());
        let row = self.clamp_row((p.y / self.cell).floor());
        row * self.cols + col
    }

    /// The inclusive cell-index rectangle overlapped by a disk of `radius`
    /// around `center`.
    fn block(&self, center: &Position, radius: f64) -> (usize, usize, usize, usize) {
        let lo_col = self.clamp_col(((center.x - radius) / self.cell).floor());
        let hi_col = self.clamp_col(((center.x + radius) / self.cell).floor());
        let lo_row = self.clamp_row(((center.y - radius) / self.cell).floor());
        let hi_row = self.clamp_row(((center.y + radius) / self.cell).floor());
        (lo_col, hi_col, lo_row, hi_row)
    }
}

/// A uniform grid over node positions, maintained incrementally as nodes
/// move on mobility ticks.
#[derive(Clone, Debug)]
pub struct NodeGrid {
    geometry: CellGeometry,
    /// Node ids per cell. Each list is kept sorted ascending.
    cells: Vec<Vec<u32>>,
    /// Current cell of each node, indexed by node id.
    cell_of: Vec<usize>,
    /// Scratch bitmap over node ids, one bit per node. Queries mark
    /// candidate bits and then walk the words in order, which yields
    /// ascending ids without sorting the concatenated cell lists.
    mask: Vec<u64>,
}

impl NodeGrid {
    /// Builds a grid with the given cell size over `positions`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is non-positive or non-finite.
    pub fn new(field: &Field, cell: f64, positions: &[Position]) -> Self {
        let geometry = CellGeometry::new(field, cell);
        let mut cells = vec![Vec::new(); geometry.cols * geometry.rows];
        let mut cell_of = Vec::with_capacity(positions.len());
        for (i, p) in positions.iter().enumerate() {
            let c = geometry.cell_index(p);
            cells[c].push(i as u32); // ascending: i is monotone
            cell_of.push(c);
        }
        NodeGrid {
            geometry,
            cells,
            mask: vec![0u64; positions.len().div_ceil(64)],
            cell_of,
        }
    }

    /// Re-buckets every node whose position changed. Called once per
    /// mobility tick; O(n) with cheap per-node work.
    pub fn refresh(&mut self, positions: &[Position]) {
        debug_assert_eq!(positions.len(), self.cell_of.len());
        for (i, p) in positions.iter().enumerate() {
            let new_cell = self.geometry.cell_index(p);
            let old_cell = self.cell_of[i];
            if new_cell == old_cell {
                continue;
            }
            let id = i as u32;
            let old = &mut self.cells[old_cell];
            let at = old.binary_search(&id).expect("node missing from its cell");
            old.remove(at);
            let new = &mut self.cells[new_cell];
            let at = new.binary_search(&id).unwrap_err();
            new.insert(at, id);
            self.cell_of[i] = new_cell;
        }
    }

    /// Appends to `out` every node id whose cell overlaps the disk of
    /// `radius` around `center` — a superset of the nodes inside the disk —
    /// in **ascending id order** (the order the naive `0..n` scan visits
    /// them).
    pub fn candidates_within(&mut self, center: &Position, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        self.mask.fill(0);
        let (lo_col, hi_col, lo_row, hi_row) = self.geometry.block(center, radius);
        for row in lo_row..=hi_row {
            for col in lo_col..=hi_col {
                for &id in &self.cells[row * self.geometry.cols + col] {
                    self.mask[id as usize / 64] |= 1u64 << (id % 64);
                }
            }
        }
        for (w, &word) in self.mask.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                out.push(w as u32 * 64 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
    }

    /// The cell index a position maps to (test hook).
    pub fn cell_index(&self, p: &Position) -> usize {
        self.geometry.cell_index(p)
    }

    /// The ids currently bucketed in the cell of `p` (test hook).
    pub fn cell_members(&self, p: &Position) -> &[u32] {
        &self.cells[self.geometry.cell_index(p)]
    }
}

/// One in-flight transmission as the spatial index sees it: everything the
/// engine's half-duplex and collision probes need, so a grid query answers
/// them without chasing the transmission id back through another table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TxEntry {
    /// The engine's monotone transmission id.
    pub id: u64,
    /// Airtime start.
    pub start: SimTime,
    /// Airtime end.
    pub end: SimTime,
    /// Transmitting node id.
    pub src: u32,
    /// The transmitter's position at transmission start (the position
    /// collision and carrier-sense checks use).
    pub src_pos: Position,
}

/// A uniform grid over in-flight transmissions, keyed by `src_pos`.
///
/// Per-cell lists stay sorted by id because ids are assigned monotonically
/// and removal preserves order.
#[derive(Clone, Debug)]
pub struct TxGrid {
    geometry: CellGeometry,
    cells: Vec<Vec<TxEntry>>,
}

impl TxGrid {
    /// Builds an empty transmission index with the given cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is non-positive or non-finite.
    pub fn new(field: &Field, cell: f64) -> Self {
        let geometry = CellGeometry::new(field, cell);
        TxGrid {
            cells: vec![Vec::new(); geometry.cols * geometry.rows],
            geometry,
        }
    }

    /// Registers a transmission.
    pub fn insert(&mut self, entry: TxEntry) {
        self.cells[self.geometry.cell_index(&entry.src_pos)].push(entry);
    }

    /// Unregisters transmission `id` originating at `pos`.
    pub fn remove(&mut self, id: u64, pos: &Position) {
        let cell = &mut self.cells[self.geometry.cell_index(pos)];
        let at = cell
            .binary_search_by_key(&id, |e| e.id)
            .expect("tx missing from its cell");
        cell.remove(at);
    }

    /// Calls `f` with every registered transmission whose origin cell
    /// overlaps the disk of `radius` around `center` — a superset of the
    /// transmissions audible there.
    pub fn for_each_within(&self, center: &Position, radius: f64, mut f: impl FnMut(&TxEntry)) {
        let (lo_col, hi_col, lo_row, hi_row) = self.geometry.block(center, radius);
        for row in lo_row..=hi_row {
            for col in lo_col..=hi_col {
                for entry in &self.cells[row * self.geometry.cols + col] {
                    f(entry);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use std::collections::BTreeSet;

    fn naive_within(positions: &[Position], center: &Position, radius: f64) -> BTreeSet<u32> {
        positions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_squared(center) <= radius * radius)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn candidates_are_a_sorted_superset_of_the_disk() {
        let field = Field::new(1000.0, 800.0);
        let mut rng = SimRng::new(42);
        let positions: Vec<Position> = (0..300).map(|_| field.random_position(&mut rng)).collect();
        let mut grid = NodeGrid::new(&field, 120.0, &positions);
        let mut out = Vec::new();
        for center in &positions {
            for radius in [50.0, 120.0, 333.0] {
                grid.candidates_within(center, radius, &mut out);
                assert!(out.windows(2).all(|w| w[0] < w[1]), "not sorted ascending");
                let candidates: BTreeSet<u32> = out.iter().copied().collect();
                for inside in naive_within(&positions, center, radius) {
                    assert!(candidates.contains(&inside), "grid missed node {inside}");
                }
            }
        }
    }

    #[test]
    fn refresh_moves_nodes_between_cells() {
        let field = Field::new(400.0, 400.0);
        let mut positions = vec![
            Position::new(10.0, 10.0),
            Position::new(390.0, 390.0),
            Position::new(200.0, 200.0),
        ];
        let mut grid = NodeGrid::new(&field, 100.0, &positions);
        assert_eq!(grid.cell_members(&positions[0]), &[0]);

        // Walk node 0 across the whole field in mobility-tick-sized steps.
        for step in 0..40 {
            positions[0] = Position::new(10.0 + step as f64 * 9.7, 10.0 + step as f64 * 9.7);
            grid.refresh(&positions);
        }
        assert_eq!(grid.cell_index(&positions[0]), grid.cell_of[0]);
        assert!(grid.cell_members(&positions[0]).contains(&0));
        // The starting cell no longer lists it.
        assert!(!grid.cell_members(&Position::new(10.0, 10.0)).contains(&0));
        // Total membership is conserved.
        let total: usize = grid.cells.iter().map(Vec::len).sum();
        assert_eq!(total, positions.len());
    }

    #[test]
    fn out_of_field_positions_clamp_onto_boundary_cells() {
        let field = Field::new(300.0, 300.0);
        let positions = vec![Position::new(-50.0, 150.0), Position::new(900.0, 900.0)];
        let mut grid = NodeGrid::new(&field, 100.0, &positions);
        let mut out = Vec::new();
        // A query whose disk covers the out-of-field node must still find it.
        grid.candidates_within(&Position::new(10.0, 150.0), 80.0, &mut out);
        assert!(out.contains(&0));
        grid.candidates_within(&Position::new(290.0, 290.0), 1000.0, &mut out);
        assert!(out.contains(&1));
    }

    #[test]
    fn tx_grid_insert_query_remove_round_trip() {
        let field = Field::new(500.0, 500.0);
        let mut grid = TxGrid::new(&field, 125.0);
        let a = Position::new(10.0, 10.0);
        let b = Position::new(480.0, 480.0);
        let entry = |id: u64, pos: &Position, src: u32| TxEntry {
            id,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            src,
            src_pos: *pos,
        };
        grid.insert(entry(3, &a, 1));
        grid.insert(entry(7, &b, 3));
        grid.insert(entry(9, &a, 4));

        let mut seen = Vec::new();
        grid.for_each_within(&Position::new(60.0, 60.0), 100.0, |e| seen.push(e.id));
        assert_eq!(seen, vec![3, 9]);

        seen.clear();
        grid.for_each_within(&Position::new(250.0, 250.0), 1000.0, |e| {
            seen.push(e.id);
            assert_eq!(e.src as u64 * 2 + 1, e.id); // fields travel with the entry
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![3, 7, 9]);

        grid.remove(3, &a);
        seen.clear();
        grid.for_each_within(&Position::new(60.0, 60.0), 100.0, |e| seen.push(e.id));
        assert_eq!(seen, vec![9]);
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_panics() {
        let _ = NodeGrid::new(&Field::new(10.0, 10.0), 0.0, &[]);
    }
}
