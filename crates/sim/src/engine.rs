//! The discrete-event simulation engine.
//!
//! The engine owns the nodes (boxed [`Protocol`] state machines), their
//! positions, the shared radio medium, per-node MAC state, timers, and
//! metrics. It processes events in deterministic time order:
//!
//! 1. **Protocol actions** (from callbacks) enqueue frames at the node's MAC.
//! 2. The **MAC** carrier-senses the medium and transmits after a random
//!    backoff, retrying while the medium is busy.
//! 3. A **transmission** occupies the medium for its air time; at its end the
//!    engine resolves, per potential receiver, half-duplex misses, collisions
//!    (any overlapping audible transmission destroys the frame), fading and
//!    background-noise losses — and dispatches `on_packet` for survivors.
//!
//! Runs are bit-for-bit reproducible from [`SimConfig::seed`].

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::geometry::{Field, Position};
use crate::mac::{MacConfig, MacState};
use crate::metrics::{BroadcastRecord, DeliveryRecord, Metrics};
use crate::mobility::{MobilityModel, StaticPlacement};
use crate::node::{Action, AppPayload, Context, Message, NodeId, Protocol, TimerKey};
use crate::radio::{RadioConfig, RadioModel};
use crate::rng::SimRng;
use crate::spatial::{NodeGrid, TxEntry, TxGrid};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};

/// Top-level simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed; all randomness in the run derives from it.
    pub seed: u64,
    /// The simulation area.
    pub field: Field,
    /// Radio propagation parameters.
    pub radio: RadioConfig,
    /// MAC-layer parameters.
    pub mac: MacConfig,
    /// How often mobile positions are advanced.
    pub mobility_tick: SimDuration,
    /// Trace ring-buffer capacity; zero disables tracing.
    pub trace_capacity: usize,
    /// Index node positions and in-flight transmissions in uniform spatial
    /// grids so `TxEnd` resolution probes only nearby entities instead of
    /// scanning all of them. Results are bit-identical either way (the grid
    /// is a conservative pre-filter for the exact same geometric predicates);
    /// `false` keeps the naive O(n) scans, mainly for differential testing.
    pub spatial_index: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            field: Field::default(),
            radio: RadioConfig::default(),
            mac: MacConfig::default(),
            mobility_tick: SimDuration::from_millis(200),
            trace_capacity: 0,
            spatial_index: true,
        }
    }
}

/// Object-safe extension of [`Protocol`] adding downcasting, so tests and the
/// harness can inspect concrete protocol state inside a running simulation.
///
/// Blanket-implemented for every `Protocol + 'static`; do not implement
/// manually.
pub trait DynProtocol: Protocol {
    /// The protocol as `Any`, for downcasting.
    fn as_any(&self) -> &dyn Any;
    /// The protocol as mutable `Any`, for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Protocol + 'static> DynProtocol for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A boxed, downcastable protocol instance.
pub type BoxedProtocol<M> = Box<dyn DynProtocol<Msg = M>>;

/// Rebuilds a node's protocol after a restart that lost state
/// (see [`SimBuilder::with_restart_factory`]).
pub type RestartFactory<M> = Box<dyn FnMut(NodeId) -> BoxedProtocol<M>>;

/// An in-flight (or recently finished) radio transmission.
///
/// The payload lives behind an [`Arc`] so resolving receivers never clones
/// the message itself — one `Arc` bump per transmission, however many nodes
/// hear it.
#[derive(Clone, Debug)]
struct Transmission<M> {
    id: u64,
    src: NodeId,
    src_pos: Position,
    start: SimTime,
    end: SimTime,
    msg: Arc<M>,
}

/// Builds a [`Simulator`].
pub struct SimBuilder<M: Message> {
    config: SimConfig,
    mobility: Box<dyn MobilityModel>,
    explicit_positions: Option<Vec<Position>>,
    factories: Vec<BoxedProtocol<M>>,
    fault_plan: FaultPlan,
    restart_factory: Option<RestartFactory<M>>,
}

impl<M: Message> SimBuilder<M> {
    /// Starts a builder with uniform-random static placement.
    pub fn new(config: SimConfig) -> Self {
        SimBuilder {
            config,
            mobility: Box::new(StaticPlacement::UniformRandom),
            explicit_positions: None,
            factories: Vec::new(),
            fault_plan: FaultPlan::new(),
            restart_factory: None,
        }
    }

    /// Injects the faults in `plan` during the run. An empty plan (the
    /// default) schedules nothing and leaves the run bit-identical to one
    /// built without a plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Provides the factory used to rebuild a node's protocol when a
    /// [`FaultKind::Restart`] follows a crash that did not retain state.
    pub fn with_restart_factory(mut self, factory: RestartFactory<M>) -> Self {
        self.restart_factory = Some(factory);
        self
    }

    /// Uses `model` to place and move nodes.
    pub fn with_mobility(mut self, model: Box<dyn MobilityModel>) -> Self {
        self.mobility = model;
        self
    }

    /// Places nodes at exactly these positions (overrides the mobility
    /// model's initial placement; movement still follows the model).
    pub fn with_positions(mut self, positions: Vec<Position>) -> Self {
        self.explicit_positions = Some(positions);
        self
    }

    /// Appends `n` nodes whose protocols are produced by `factory`
    /// (called with each new node's id).
    pub fn with_nodes(
        mut self,
        n: usize,
        mut factory: impl FnMut(NodeId) -> BoxedProtocol<M>,
    ) -> Self {
        let base = self.factories.len() as u32;
        for i in 0..n {
            self.factories.push(factory(NodeId(base + i as u32)));
        }
        self
    }

    /// Appends a single node with the given protocol.
    pub fn with_node(mut self, protocol: BoxedProtocol<M>) -> Self {
        self.factories.push(protocol);
        self
    }

    /// Finalizes the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the radio or MAC configuration is invalid, no nodes were
    /// added, or explicit positions do not match the node count.
    pub fn build(self) -> Simulator<M> {
        if let Err(e) = self.config.radio.validate() {
            panic!("invalid radio config: {e}");
        }
        if let Err(e) = self.config.mac.validate() {
            panic!("invalid MAC config: {e}");
        }
        let n = self.factories.len();
        assert!(n > 0, "simulation needs at least one node");
        if let Err(e) = self.fault_plan.validate(n) {
            panic!("invalid fault plan: {e}");
        }

        let mut master = SimRng::new(self.config.seed);
        let mut placement_rng = master.fork(0x504c4143); // "PLAC"
        let mut mobility = self.mobility;
        let positions = match self.explicit_positions {
            Some(ps) => {
                assert_eq!(ps.len(), n, "explicit positions count mismatch");
                // Let the mobility model initialize its own state for n nodes.
                let _ = mobility.initial_positions(n, &self.config.field, &mut placement_rng);
                ps
            }
            None => mobility.initial_positions(n, &self.config.field, &mut placement_rng),
        };
        let node_rngs = (0..n).map(|i| master.fork(1000 + i as u64)).collect();
        let mobility_rng = master.fork(0x4d4f42);
        let trace = if self.config.trace_capacity > 0 {
            Trace::with_capacity(self.config.trace_capacity)
        } else {
            Trace::disabled()
        };

        let mut queue = EventQueue::new();
        queue.push(SimTime::ZERO, EventKind::StartAll);
        let is_static = mobility.is_static();
        if !is_static {
            queue.push(
                SimTime::ZERO + self.config.mobility_tick,
                EventKind::MobilityTick,
            );
        }
        let fault_events = self.fault_plan.sorted_events();
        for (index, ev) in fault_events.iter().enumerate() {
            queue.push(SimTime::ZERO + ev.at, EventKind::Fault { index });
        }

        let radio = RadioModel::new(self.config.radio);
        let audible_radius = radio.audible_radius();
        // Cell size = the audible radius: a radius-r query then touches at
        // most a 3 × 3 block of cells. A floor on the cell size caps the
        // grid at a sane cell count whatever the radio range. Any positive
        // cell size is correct — the grid is only a conservative pre-filter.
        let (grid, tx_grid) = if self.config.spatial_index && audible_radius > 0.0 {
            let field = &self.config.field;
            let cell = audible_radius.max(field.width.max(field.height) / 128.0);
            (
                Some(NodeGrid::new(field, cell, &positions)),
                Some(TxGrid::new(field, cell)),
            )
        } else {
            (None, None)
        };
        Simulator {
            metrics: Metrics::new(n),
            timers: vec![Vec::new(); n],
            mac: (0..n).map(|_| MacState::default()).collect(),
            fault_events,
            restart_factory: self.restart_factory,
            up: vec![true; n],
            state_lost: vec![false; n],
            active_jams: Vec::new(),
            nodes: self.factories,
            node_rngs,
            positions,
            mobility,
            mobility_rng,
            radio,
            audible_radius,
            grid,
            tx_grid,
            tx_log: vec![VecDeque::new(); n],
            candidate_buf: Vec::new(),
            overlap_buf: Vec::new(),
            actions_buf: Vec::new(),
            config: self.config,
            now: SimTime::ZERO,
            queue,
            active_tx: Vec::new(),
            tx_counter: 0,
            max_air_time: SimDuration::ZERO,
            trace,
        }
    }
}

/// The simulator: a network of protocol nodes over a shared wireless medium.
pub struct Simulator<M: Message> {
    config: SimConfig,
    radio: RadioModel,
    now: SimTime,
    queue: EventQueue,
    nodes: Vec<BoxedProtocol<M>>,
    node_rngs: Vec<SimRng>,
    positions: Vec<Position>,
    mobility: Box<dyn MobilityModel>,
    mobility_rng: SimRng,
    /// Armed timers per node. Protocols use a handful of distinct keys, so a
    /// linear-scan vector beats a hash map here (order is irrelevant: every
    /// access is a point lookup by key).
    timers: Vec<Vec<(TimerKey, SimTime)>>,
    mac: Vec<MacState<M>>,
    /// The fault plan's events, sorted by firing time; `EventKind::Fault`
    /// carries an index into this list. Empty when no plan was given.
    fault_events: Vec<FaultEvent>,
    /// Rebuilds a node's protocol after a restart without retained state.
    restart_factory: Option<RestartFactory<M>>,
    /// Whether each node is up (crashed nodes neither run callbacks nor
    /// touch the radio). All `true` when no fault plan is in effect.
    up: Vec<bool>,
    /// Whether a crash discarded the node's protocol state, so the next
    /// restart must rebuild it through `restart_factory`.
    state_lost: Vec<bool>,
    /// Currently active jam regions: `(id, center, radius_m, loss)`.
    /// Empty whenever no jam window is open — the hot reception path only
    /// pays for jamming while this is non-empty.
    active_jams: Vec<(u32, Position, f64, f64)>,
    /// In-flight (and recently finished) transmissions, sorted by id
    /// (ids are assigned monotonically and pruning preserves order).
    active_tx: Vec<Transmission<M>>,
    tx_counter: u64,
    max_air_time: SimDuration,
    /// Audible (carrier-sense) radius, cached from the radio model: the
    /// radius of every spatial query the engine makes.
    audible_radius: f64,
    /// Node-position grid; `None` when `spatial_index` is off.
    grid: Option<NodeGrid>,
    /// In-flight-transmission grid; `None` when `spatial_index` is off.
    tx_grid: Option<TxGrid>,
    /// Per-node `(start, end)` intervals of that node's own transmissions
    /// still in `active_tx` (maintained only when the spatial index is on):
    /// half-duplex and own-carrier checks must not depend on the node's
    /// *current* position, so they cannot go through the grids.
    tx_log: Vec<VecDeque<(SimTime, SimTime)>>,
    /// Scratch buffer for grid candidate queries (reused across events).
    candidate_buf: Vec<u32>,
    /// Scratch buffer for the per-transmission collision overlap set
    /// (reused across events).
    overlap_buf: Vec<(NodeId, Position)>,
    /// Scratch buffer for protocol callback actions (reused across
    /// dispatches; `apply` never re-enters `dispatch`).
    actions_buf: Vec<Action<M>>,
    metrics: Metrics,
    trace: Trace,
}

impl<M: Message + 'static> Simulator<M> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The trace buffer (empty unless `trace_capacity > 0`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current position of `node`.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// Whether `node` is up (not crashed by the fault plan).
    pub fn is_up(&self, node: NodeId) -> bool {
        self.up[node.index()]
    }

    /// Current positions of all nodes, indexed by id.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The radio model in use.
    pub fn radio(&self) -> &RadioModel {
        &self.radio
    }

    /// Downcasts `node`'s protocol to a concrete type for inspection.
    pub fn protocol<P: 'static>(&self, node: NodeId) -> Option<&P> {
        self.nodes[node.index()].as_any().downcast_ref::<P>()
    }

    /// Mutable variant of [`Simulator::protocol`].
    pub fn protocol_mut<P: 'static>(&mut self, node: NodeId) -> Option<&mut P> {
        self.nodes[node.index()].as_any_mut().downcast_mut::<P>()
    }

    /// Ground-truth one-hop neighbours of `node` under the nominal disk model
    /// (the paper's `N(1, p)`).
    pub fn nominal_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let p = self.positions[node.index()];
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&q| q != node && self.radio.in_nominal_range(&p, &self.positions[q.index()]))
            .collect()
    }

    /// Ground-truth adjacency under the nominal disk model.
    pub fn nominal_adjacency(&self) -> Vec<Vec<NodeId>> {
        (0..self.nodes.len() as u32)
            .map(|i| self.nominal_neighbors(NodeId(i)))
            .collect()
    }

    /// Schedules an application broadcast of `size_bytes` at the absolute
    /// instant `at` (offset from simulation start) on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_app_broadcast(
        &mut self,
        at: SimDuration,
        node: NodeId,
        payload_id: u64,
        size_bytes: usize,
    ) {
        let t = SimTime::ZERO + at;
        assert!(t >= self.now, "cannot schedule a broadcast in the past");
        self.queue.push(
            t,
            EventKind::AppBroadcast {
                node,
                payload: AppPayload {
                    id: payload_id,
                    size_bytes,
                },
            },
        );
    }

    /// Runs the simulation until the absolute instant `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(et) = self.queue.peek_time() {
            if et > t {
                break;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            self.now = ev.time;
            self.handle(ev.kind);
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Runs the simulation for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.now + d;
        self.run_until(target);
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::StartAll => {
                for i in 0..self.nodes.len() {
                    self.dispatch(NodeId(i as u32), |p, ctx| p.on_start(ctx));
                }
            }
            EventKind::Timer { node, key } => {
                let armed = self.timers[node.index()]
                    .iter()
                    .position(|&(k, _)| k == key)
                    .filter(|&p| self.timers[node.index()][p].1 == self.now);
                if let Some(p) = armed {
                    self.timers[node.index()].swap_remove(p);
                    self.dispatch(node, |p, ctx| p.on_timer(ctx, key));
                }
                // Otherwise the timer was re-armed or cancelled: stale, skip.
            }
            EventKind::AppBroadcast { node, payload } => {
                if !self.up[node.index()] {
                    // The application cannot hand a payload to a crashed
                    // node; the broadcast never happened, so it must not
                    // count against delivery ratios either.
                    self.metrics.faults.injections_dropped += 1;
                    return;
                }
                self.metrics.broadcasts.push(BroadcastRecord {
                    origin: node,
                    payload_id: payload.id,
                    time: self.now,
                    size_bytes: payload.size_bytes,
                });
                self.dispatch(node, |p, ctx| p.on_app_broadcast(ctx, payload));
            }
            EventKind::MacAttempt { node } => self.handle_mac_attempt(node),
            EventKind::TxEnd { tx_id } => self.handle_tx_end(tx_id),
            EventKind::MobilityTick => {
                let tick = self.config.mobility_tick;
                self.mobility.step(
                    &mut self.positions,
                    tick,
                    &self.config.field,
                    &mut self.mobility_rng,
                );
                if let Some(grid) = &mut self.grid {
                    grid.refresh(&self.positions);
                }
                self.queue.push(self.now + tick, EventKind::MobilityTick);
            }
            EventKind::Fault { index } => self.handle_fault(index),
        }
    }

    fn handle_fault(&mut self, index: usize) {
        match self.fault_events[index].kind {
            FaultKind::Crash { node, retain_state } => {
                let i = node.index();
                if !self.up[i] {
                    return; // already down
                }
                self.up[i] = false;
                if !retain_state {
                    self.state_lost[i] = true;
                }
                // Pending timers and queued frames die with the node. An
                // in-flight transmission still completes: the energy is
                // already on the air.
                self.timers[i].clear();
                self.mac[i] = MacState::default();
                self.metrics.faults.crashes += 1;
                self.trace.record(
                    self.now,
                    TraceEvent::Fault {
                        node: Some(node),
                        label: "crash",
                    },
                );
            }
            FaultKind::Restart { node } => {
                let i = node.index();
                if self.up[i] {
                    return; // already up
                }
                if self.state_lost[i] {
                    let factory = self
                        .restart_factory
                        .as_mut()
                        .expect("restart after a state-losing crash requires a restart factory");
                    self.nodes[i] = factory(node);
                    self.state_lost[i] = false;
                }
                self.up[i] = true;
                self.metrics.faults.restarts += 1;
                self.trace.record(
                    self.now,
                    TraceEvent::Fault {
                        node: Some(node),
                        label: "restart",
                    },
                );
                self.dispatch(node, |p, ctx| p.on_start(ctx));
            }
            FaultKind::SetByzantine { node, active } => {
                if active {
                    self.metrics.faults.byz_activations += 1;
                } else {
                    self.metrics.faults.byz_deactivations += 1;
                }
                self.trace.record(
                    self.now,
                    TraceEvent::Fault {
                        node: Some(node),
                        label: if active { "byz-on" } else { "byz-off" },
                    },
                );
                self.dispatch(node, |p, ctx| p.on_byzantine(ctx, active));
            }
            FaultKind::JamStart {
                id,
                center,
                radius_m,
                loss,
            } => {
                self.active_jams.push((id, center, radius_m, loss));
                self.metrics.faults.jam_starts += 1;
                self.trace.record(
                    self.now,
                    TraceEvent::Fault {
                        node: None,
                        label: "jam-start",
                    },
                );
            }
            FaultKind::JamEnd { id } => {
                self.active_jams.retain(|&(jid, _, _, _)| jid != id);
                self.metrics.faults.jam_ends += 1;
                self.trace.record(
                    self.now,
                    TraceEvent::Fault {
                        node: None,
                        label: "jam-end",
                    },
                );
            }
        }
    }

    /// Extra loss probability from active jam regions at `pos` (the worst
    /// overlapping region wins; regions do not stack).
    fn jam_loss_at(&self, pos: &Position) -> f64 {
        let mut worst = 0.0f64;
        for &(_, center, radius_m, loss) in &self.active_jams {
            if center.distance_squared(pos) <= radius_m * radius_m {
                worst = worst.max(loss);
            }
        }
        worst
    }

    /// Runs a protocol callback and applies the actions it produced.
    fn dispatch(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn DynProtocol<Msg = M>, &mut Context<'_, M>),
    ) {
        let i = node.index();
        if !self.up[i] {
            return; // crashed nodes run no callbacks
        }
        let mut actions = std::mem::take(&mut self.actions_buf);
        actions.clear();
        {
            let proto = &mut self.nodes[i];
            let rng = &mut self.node_rngs[i];
            let mut ctx = Context::new(node, self.now, rng, &mut actions);
            f(proto.as_mut(), &mut ctx);
        }
        for action in actions.drain(..) {
            self.apply(node, action);
        }
        self.actions_buf = actions;
    }

    fn apply(&mut self, node: NodeId, action: Action<M>) {
        let i = node.index();
        match action {
            Action::Send(msg) => {
                if !self.mac[i].enqueue(msg, self.config.mac.queue_capacity) {
                    self.metrics.record_queue_drop(node);
                    return;
                }
                if !self.mac[i].attempt_pending() {
                    self.mac[i].set_attempt_pending(true);
                    let slots = self.node_rngs[i].gen_range_u64(self.config.mac.cw_slots);
                    let delay = self.config.mac.backoff_delay(slots);
                    self.queue
                        .push(self.now + delay, EventKind::MacAttempt { node });
                }
            }
            Action::SetTimer { at, key } => {
                let at = at.max(self.now);
                match self.timers[i].iter_mut().find(|(k, _)| *k == key) {
                    Some(entry) => entry.1 = at,
                    None => self.timers[i].push((key, at)),
                }
                self.queue.push(at, EventKind::Timer { node, key });
            }
            Action::CancelTimer(key) => {
                if let Some(p) = self.timers[i].iter().position(|&(k, _)| k == key) {
                    self.timers[i].swap_remove(p);
                }
            }
            Action::Deliver { origin, payload_id } => {
                self.metrics.deliveries.push(DeliveryRecord {
                    node,
                    origin,
                    payload_id,
                    time: self.now,
                });
                self.trace.record(
                    self.now,
                    TraceEvent::Deliver {
                        node,
                        origin,
                        payload_id,
                    },
                );
            }
            Action::Note(text) => {
                self.trace.record(self.now, TraceEvent::Note { node, text });
            }
        }
    }

    /// Latest instant until which the medium is busy as heard at `node`
    /// (its own transmission or any audible ongoing one); `None` if idle.
    fn medium_busy_until(&self, node: NodeId) -> Option<SimTime> {
        let pos = self.positions[node.index()];
        let Some(tx_grid) = &self.tx_grid else {
            return self
                .active_tx
                .iter()
                .filter(|t| t.end > self.now)
                .filter(|t| t.src == node || self.radio.audible(&t.src_pos, &pos))
                .map(|t| t.end)
                .max();
        };
        // Own transmissions come from the per-node log — the node may have
        // moved since it transmitted, so the grid probe below (which is
        // anchored at the *current* position) cannot be trusted to find
        // them. Others come from the grid probe; any own transmissions it
        // re-finds are harmless under `max`.
        let mut busy = self.tx_log[node.index()]
            .iter()
            .filter(|&&(_, end)| end > self.now)
            .map(|&(_, end)| end)
            .max();
        tx_grid.for_each_within(&pos, self.audible_radius, |t| {
            if t.end > self.now && self.radio.audible(&t.src_pos, &pos) {
                busy = Some(busy.map_or(t.end, |b| b.max(t.end)));
            }
        });
        busy
    }

    fn handle_mac_attempt(&mut self, node: NodeId) {
        let i = node.index();
        self.mac[i].set_attempt_pending(false);
        if !self.mac[i].has_pending() {
            return;
        }
        if let Some(busy_until) = self.medium_busy_until(node) {
            // Medium busy (or self transmitting): back off past it.
            self.mac[i].set_attempt_pending(true);
            let slots = self.node_rngs[i].gen_range_u64(self.config.mac.cw_slots);
            let delay = self.config.mac.backoff_delay(slots);
            self.queue
                .push(busy_until + delay, EventKind::MacAttempt { node });
            return;
        }
        let msg = self.mac[i].dequeue().expect("checked has_pending");
        self.start_transmission(node, msg);
        if self.mac[i].has_pending() {
            // Schedule the next frame after this transmission + fresh backoff.
            let end = self
                .medium_busy_until(node)
                .expect("just started a transmission");
            self.mac[i].set_attempt_pending(true);
            let slots = self.node_rngs[i].gen_range_u64(self.config.mac.cw_slots);
            let delay = self.config.mac.backoff_delay(slots);
            self.queue.push(end + delay, EventKind::MacAttempt { node });
        }
    }

    fn start_transmission(&mut self, node: NodeId, msg: M) {
        let bytes = msg.wire_size();
        let kind = msg.kind();
        let air = SimDuration::from_micros(self.config.radio.air_time_us(bytes));
        self.max_air_time = self.max_air_time.max(air);
        let id = self.tx_counter;
        self.tx_counter += 1;
        let src_pos = self.positions[node.index()];
        let end = self.now + air;
        if let Some(tx_grid) = &mut self.tx_grid {
            tx_grid.insert(TxEntry {
                id,
                start: self.now,
                end,
                src: node.0,
                src_pos,
            });
            // Prune this node's own log here, where it is already touched,
            // rather than sweeping all n logs on every transmission end.
            // Entries older than two max-air-times cannot overlap any
            // current or future transmission (see `handle_tx_end`), so
            // leftovers on nodes that stop transmitting are inert.
            let keep_after = SimTime::from_micros(
                self.now
                    .as_micros()
                    .saturating_sub(2 * self.max_air_time.as_micros()),
            );
            let log = &mut self.tx_log[node.index()];
            while log.front().is_some_and(|&(_, e)| e < keep_after) {
                log.pop_front();
            }
            log.push_back((self.now, end));
        }
        self.active_tx.push(Transmission {
            id,
            src: node,
            src_pos,
            start: self.now,
            end,
            msg: Arc::new(msg),
        });
        self.mac[node.index()].set_transmitting(true);
        self.metrics.record_send(node, kind, bytes);
        self.trace
            .record(self.now, TraceEvent::TxStart { node, kind, bytes });
        self.queue.push(end, EventKind::TxEnd { tx_id: id });
    }

    fn handle_tx_end(&mut self, tx_id: u64) {
        let tx_idx = match self.active_tx.binary_search_by_key(&tx_id, |t| t.id) {
            Ok(idx) => idx,
            Err(_) => return, // already pruned (cannot normally happen)
        };
        let (src, src_pos, start, end) = {
            let t = &self.active_tx[tx_idx];
            (t.src, t.src_pos, t.start, t.end)
        };
        // One Arc bump per transmission; every receiver borrows through it.
        let msg = Arc::clone(&self.active_tx[tx_idx].msg);
        // The sender's radio is free again (unless it has another overlapping
        // transmission, which the MAC never produces).
        self.mac[src.index()].set_transmitting(false);

        // Candidate receivers: with the grid, a conservative superset of the
        // audible disk in ascending id order — exactly the order and (after
        // the `audible` filter below) exactly the set the naive 0..n scan
        // visits, so both paths consume per-node RNG streams identically.
        let mut candidates = std::mem::take(&mut self.candidate_buf);
        match &mut self.grid {
            Some(grid) => grid.candidates_within(&src_pos, self.audible_radius, &mut candidates),
            None => {
                candidates.clear();
                candidates.extend(0..self.nodes.len() as u32);
            }
        }

        // Potential interferers, collected ONCE per transmission end rather
        // than probed per receiver: every receiver q lies within the audible
        // radius r of src, so by the triangle inequality any transmitter
        // audible at q (within r of q) lies within 2r of src — a grid query
        // of radius 2r around src sees a superset of every interferer any
        // receiver can hear. The time-overlap and id filters are
        // receiver-independent and applied here; the receiver-dependent
        // `audible`/`captures` predicates below are exactly the naive ones.
        let mut overlaps = std::mem::take(&mut self.overlap_buf);
        overlaps.clear();
        if let Some(tx_grid) = &self.tx_grid {
            tx_grid.for_each_within(&src_pos, 2.0 * self.audible_radius, |t| {
                if t.id != tx_id && t.start < end && t.end > start {
                    overlaps.push((NodeId(t.src), t.src_pos));
                }
            });
        }

        for &q_raw in &candidates {
            let qi = q_raw as usize;
            let q = NodeId(q_raw);
            if q == src {
                continue;
            }
            if !self.up[qi] {
                continue; // crashed receivers hear nothing (no RNG draws)
            }
            let q_pos = self.positions[qi];
            if !self.radio.audible(&src_pos, &q_pos) {
                continue;
            }
            // Half-duplex: q cannot receive while itself transmitting. The
            // per-node log holds exactly q's own entries of `active_tx`.
            let q_was_transmitting = if self.tx_grid.is_some() {
                self.tx_log[qi].iter().any(|&(s, e)| s < end && e > start)
            } else {
                self.active_tx
                    .iter()
                    .any(|t| t.src == q && t.start < end && t.end > start)
            };
            if q_was_transmitting {
                self.metrics.record_half_duplex_loss();
                continue;
            }
            // Collision: any other transmission overlapping in time and
            // audible at q corrupts this reception — unless the signal
            // captures over the interferer (much closer transmitter). The
            // pre-collected overlap set is a superset of the audible
            // transmitters at every receiver; the exact naive predicate is
            // re-applied per receiver.
            let collided = if self.tx_grid.is_some() {
                overlaps.iter().any(|&(t_src, t_pos)| {
                    t_src != q
                        && self.radio.audible(&t_pos, &q_pos)
                        && !self.radio.captures(&src_pos, &t_pos, &q_pos)
                })
            } else {
                self.active_tx.iter().any(|t| {
                    t.id != tx_id
                        && t.src != q
                        && t.start < end
                        && t.end > start
                        && self.radio.audible(&t.src_pos, &q_pos)
                        && !self.radio.captures(&src_pos, &t.src_pos, &q_pos)
                })
            };
            if collided {
                self.metrics.record_collision(q);
                self.trace
                    .record(self.now, TraceEvent::Collision { node: q, from: src });
                continue;
            }
            // Fading + background noise.
            let p_link = self.radio.link_success_probability(&src_pos, &q_pos);
            if p_link <= 0.0 {
                continue; // audible (carrier) but not decodable: not counted
            }
            let received = self
                .radio
                .draw_reception(&src_pos, &q_pos, &mut self.node_rngs[qi]);
            if !received {
                self.metrics.record_noise_loss();
                continue;
            }
            // Jamming: one extra Bernoulli draw per surviving reception,
            // only while a jam window is open, so fault-free runs consume
            // bit-identical RNG streams.
            if !self.active_jams.is_empty() {
                let jam_loss = self.jam_loss_at(&q_pos);
                if jam_loss > 0.0 && self.node_rngs[qi].gen_bool(jam_loss) {
                    self.metrics.faults.jam_losses += 1;
                    continue;
                }
            }
            self.metrics.record_reception(q);
            self.trace.record(
                self.now,
                TraceEvent::Rx {
                    node: q,
                    from: src,
                    kind: msg.kind(),
                },
            );
            self.dispatch(q, |p, ctx| p.on_packet(ctx, src, msg.as_ref()));
        }
        self.candidate_buf = candidates;
        self.overlap_buf = overlaps;

        // Prune transmissions that ended more than two max-air-times ago: no
        // transmission still pending or future can overlap them in time.
        let keep_after = SimTime::from_micros(
            self.now
                .as_micros()
                .saturating_sub(2 * self.max_air_time.as_micros()),
        );
        // One pass: drop the stale transmission and its grid entry together.
        // (Per-node logs are pruned lazily in `start_transmission`; their
        // stale fronts are inert in the overlap predicates above.)
        let tx_grid = &mut self.tx_grid;
        self.active_tx.retain(|t| {
            let keep = t.end >= keep_after;
            if !keep {
                if let Some(tx_grid) = tx_grid {
                    tx_grid.remove(t.id, &t.src_pos);
                }
            }
            keep
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[derive(Clone, Debug)]
    pub(super) struct TestMsg {
        id: u64,
        origin: NodeId,
        bytes: usize,
    }
    impl Message for TestMsg {
        fn wire_size(&self) -> usize {
            self.bytes
        }
        fn kind(&self) -> &'static str {
            "test"
        }
    }

    /// Delivers + floods everything exactly once.
    pub(super) struct Flooder {
        pub(super) seen: HashSet<u64>,
    }
    impl Flooder {
        pub(super) fn boxed(_: NodeId) -> BoxedProtocol<TestMsg> {
            Box::new(Flooder {
                seen: HashSet::new(),
            })
        }
    }
    impl Protocol for Flooder {
        type Msg = TestMsg;
        fn on_packet(&mut self, ctx: &mut Context<'_, TestMsg>, _from: NodeId, msg: &TestMsg) {
            if self.seen.insert(msg.id) {
                ctx.deliver(msg.origin, msg.id);
                ctx.send(msg.clone());
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, TestMsg>, _t: TimerKey) {}
        fn on_app_broadcast(&mut self, ctx: &mut Context<'_, TestMsg>, payload: AppPayload) {
            self.seen.insert(payload.id);
            ctx.deliver(ctx.node_id(), payload.id);
            ctx.send(TestMsg {
                id: payload.id,
                origin: ctx.node_id(),
                bytes: payload.size_bytes,
            });
        }
    }

    fn line_config(range: f64) -> SimConfig {
        SimConfig {
            radio: RadioConfig::ideal_disk(range),
            field: Field::new(1000.0, 100.0),
            ..SimConfig::default()
        }
    }

    #[test]
    fn two_nodes_in_range_exchange() {
        let config = line_config(150.0);
        let mut sim = SimBuilder::new(config)
            .with_positions(vec![Position::new(0.0, 50.0), Position::new(100.0, 50.0)])
            .with_nodes(2, Flooder::boxed)
            .build();
        sim.schedule_app_broadcast(SimDuration::from_millis(1), NodeId(0), 1, 64);
        sim.run_for(SimDuration::from_secs(1));
        let m = sim.metrics();
        assert_eq!(m.deliveries.len(), 2); // origin + neighbour
        assert!(m.deliveries.iter().any(|d| d.node == NodeId(1)));
    }

    #[test]
    fn out_of_range_node_hears_nothing() {
        let config = line_config(150.0);
        let mut sim = SimBuilder::new(config)
            .with_positions(vec![Position::new(0.0, 50.0), Position::new(900.0, 50.0)])
            .with_nodes(2, Flooder::boxed)
            .build();
        sim.schedule_app_broadcast(SimDuration::from_millis(1), NodeId(0), 1, 64);
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.metrics().deliveries.len(), 1); // only the origin
    }

    #[test]
    fn multihop_flooding_reaches_the_line_end() {
        let config = line_config(150.0);
        let positions: Vec<Position> = (0..8)
            .map(|i| Position::new(i as f64 * 100.0, 50.0))
            .collect();
        let mut sim = SimBuilder::new(config)
            .with_positions(positions)
            .with_nodes(8, Flooder::boxed)
            .build();
        sim.schedule_app_broadcast(SimDuration::from_millis(1), NodeId(0), 42, 64);
        sim.run_for(SimDuration::from_secs(5));
        let delivered: HashSet<NodeId> = sim.metrics().deliveries.iter().map(|d| d.node).collect();
        assert_eq!(delivered.len(), 8, "not all nodes delivered: {delivered:?}");
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = |seed: u64| {
            let config = SimConfig {
                seed,
                radio: RadioConfig::default(),
                ..SimConfig::default()
            };
            let mut sim = SimBuilder::new(config)
                .with_nodes(30, Flooder::boxed)
                .build();
            for k in 0..5 {
                sim.schedule_app_broadcast(
                    SimDuration::from_millis(10 + k * 100),
                    NodeId(k as u32),
                    k,
                    256,
                );
            }
            sim.run_for(SimDuration::from_secs(5));
            (
                sim.metrics().frames_sent,
                sim.metrics().collision_losses,
                sim.metrics().deliveries.len(),
            )
        };
        assert_eq!(run(7), run(7));
        // And different seeds should (almost surely) differ somewhere.
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn simultaneous_senders_collide_at_common_receiver() {
        // Three nodes in a line: 0 and 2 both transmit at the same instant;
        // node 1 hears both, so with no backoff both frames must collide.
        let config = SimConfig {
            radio: RadioConfig::ideal_disk(150.0),
            mac: MacConfig {
                slot_us: 0,
                difs_us: 0,
                cw_slots: 1,
                queue_capacity: 8,
            },
            field: Field::new(1000.0, 100.0),
            ..SimConfig::default()
        };
        // 0 and 2 are 200 m apart (out of range of each other, so carrier
        // sense cannot save us) and node 1 in the middle hears both.
        let mut sim = SimBuilder::new(config)
            .with_positions(vec![
                Position::new(0.0, 50.0),
                Position::new(100.0, 50.0),
                Position::new(200.0, 50.0),
            ])
            .with_nodes(3, Flooder::boxed)
            .build();
        sim.schedule_app_broadcast(SimDuration::from_millis(1), NodeId(0), 1, 64);
        sim.schedule_app_broadcast(SimDuration::from_millis(1), NodeId(2), 2, 64);
        sim.run_for(SimDuration::from_millis(50));
        let m = sim.metrics();
        // Node 1 must have lost both frames to the collision.
        assert!(
            m.collision_losses >= 2,
            "collisions: {}",
            m.collision_losses
        );
        assert!(!m.deliveries.iter().any(|d| d.node == NodeId(1)));
    }

    #[test]
    fn carrier_sense_serializes_neighbours() {
        // Two senders in range of each other: CSMA should let both frames
        // through to the common receiver (one defers).
        let config = SimConfig {
            radio: RadioConfig::ideal_disk(300.0),
            field: Field::new(1000.0, 100.0),
            ..SimConfig::default()
        };
        let mut sim = SimBuilder::new(config)
            .with_positions(vec![
                Position::new(0.0, 50.0),
                Position::new(100.0, 50.0),
                Position::new(200.0, 50.0),
            ])
            .with_nodes(3, Flooder::boxed)
            .build();
        sim.schedule_app_broadcast(SimDuration::from_millis(1), NodeId(0), 1, 256);
        sim.schedule_app_broadcast(SimDuration::from_millis(1), NodeId(2), 2, 256);
        sim.run_for(SimDuration::from_secs(1));
        let delivered_at_1: HashSet<u64> = sim
            .metrics()
            .deliveries
            .iter()
            .filter(|d| d.node == NodeId(1))
            .map(|d| d.payload_id)
            .collect();
        assert_eq!(
            delivered_at_1.len(),
            2,
            "CSMA failed to serialize: {delivered_at_1:?}"
        );
    }

    #[test]
    fn timers_fire_and_rearm_replaces() {
        struct TimerProto {
            fired: Vec<u64>,
        }
        impl Protocol for TimerProto {
            type Msg = TestMsg;
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                ctx.set_timer_after(SimDuration::from_millis(10), TimerKey(1));
                ctx.set_timer_after(SimDuration::from_millis(20), TimerKey(2));
                // Re-arm key 1 to 30 ms: the 10 ms deadline must not fire.
                ctx.set_timer_after(SimDuration::from_millis(30), TimerKey(1));
                // Cancel key 2 entirely.
                ctx.cancel_timer(TimerKey(2));
            }
            fn on_packet(&mut self, _: &mut Context<'_, TestMsg>, _: NodeId, _: &TestMsg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, t: TimerKey) {
                self.fired.push(t.0);
                let _ = ctx;
            }
            fn on_app_broadcast(&mut self, _: &mut Context<'_, TestMsg>, _: AppPayload) {}
        }
        let mut sim = SimBuilder::new(SimConfig::default())
            .with_node(Box::new(TimerProto { fired: Vec::new() }))
            .build();
        sim.run_for(SimDuration::from_secs(1));
        let proto = sim.protocol::<TimerProto>(NodeId(0)).unwrap();
        assert_eq!(proto.fired, vec![1]);
    }

    #[test]
    fn mobility_changes_connectivity_over_time() {
        let config = SimConfig {
            radio: RadioConfig::ideal_disk(200.0),
            mobility_tick: SimDuration::from_millis(100),
            ..SimConfig::default()
        };
        let mut sim = SimBuilder::new(config)
            .with_mobility(Box::new(waypoint_for_test()))
            .with_nodes(10, Flooder::boxed)
            .build();
        let before = sim.positions().to_vec();
        sim.run_for(SimDuration::from_secs(10));
        let after = sim.positions();
        let moved = before
            .iter()
            .zip(after)
            .filter(|(a, b)| a.distance(b) > 1.0)
            .count();
        assert!(moved >= 8, "only {moved} moved");
    }

    use crate::mobility::RandomWaypoint;
    fn waypoint_for_test() -> RandomWaypoint {
        RandomWaypoint::new(5.0, 10.0, SimDuration::ZERO)
    }

    #[test]
    fn nominal_neighbors_reflect_positions() {
        let config = line_config(150.0);
        let sim = SimBuilder::new(config)
            .with_positions(vec![
                Position::new(0.0, 50.0),
                Position::new(100.0, 50.0),
                Position::new(600.0, 50.0),
            ])
            .with_nodes(3, Flooder::boxed)
            .build();
        assert_eq!(sim.nominal_neighbors(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(sim.nominal_neighbors(NodeId(2)), Vec::<NodeId>::new());
        let adj = sim.nominal_adjacency();
        assert_eq!(adj[1], vec![NodeId(0)]);
    }

    #[test]
    fn metrics_count_frames_and_bytes_by_kind() {
        let config = line_config(150.0);
        let mut sim = SimBuilder::new(config)
            .with_positions(vec![Position::new(0.0, 50.0), Position::new(100.0, 50.0)])
            .with_nodes(2, Flooder::boxed)
            .build();
        sim.schedule_app_broadcast(SimDuration::from_millis(1), NodeId(0), 1, 64);
        sim.run_for(SimDuration::from_secs(1));
        let m = sim.metrics();
        assert_eq!(m.frames_of_kind("test"), m.frames_sent);
        assert_eq!(m.bytes_of_kind("test"), m.bytes_sent);
        assert!(m.frames_sent >= 2); // origin + forwarder
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_simulation_panics() {
        let _ = SimBuilder::<TestMsg>::new(SimConfig::default()).build();
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::trace::TraceEvent;

    #[derive(Clone, Debug)]
    struct Blast {
        bytes: usize,
    }
    impl Message for Blast {
        fn wire_size(&self) -> usize {
            self.bytes
        }
        fn kind(&self) -> &'static str {
            "blast"
        }
    }

    /// Sends `count` frames at start; counts queue drops.
    struct Blaster {
        count: usize,
    }
    impl Blaster {
        fn count(&self) -> usize {
            self.count
        }
    }
    impl Protocol for Blaster {
        type Msg = Blast;
        fn on_start(&mut self, ctx: &mut Context<'_, Blast>) {
            for _ in 0..self.count {
                ctx.send(Blast { bytes: 100 });
            }
        }
        fn on_packet(&mut self, _: &mut Context<'_, Blast>, _: NodeId, _: &Blast) {}
        fn on_timer(&mut self, _: &mut Context<'_, Blast>, _: TimerKey) {}
        fn on_app_broadcast(&mut self, _: &mut Context<'_, Blast>, _: AppPayload) {}
    }

    #[test]
    fn interface_queue_overflow_is_counted_not_fatal() {
        let config = SimConfig {
            mac: MacConfig {
                queue_capacity: 4,
                ..MacConfig::default()
            },
            radio: RadioConfig::ideal_disk(100.0),
            ..SimConfig::default()
        };
        let mut sim = SimBuilder::new(config)
            .with_positions(vec![Position::new(0.0, 0.0)])
            .with_node(Box::new(Blaster { count: 10 }))
            .build();
        sim.run_for(SimDuration::from_secs(1));
        let m = sim.metrics();
        assert_eq!(m.queue_drops, 6, "capacity 4 of 10 queued");
        assert_eq!(m.frames_sent, 4);
        assert_eq!(m.per_node[0].queue_drops, 6);
    }

    #[test]
    fn trace_records_tx_rx_and_deliveries() {
        #[derive(Clone, Debug)]
        struct Ping;
        impl Message for Ping {
            fn wire_size(&self) -> usize {
                8
            }
            fn kind(&self) -> &'static str {
                "ping"
            }
        }
        struct Once(bool);
        impl Protocol for Once {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                if self.0 {
                    ctx.send(Ping);
                }
            }
            fn on_packet(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, _: &Ping) {
                ctx.deliver(from, 1);
                ctx.note("got ping");
            }
            fn on_timer(&mut self, _: &mut Context<'_, Ping>, _: TimerKey) {}
            fn on_app_broadcast(&mut self, _: &mut Context<'_, Ping>, _: AppPayload) {}
        }
        let config = SimConfig {
            radio: RadioConfig::ideal_disk(100.0),
            trace_capacity: 64,
            ..SimConfig::default()
        };
        let mut sim = SimBuilder::new(config)
            .with_positions(vec![Position::new(0.0, 0.0), Position::new(50.0, 0.0)])
            .with_node(Box::new(Once(true)))
            .with_node(Box::new(Once(false)))
            .build();
        sim.run_for(SimDuration::from_secs(1));
        let kinds: Vec<&str> = sim
            .trace()
            .entries()
            .map(|e| match &e.event {
                TraceEvent::TxStart { .. } => "tx",
                TraceEvent::Rx { .. } => "rx",
                TraceEvent::Deliver { .. } => "deliver",
                TraceEvent::Note { .. } => "note",
                TraceEvent::Collision { .. } => "collision",
                TraceEvent::Fault { .. } => "fault",
            })
            .collect();
        assert_eq!(kinds, vec!["tx", "rx", "deliver", "note"]);
    }

    #[test]
    fn run_until_is_monotone_and_idempotent() {
        let mut sim = SimBuilder::new(SimConfig::default())
            .with_node(Box::new(Blaster { count: 0 }))
            .build();
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        // Running to an earlier instant is a no-op, not a rewind.
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.now(), SimTime::from_secs(7));
    }

    #[test]
    fn protocol_downcast_mut_allows_state_injection() {
        let mut sim = SimBuilder::new(SimConfig::default())
            .with_node(Box::new(Blaster { count: 0 }))
            .build();
        assert_eq!(sim.protocol::<Blaster>(NodeId(0)).unwrap().count(), 0);
        sim.protocol_mut::<Blaster>(NodeId(0)).unwrap().count = 7;
        assert_eq!(sim.protocol::<Blaster>(NodeId(0)).unwrap().count(), 7);
        // Wrong type downcasts to None.
        struct Other;
        assert!(sim.protocol::<Other>(NodeId(0)).is_none());
    }

    #[test]
    fn background_noise_loses_some_receptions() {
        #[derive(Clone, Debug)]
        struct Tick(#[allow(dead_code)] u64);
        impl Message for Tick {
            fn wire_size(&self) -> usize {
                16
            }
            fn kind(&self) -> &'static str {
                "tick"
            }
        }
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = Tick;
            fn on_start(&mut self, ctx: &mut Context<'_, Tick>) {
                ctx.set_timer_after(SimDuration::from_millis(20), TimerKey(1));
            }
            fn on_packet(&mut self, _: &mut Context<'_, Tick>, _: NodeId, _: &Tick) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Tick>, _: TimerKey) {
                ctx.send(Tick(0));
                ctx.set_timer_after(SimDuration::from_millis(20), TimerKey(1));
            }
            fn on_app_broadcast(&mut self, _: &mut Context<'_, Tick>, _: AppPayload) {}
        }
        let config = SimConfig {
            radio: RadioConfig {
                range_m: 100.0,
                fading_fraction: 0.0,
                background_loss: 0.2,
                ..RadioConfig::default()
            },
            ..SimConfig::default()
        };
        let mut sim = SimBuilder::new(config)
            .with_positions(vec![Position::new(0.0, 0.0), Position::new(50.0, 0.0)])
            .with_node(Box::new(Chatter))
            .with_node(Box::new(Chatter))
            .build();
        sim.run_for(SimDuration::from_secs(20));
        let m = sim.metrics();
        assert!(m.noise_losses > 0, "no noise losses at 20% background loss");
        let total = m.frames_received + m.noise_losses;
        let loss_rate = m.noise_losses as f64 / total as f64;
        assert!((loss_rate - 0.2).abs() < 0.05, "loss rate {loss_rate}");
    }

    #[test]
    fn distinct_node_streams_do_not_share_randomness() {
        // Two sims differing only in an extra node must still agree on the
        // behaviour of the shared nodes' own random draws (fork isolation).
        let run = |extra: bool| {
            let mut b = SimBuilder::new(SimConfig {
                radio: RadioConfig::ideal_disk(10.0), // nobody in range
                ..SimConfig::default()
            })
            .with_positions(if extra {
                vec![Position::new(0.0, 0.0), Position::new(500.0, 500.0)]
            } else {
                vec![Position::new(0.0, 0.0)]
            })
            .with_node(Box::new(Blaster { count: 3 }));
            if extra {
                b = b.with_node(Box::new(Blaster { count: 3 }));
            }
            let mut sim = b.build();
            sim.run_for(SimDuration::from_secs(1));
            sim.metrics().per_node[0].frames_sent
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn accessors_expose_configuration() {
        let config = SimConfig {
            seed: 99,
            ..SimConfig::default()
        };
        let sim = SimBuilder::new(config)
            .with_node(Box::new(Blaster { count: 0 }))
            .build();
        assert_eq!(sim.config().seed, 99);
        assert_eq!(sim.node_count(), 1);
        assert!(sim.radio().config().range_m > 0.0);
        assert_eq!(sim.positions().len(), 1);
        assert_eq!(sim.position(NodeId(0)), sim.positions()[0]);
    }
}

#[cfg(test)]
mod spatial_differential_tests {
    use super::tests::Flooder;
    use super::*;
    use crate::mobility::RandomWaypoint;

    /// A mid-size mobile scenario with fading, background noise and real
    /// contention, run to completion, returning the full metrics.
    fn run(seed: u64, spatial_index: bool) -> Metrics {
        let config = SimConfig {
            seed,
            spatial_index,
            radio: RadioConfig::default(),
            mobility_tick: SimDuration::from_millis(100),
            ..SimConfig::default()
        };
        let mut sim = SimBuilder::new(config)
            .with_mobility(Box::new(RandomWaypoint::new(
                1.0,
                15.0,
                SimDuration::from_secs(1),
            )))
            .with_nodes(60, Flooder::boxed)
            .build();
        for k in 0..8u64 {
            sim.schedule_app_broadcast(
                SimDuration::from_millis(10 + k * 400),
                NodeId((k * 7 % 60) as u32),
                k,
                512,
            );
        }
        sim.run_for(SimDuration::from_secs(8));
        sim.metrics().clone()
    }

    /// The tentpole guarantee: the spatial index changes nothing observable.
    /// Every counter, every delivery record (node, origin, payload, time),
    /// every per-node metric is bit-identical for several seeds on a mobile
    /// scenario — i.e. per-node RNG streams were consumed identically.
    #[test]
    fn grid_path_is_bit_identical_to_naive_scan() {
        for seed in [1, 2, 3] {
            let naive = run(seed, false);
            let indexed = run(seed, true);
            assert!(
                !indexed.deliveries.is_empty() && indexed.frames_sent > 100,
                "scenario too trivial to be convincing (seed {seed})"
            );
            assert_eq!(naive, indexed, "seed {seed} diverged");
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::tests::Flooder;
    use super::*;
    use crate::mobility::RandomWaypoint;

    fn pair_config() -> SimConfig {
        SimConfig {
            radio: RadioConfig::ideal_disk(150.0),
            field: Field::new(1000.0, 100.0),
            ..SimConfig::default()
        }
    }

    fn pair_positions() -> Vec<Position> {
        vec![Position::new(0.0, 50.0), Position::new(100.0, 50.0)]
    }

    #[test]
    fn crashed_node_neither_receives_nor_delivers() {
        let plan = FaultPlan::new().crash(SimDuration::from_millis(500), NodeId(1), true);
        let mut sim = SimBuilder::new(pair_config())
            .with_positions(pair_positions())
            .with_nodes(2, Flooder::boxed)
            .with_fault_plan(plan)
            .build();
        sim.schedule_app_broadcast(SimDuration::from_secs(1), NodeId(0), 1, 64);
        sim.run_for(SimDuration::from_secs(2));
        assert!(!sim.is_up(NodeId(1)));
        let m = sim.metrics();
        assert_eq!(m.faults.crashes, 1);
        assert!(!m.deliveries.iter().any(|d| d.node == NodeId(1)));
        assert_eq!(m.per_node[1].frames_received, 0);
    }

    #[test]
    fn restart_with_retained_state_resumes_and_remembers() {
        // Crash node 1 with state retention, broadcast payload 1 while it is
        // down, restart it, then broadcast payload 2: it must deliver 2 but
        // not 1 (it was off the air), and keep its pre-crash `seen` set.
        let plan = FaultPlan::new()
            .crash(SimDuration::from_millis(200), NodeId(1), true)
            .restart(SimDuration::from_secs(2), NodeId(1));
        let mut sim = SimBuilder::new(pair_config())
            .with_positions(pair_positions())
            .with_nodes(2, Flooder::boxed)
            .with_fault_plan(plan)
            .build();
        sim.schedule_app_broadcast(SimDuration::from_millis(100), NodeId(0), 1, 64);
        sim.schedule_app_broadcast(SimDuration::from_secs(1), NodeId(0), 2, 64);
        sim.schedule_app_broadcast(SimDuration::from_secs(3), NodeId(0), 3, 64);
        sim.run_for(SimDuration::from_secs(5));
        assert!(sim.is_up(NodeId(1)));
        let at_1: Vec<u64> = sim
            .metrics()
            .deliveries
            .iter()
            .filter(|d| d.node == NodeId(1))
            .map(|d| d.payload_id)
            .collect();
        assert_eq!(at_1, vec![1, 3], "missed while down, resumed after");
        assert_eq!(sim.metrics().faults.restarts, 1);
    }

    #[test]
    fn restart_after_state_loss_uses_the_factory() {
        // Node 1 sees payload 1, crashes losing state, restarts fresh — so a
        // re-flood of payload 1 after the restart is new to it again.
        let plan = FaultPlan::new()
            .crash(SimDuration::from_secs(1), NodeId(1), false)
            .restart(SimDuration::from_secs(2), NodeId(1));
        let mut sim = SimBuilder::new(pair_config())
            .with_positions(pair_positions())
            .with_nodes(2, Flooder::boxed)
            .with_fault_plan(plan)
            .with_restart_factory(Box::new(Flooder::boxed))
            .build();
        sim.schedule_app_broadcast(SimDuration::from_millis(100), NodeId(0), 1, 64);
        sim.run_for(SimDuration::from_secs(5));
        // Flooder delivers on first sight: the rebuilt instance has an empty
        // `seen` set, which we can observe by injecting the same id at node 0
        // again — node 0 still remembers it (no re-flood), so instead check
        // the protocol state directly.
        let seen = &sim.protocol::<Flooder>(NodeId(1)).unwrap().seen;
        assert!(
            seen.is_empty(),
            "factory-rebuilt protocol kept state: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "requires a restart factory")]
    fn state_losing_restart_without_factory_panics() {
        let plan = FaultPlan::new()
            .crash(SimDuration::from_secs(1), NodeId(0), false)
            .restart(SimDuration::from_secs(2), NodeId(0));
        let mut sim = SimBuilder::new(pair_config())
            .with_positions(vec![Position::new(0.0, 50.0)])
            .with_nodes(1, Flooder::boxed)
            .with_fault_plan(plan)
            .build();
        sim.run_for(SimDuration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn plan_referencing_missing_node_panics_at_build() {
        let plan = FaultPlan::new().crash(SimDuration::from_secs(1), NodeId(9), true);
        let _ = SimBuilder::new(pair_config())
            .with_positions(pair_positions())
            .with_nodes(2, Flooder::boxed)
            .with_fault_plan(plan)
            .build();
    }

    #[test]
    fn broadcast_injected_at_a_down_node_is_dropped_not_recorded() {
        let plan = FaultPlan::new().crash(SimDuration::from_millis(100), NodeId(0), true);
        let mut sim = SimBuilder::new(pair_config())
            .with_positions(pair_positions())
            .with_nodes(2, Flooder::boxed)
            .with_fault_plan(plan)
            .build();
        sim.schedule_app_broadcast(SimDuration::from_secs(1), NodeId(0), 1, 64);
        sim.run_for(SimDuration::from_secs(2));
        let m = sim.metrics();
        assert_eq!(m.broadcasts.len(), 0, "dropped injections must not count");
        assert_eq!(m.faults.injections_dropped, 1);
        assert!(m.deliveries.is_empty());
    }

    #[test]
    fn jam_window_destroys_receptions_then_lifts() {
        // Total jam over the receiver for seconds 1..3; broadcasts at 1.5 s
        // (inside) and 4 s (after) — only the second arrives.
        let plan = FaultPlan::new().jam_window(
            1,
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
            Position::new(100.0, 50.0),
            50.0,
            1.0,
        );
        let mut sim = SimBuilder::new(pair_config())
            .with_positions(pair_positions())
            .with_nodes(2, Flooder::boxed)
            .with_fault_plan(plan)
            .build();
        sim.schedule_app_broadcast(SimDuration::from_millis(1500), NodeId(0), 1, 64);
        sim.schedule_app_broadcast(SimDuration::from_secs(4), NodeId(0), 2, 64);
        sim.run_for(SimDuration::from_secs(6));
        let m = sim.metrics();
        let at_1: Vec<u64> = m
            .deliveries
            .iter()
            .filter(|d| d.node == NodeId(1))
            .map(|d| d.payload_id)
            .collect();
        assert_eq!(at_1, vec![2], "jammed frame must be lost, later one heard");
        assert!(m.faults.jam_losses >= 1);
        assert_eq!(m.faults.jam_starts, 1);
        assert_eq!(m.faults.jam_ends, 1);
    }

    #[test]
    fn jam_outside_the_region_changes_nothing() {
        let run = |plan: FaultPlan| {
            let mut sim = SimBuilder::new(pair_config())
                .with_positions(pair_positions())
                .with_nodes(2, Flooder::boxed)
                .with_fault_plan(plan)
                .build();
            sim.schedule_app_broadcast(SimDuration::from_secs(1), NodeId(0), 1, 64);
            sim.run_for(SimDuration::from_secs(3));
            let mut m = sim.metrics().clone();
            // Jam bookkeeping differs by construction; everything else must not.
            m.faults = crate::metrics::FaultStats::default();
            m
        };
        let far_jam = FaultPlan::new().jam_window(
            1,
            SimDuration::ZERO,
            SimDuration::from_secs(3),
            Position::new(900.0, 50.0),
            50.0,
            1.0,
        );
        assert_eq!(run(FaultPlan::new()), run(far_jam));
    }

    #[test]
    fn on_byzantine_hook_reaches_the_protocol() {
        struct Toggled {
            log: Vec<bool>,
        }
        impl Protocol for Toggled {
            type Msg = super::tests::TestMsg;
            fn on_packet(&mut self, _: &mut Context<'_, Self::Msg>, _: NodeId, _: &Self::Msg) {}
            fn on_timer(&mut self, _: &mut Context<'_, Self::Msg>, _: TimerKey) {}
            fn on_app_broadcast(&mut self, _: &mut Context<'_, Self::Msg>, _: AppPayload) {}
            fn on_byzantine(&mut self, _: &mut Context<'_, Self::Msg>, active: bool) {
                self.log.push(active);
            }
        }
        let plan = FaultPlan::new()
            .set_byzantine(SimDuration::from_secs(1), NodeId(0), true)
            .set_byzantine(SimDuration::from_secs(2), NodeId(0), false);
        let mut sim = SimBuilder::new(pair_config())
            .with_positions(vec![Position::new(0.0, 50.0)])
            .with_node(Box::new(Toggled { log: Vec::new() }))
            .with_fault_plan(plan)
            .build();
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(
            sim.protocol::<Toggled>(NodeId(0)).unwrap().log,
            [true, false]
        );
        assert_eq!(sim.metrics().faults.byz_activations, 1);
        assert_eq!(sim.metrics().faults.byz_deactivations, 1);
    }

    /// The differential guarantee at the engine level: a crash/restart of a
    /// node whose radio never reaches the others leaves every other node's
    /// counters bit-identical to a fault-free run (fork isolation + no extra
    /// RNG draws on the shared paths).
    #[test]
    fn faults_on_an_isolated_node_do_not_perturb_the_rest() {
        let run = |plan: FaultPlan| {
            let config = SimConfig {
                seed: 11,
                radio: RadioConfig::default(),
                mobility_tick: SimDuration::from_millis(100),
                ..SimConfig::default()
            };
            let mut positions: Vec<Position> = Vec::new();
            for i in 0..30 {
                positions.push(Position::new(60.0 * (i % 6) as f64, 60.0 * (i / 6) as f64));
            }
            // Node 30: far corner, out of audible range of the cluster.
            positions.push(Position::new(990.0, 990.0));
            let mut sim = SimBuilder::new(config)
                .with_mobility(Box::new(StaticPlacement::UniformRandom))
                .with_positions(positions)
                .with_nodes(31, Flooder::boxed)
                .with_fault_plan(plan)
                .with_restart_factory(Box::new(Flooder::boxed))
                .build();
            for k in 0..5u64 {
                sim.schedule_app_broadcast(
                    SimDuration::from_millis(10 + k * 300),
                    NodeId((k % 5) as u32),
                    k,
                    256,
                );
            }
            sim.run_for(SimDuration::from_secs(6));
            let m = sim.metrics();
            (m.per_node[..30].to_vec(), m.deliveries.clone())
        };
        let faulty = FaultPlan::new()
            .crash(SimDuration::from_secs(1), NodeId(30), false)
            .restart(SimDuration::from_secs(2), NodeId(30))
            .crash(SimDuration::from_secs(3), NodeId(30), true)
            .restart(SimDuration::from_secs(4), NodeId(30));
        assert_eq!(run(FaultPlan::new()), run(faulty));
    }

    #[test]
    fn mobile_runs_with_empty_plan_match_plan_free_builds() {
        // Belt and braces for the zero-effect property on the mobile path.
        let run = |with_plan: bool| {
            let config = SimConfig {
                seed: 5,
                mobility_tick: SimDuration::from_millis(100),
                ..SimConfig::default()
            };
            let mut b = SimBuilder::new(config)
                .with_mobility(Box::new(RandomWaypoint::new(
                    1.0,
                    10.0,
                    SimDuration::from_secs(1),
                )))
                .with_nodes(25, Flooder::boxed);
            if with_plan {
                b = b
                    .with_fault_plan(FaultPlan::new())
                    .with_restart_factory(Box::new(Flooder::boxed));
            }
            let mut sim = b.build();
            for k in 0..4u64 {
                sim.schedule_app_broadcast(
                    SimDuration::from_millis(10 + k * 250),
                    NodeId(k as u32),
                    k,
                    256,
                );
            }
            sim.run_for(SimDuration::from_secs(5));
            sim.metrics().clone()
        };
        assert_eq!(run(false), run(true));
    }
}

#[cfg(test)]
mod capture_engine_tests {
    use super::*;
    use std::collections::HashSet;

    #[derive(Clone, Debug)]
    struct Flat(u64);
    impl Message for Flat {
        fn wire_size(&self) -> usize {
            64
        }
        fn kind(&self) -> &'static str {
            "flat"
        }
    }
    struct Deliverer {
        got: HashSet<u64>,
    }
    impl Protocol for Deliverer {
        type Msg = Flat;
        fn on_packet(&mut self, ctx: &mut Context<'_, Flat>, from: NodeId, msg: &Flat) {
            if self.got.insert(msg.0) {
                ctx.deliver(from, msg.0);
            }
        }
        fn on_timer(&mut self, _: &mut Context<'_, Flat>, _: TimerKey) {}
        fn on_app_broadcast(&mut self, ctx: &mut Context<'_, Flat>, p: AppPayload) {
            ctx.send(Flat(p.id));
        }
    }

    fn collision_setup(capture_ratio: f64) -> Simulator<Flat> {
        // Receiver at 0; near sender at 40 m; far interferer at 240 m.
        // Senders are out of range of each other (no carrier sense rescue),
        // MAC jitter zeroed so they truly overlap.
        let config = SimConfig {
            radio: RadioConfig {
                capture_ratio,
                ..RadioConfig::ideal_disk(250.0)
            },
            mac: MacConfig {
                slot_us: 0,
                difs_us: 0,
                cw_slots: 1,
                queue_capacity: 8,
            },
            field: Field::new(600.0, 100.0),
            ..SimConfig::default()
        };
        let mut sim = SimBuilder::new(config)
            .with_positions(vec![
                Position::new(250.0, 50.0), // receiver
                Position::new(210.0, 50.0), // near sender (40 m, left)
                Position::new(490.0, 50.0), // far interferer (240 m, right)
                                            // near ↔ far = 280 m > 250 m: hidden terminals — no carrier
                                            // sense rescue, their frames genuinely overlap at the
                                            // receiver.
            ])
            .with_nodes(3, |_| {
                Box::new(Deliverer {
                    got: HashSet::new(),
                })
            })
            .build();
        sim.schedule_app_broadcast(SimDuration::from_millis(1), NodeId(1), 1, 64);
        sim.schedule_app_broadcast(SimDuration::from_millis(1), NodeId(2), 2, 64);
        sim.run_for(SimDuration::from_millis(100));
        sim
    }

    #[test]
    fn without_capture_the_overlap_destroys_both() {
        let sim = collision_setup(0.0);
        assert!(
            !sim.metrics().deliveries.iter().any(|d| d.node == NodeId(0)),
            "receiver decoded through a collision with capture disabled"
        );
        assert!(sim.metrics().collision_losses >= 1);
    }

    #[test]
    fn with_capture_the_near_frame_survives() {
        let sim = collision_setup(3.0);
        let got: Vec<u64> = sim
            .metrics()
            .deliveries
            .iter()
            .filter(|d| d.node == NodeId(0))
            .map(|d| d.payload_id)
            .collect();
        assert_eq!(got, vec![1], "near frame should capture; got {got:?}");
    }
}
