//! Simulation metrics: everything the experiment harness reports comes from
//! here.
//!
//! The engine counts frames and bytes by message kind, radio-level losses by
//! cause, and records every application-level broadcast and delivery with
//! timestamps so the harness can compute delivery ratios and latency
//! distributions per payload.

use std::collections::BTreeMap;

use crate::node::NodeId;
use crate::time::SimTime;

/// One application-level delivery (`accept` in the paper's terms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// The accepting node.
    pub node: NodeId,
    /// The claimed originator.
    pub origin: NodeId,
    /// The workload-assigned payload id.
    pub payload_id: u64,
    /// When the delivery happened.
    pub time: SimTime,
}

/// One application-level broadcast injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastRecord {
    /// The originating node.
    pub origin: NodeId,
    /// The workload-assigned payload id.
    pub payload_id: u64,
    /// When the workload injected it.
    pub time: SimTime,
    /// Application payload size in bytes.
    pub size_bytes: usize,
}

/// Per-node counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Frames this node put on the air.
    pub frames_sent: u64,
    /// Bytes this node put on the air.
    pub bytes_sent: u64,
    /// Frames this node received successfully.
    pub frames_received: u64,
    /// Frames lost at this node to collisions.
    pub collision_losses: u64,
    /// Frames dropped because this node's interface queue overflowed.
    pub queue_drops: u64,
}

/// Counters for executed fault-plan events and their radio-level effects.
///
/// All-zero (the `Default`) when the run had no fault plan, so metrics from
/// faulty and fault-free runs still compare with `==` in differential tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Crash events executed.
    pub crashes: u64,
    /// Restart events executed.
    pub restarts: u64,
    /// Byzantine activations delivered (`SetByzantine { active: true }`).
    pub byz_activations: u64,
    /// Byzantine deactivations delivered (`SetByzantine { active: false }`).
    pub byz_deactivations: u64,
    /// Jam windows opened.
    pub jam_starts: u64,
    /// Jam windows closed.
    pub jam_ends: u64,
    /// Receptions destroyed by an active jam region.
    pub jam_losses: u64,
    /// Application broadcasts dropped because the origin node was down.
    pub injections_dropped: u64,
}

/// All metrics for a run.
///
/// Compares with `==` so differential tests can assert that two runs (e.g.
/// spatial index on vs. off) produced bit-identical observable behaviour.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Frames sent, bucketed by [`crate::node::Message::kind`].
    pub frames_by_kind: BTreeMap<&'static str, u64>,
    /// Bytes sent, bucketed by message kind.
    pub bytes_by_kind: BTreeMap<&'static str, u64>,
    /// Total frames put on the air.
    pub frames_sent: u64,
    /// Total bytes put on the air.
    pub bytes_sent: u64,
    /// Successful frame receptions (across all receivers).
    pub frames_received: u64,
    /// Receptions destroyed by collision.
    pub collision_losses: u64,
    /// Receptions destroyed by fading/background noise.
    pub noise_losses: u64,
    /// Receptions missed because the receiver was itself transmitting.
    pub half_duplex_losses: u64,
    /// Frames dropped at the sender's interface queue.
    pub queue_drops: u64,
    /// Every application-level broadcast injected.
    pub broadcasts: Vec<BroadcastRecord>,
    /// Every application-level delivery.
    pub deliveries: Vec<DeliveryRecord>,
    /// Per-node counters, indexed by `NodeId::index`.
    pub per_node: Vec<NodeMetrics>,
    /// Fault-injection counters (all zero when the run had no fault plan).
    pub faults: FaultStats,
}

impl Metrics {
    /// Creates metrics for `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics {
            per_node: vec![NodeMetrics::default(); n],
            ..Metrics::default()
        }
    }

    /// Records a frame transmission.
    pub fn record_send(&mut self, node: NodeId, kind: &'static str, bytes: usize) {
        *self.frames_by_kind.entry(kind).or_insert(0) += 1;
        *self.bytes_by_kind.entry(kind).or_insert(0) += bytes as u64;
        self.frames_sent += 1;
        self.bytes_sent += bytes as u64;
        let pm = &mut self.per_node[node.index()];
        pm.frames_sent += 1;
        pm.bytes_sent += bytes as u64;
    }

    /// Records a successful reception at `node`.
    pub fn record_reception(&mut self, node: NodeId) {
        self.frames_received += 1;
        self.per_node[node.index()].frames_received += 1;
    }

    /// Records a reception lost to collision at `node`.
    pub fn record_collision(&mut self, node: NodeId) {
        self.collision_losses += 1;
        self.per_node[node.index()].collision_losses += 1;
    }

    /// Records a reception lost to fading or background noise.
    pub fn record_noise_loss(&mut self) {
        self.noise_losses += 1;
    }

    /// Records a reception missed because the receiver was transmitting.
    pub fn record_half_duplex_loss(&mut self) {
        self.half_duplex_losses += 1;
    }

    /// Records a sender-side interface-queue drop at `node`.
    pub fn record_queue_drop(&mut self, node: NodeId) {
        self.queue_drops += 1;
        self.per_node[node.index()].queue_drops += 1;
    }

    /// Deliveries of a particular payload.
    pub fn deliveries_of(&self, payload_id: u64) -> impl Iterator<Item = &DeliveryRecord> {
        self.deliveries
            .iter()
            .filter(move |d| d.payload_id == payload_id)
    }

    /// Frames sent of a particular kind.
    pub fn frames_of_kind(&self, kind: &str) -> u64 {
        self.frames_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Bytes sent of a particular kind.
    pub fn bytes_of_kind(&self, kind: &str) -> u64 {
        self.bytes_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// `(kind, frames, bytes)` per message kind, in kind order — the
    /// per-run breakdown the harness exports to JSONL records.
    pub fn kind_breakdown(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.frames_by_kind
            .iter()
            .map(|(&kind, &frames)| (kind, frames, self.bytes_of_kind(kind)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_accounting_by_kind_and_node() {
        let mut m = Metrics::new(3);
        m.record_send(NodeId(0), "data", 100);
        m.record_send(NodeId(0), "data", 50);
        m.record_send(NodeId(2), "gossip", 20);
        assert_eq!(m.frames_sent, 3);
        assert_eq!(m.bytes_sent, 170);
        assert_eq!(m.frames_of_kind("data"), 2);
        assert_eq!(m.bytes_of_kind("data"), 150);
        assert_eq!(m.frames_of_kind("gossip"), 1);
        assert_eq!(m.frames_of_kind("nope"), 0);
        assert_eq!(m.per_node[0].frames_sent, 2);
        assert_eq!(m.per_node[2].bytes_sent, 20);
        assert_eq!(m.per_node[1], NodeMetrics::default());
    }

    #[test]
    fn loss_counters() {
        let mut m = Metrics::new(2);
        m.record_collision(NodeId(1));
        m.record_noise_loss();
        m.record_half_duplex_loss();
        m.record_queue_drop(NodeId(0));
        m.record_reception(NodeId(1));
        assert_eq!(m.collision_losses, 1);
        assert_eq!(m.noise_losses, 1);
        assert_eq!(m.half_duplex_losses, 1);
        assert_eq!(m.queue_drops, 1);
        assert_eq!(m.frames_received, 1);
        assert_eq!(m.per_node[1].collision_losses, 1);
        assert_eq!(m.per_node[1].frames_received, 1);
        assert_eq!(m.per_node[0].queue_drops, 1);
    }

    #[test]
    fn deliveries_of_filters_by_payload() {
        let mut m = Metrics::new(2);
        m.deliveries.push(DeliveryRecord {
            node: NodeId(0),
            origin: NodeId(1),
            payload_id: 7,
            time: SimTime::from_secs(1),
        });
        m.deliveries.push(DeliveryRecord {
            node: NodeId(1),
            origin: NodeId(1),
            payload_id: 8,
            time: SimTime::from_secs(2),
        });
        assert_eq!(m.deliveries_of(7).count(), 1);
        assert_eq!(m.deliveries_of(9).count(), 0);
    }
}
