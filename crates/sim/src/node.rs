//! The sans-io protocol interface: how a node's protocol logic plugs into the
//! simulator.
//!
//! A protocol is a state machine implementing [`Protocol`]. The engine calls
//! it back on startup, packet reception, timer expiry, and application-level
//! broadcast requests. During a callback the protocol interacts with the
//! world exclusively through the [`Context`] — sending packets, arming
//! timers, delivering messages to the application, recording trace notes, and
//! drawing randomness. This keeps protocol logic unit-testable with a
//! hand-built `Context` and makes Byzantine wrappers (which intercept a
//! correct protocol's actions) straightforward.

use std::fmt;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a node in the simulation. Ids are dense, starting at zero.
///
/// In the reproduced protocol the node id doubles as the unforgeable
/// "goodness number" used by the overlay election (paper §3.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an index into per-node arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// An opaque timer identifier chosen by the protocol.
///
/// Protocols encode meaning into the key (e.g. "gossip tick", "expect
/// deadline for message 17"); the engine just returns it verbatim when the
/// timer fires. Re-arming an already-armed key replaces the earlier deadline.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TimerKey(pub u64);

/// An application-level broadcast request injected by the workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppPayload {
    /// Globally unique payload identifier assigned by the workload generator.
    pub id: u64,
    /// Size of the application data in bytes (affects air time).
    pub size_bytes: usize,
}

/// A protocol wire message.
///
/// The simulator is generic over the message type; it needs only a byte size
/// (to compute transmission air-time and byte metrics) and a short static
/// kind string (to break metrics down by message type).
pub trait Message: Clone + fmt::Debug {
    /// Serialized size in bytes, used for air-time and byte accounting.
    fn wire_size(&self) -> usize;
    /// A short label such as `"data"` or `"gossip"` used to bucket metrics.
    fn kind(&self) -> &'static str;
}

/// An effect requested by a protocol during a callback.
#[derive(Clone, Debug)]
pub enum Action<M> {
    /// Broadcast `msg` to every node within radio range (one MAC transmission).
    Send(M),
    /// Arm (or re-arm) timer `key` to fire at the absolute instant `at`.
    SetTimer {
        /// When the timer should fire.
        at: SimTime,
        /// The protocol-chosen key returned on expiry.
        key: TimerKey,
    },
    /// Disarm timer `key` if armed.
    CancelTimer(TimerKey),
    /// Deliver (accept) an application message to the local application.
    Deliver {
        /// The claimed originator of the payload.
        origin: NodeId,
        /// The workload-assigned payload identifier.
        payload_id: u64,
    },
    /// Record a free-form note in the simulation trace.
    Note(String),
}

/// The protocol's window onto the simulated world during a callback.
///
/// All mutations are buffered as [`Action`]s and applied by the engine after
/// the callback returns, in order.
pub struct Context<'a, M> {
    node: NodeId,
    now: SimTime,
    rng: &'a mut SimRng,
    actions: &'a mut Vec<Action<M>>,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context. Exposed so protocols can be unit tested without an
    /// engine; simulation code does not normally call this.
    pub fn new(
        node: NodeId,
        now: SimTime,
        rng: &'a mut SimRng,
        actions: &'a mut Vec<Action<M>>,
    ) -> Self {
        Context {
            node,
            now,
            rng,
            actions,
        }
    }

    /// The id of the node this protocol instance runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Queues a radio broadcast of `msg` to all nodes in range.
    pub fn send(&mut self, msg: M) {
        self.actions.push(Action::Send(msg));
    }

    /// Arms (or re-arms) `key` to fire after `delay`.
    pub fn set_timer_after(&mut self, delay: SimDuration, key: TimerKey) {
        let at = self.now + delay;
        self.actions.push(Action::SetTimer { at, key });
    }

    /// Arms (or re-arms) `key` to fire at the absolute instant `at`.
    pub fn set_timer_at(&mut self, at: SimTime, key: TimerKey) {
        self.actions.push(Action::SetTimer { at, key });
    }

    /// Disarms `key` if it is armed; otherwise a no-op.
    pub fn cancel_timer(&mut self, key: TimerKey) {
        self.actions.push(Action::CancelTimer(key));
    }

    /// Accepts an application payload; the engine records the delivery.
    pub fn deliver(&mut self, origin: NodeId, payload_id: u64) {
        self.actions.push(Action::Deliver { origin, payload_id });
    }

    /// Records a free-form trace note (cheap no-op unless tracing is enabled).
    pub fn note(&mut self, text: impl Into<String>) {
        self.actions.push(Action::Note(text.into()));
    }
}

/// A node's protocol logic.
///
/// Implementations must be deterministic given the callback sequence and the
/// context RNG; the engine guarantees a reproducible callback order.
pub trait Protocol {
    /// The wire message type this protocol family exchanges.
    type Msg: Message;

    /// Called once at simulation start (time zero), before any other callback.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a packet transmitted by `from` is successfully received.
    fn on_packet(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: &Self::Msg);

    /// Called when a previously armed timer fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: TimerKey);

    /// Called when the application asks this node to broadcast `payload`.
    fn on_app_broadcast(&mut self, ctx: &mut Context<'_, Self::Msg>, payload: AppPayload);

    /// Called when a fault plan toggles this node's Byzantine behaviour
    /// ([`crate::fault::FaultKind::SetByzantine`]). Most protocols ignore
    /// it; adversary wrappers that can *flap* — turn faulty mid-run and
    /// possibly back — override it to switch their behaviour.
    fn on_byzantine(&mut self, ctx: &mut Context<'_, Self::Msg>, active: bool) {
        let _ = (ctx, active);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Ping(u32);
    impl Message for Ping {
        fn wire_size(&self) -> usize {
            8
        }
        fn kind(&self) -> &'static str {
            "ping"
        }
    }

    struct Echo;
    impl Protocol for Echo {
        type Msg = Ping;
        fn on_packet(&mut self, ctx: &mut Context<'_, Ping>, _from: NodeId, msg: &Ping) {
            ctx.send(Ping(msg.0 + 1));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Ping>, timer: TimerKey) {
            ctx.note(format!("timer {timer:?}"));
        }
        fn on_app_broadcast(&mut self, ctx: &mut Context<'_, Ping>, payload: AppPayload) {
            ctx.deliver(ctx.node_id(), payload.id);
        }
    }

    #[test]
    fn context_buffers_actions_in_order() {
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        let mut ctx = Context::new(NodeId(3), SimTime::from_secs(1), &mut rng, &mut actions);
        let mut p = Echo;
        p.on_packet(&mut ctx, NodeId(1), &Ping(7));
        p.on_app_broadcast(
            &mut ctx,
            AppPayload {
                id: 9,
                size_bytes: 10,
            },
        );
        assert_eq!(actions.len(), 2);
        match &actions[0] {
            Action::Send(Ping(8)) => {}
            other => panic!("unexpected action {other:?}"),
        }
        match &actions[1] {
            Action::Deliver { origin, payload_id } => {
                assert_eq!(*origin, NodeId(3));
                assert_eq!(*payload_id, 9);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn timer_helpers_compute_absolute_deadlines() {
        let mut rng = SimRng::new(0);
        let mut actions: Vec<Action<Ping>> = Vec::new();
        let mut ctx = Context::new(NodeId(0), SimTime::from_secs(2), &mut rng, &mut actions);
        ctx.set_timer_after(SimDuration::from_millis(250), TimerKey(5));
        match &actions[0] {
            Action::SetTimer { at, key } => {
                assert_eq!(*at, SimTime::from_micros(2_250_000));
                assert_eq!(*key, TimerKey(5));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn node_id_formats_compactly() {
        assert_eq!(NodeId(12).to_string(), "n12");
        assert_eq!(format!("{:?}", NodeId(12)), "n12");
        assert_eq!(NodeId::from(4u32), NodeId(4));
        assert_eq!(NodeId(4).index(), 4);
    }
}
