//! Schnorr signatures over a toy-sized prime-order subgroup.
//!
//! The paper's implementation signs every message with DSA. We implement the
//! closely related Schnorr scheme — the same discrete-log setting, a simpler
//! and provably sound construction — over a 62-bit prime modulus so that a
//! simulated run can afford millions of signature operations:
//!
//! * modulus `p` = 2305843201413480359 (prime),
//! * subgroup order `q` = 2³¹ − 1 (the Mersenne prime 2147483647), `q | p−1`,
//! * generator `g` = 157608736213706629 of the order-`q` subgroup.
//!
//! Signing: pick nonce `k ∈ [1, q)`, commit `r = g^k mod p`, challenge
//! `e = H(r ‖ signer ‖ m) mod q` (Fiat–Shamir with SHA-256), response
//! `s = k + x·e mod q`. Verify: recompute `r' = g^s · y^(−e) mod p` and check
//! the challenge matches.
//!
//! **These parameters are far too small to be secure**; they demonstrate the
//! real algorithm at simulation speed. Swap in full-size parameters (and a
//! big-integer backend) for any non-simulated use.

use std::sync::{Arc, LazyLock};

use crate::sha256::Sha256;
use crate::{Signature, SignatureScheme, Signer, SignerId, Verifier};

/// The group modulus `p` (62-bit prime with `q | p − 1`).
pub const P: u64 = 2_305_843_201_413_480_359;
/// The subgroup order `q` (Mersenne prime 2³¹ − 1).
pub const Q: u64 = 2_147_483_647;
/// A generator of the order-`q` subgroup of `Z_p*`.
pub const G: u64 = 157_608_736_213_706_629;

/// Modular multiplication with a 62-bit modulus via 128-bit intermediates.
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation by squaring.
///
/// Public so benchmarks can compare it against [`FixedBaseTable::pow`];
/// within the scheme all fixed-base exponentiations go through the tables.
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

const WINDOW_BITS: u32 = 4;
const WINDOWS: usize = 8; // 8 × 4 bits cover every exponent < q < 2³²

/// Fixed-base windowed exponentiation table modulo [`P`].
///
/// Both verification exponentiations (`g^s` and `y^(q−e)`) raise a *known*
/// base to a < 32-bit exponent, so precomputing `base^(d·16^w)` for every
/// window `w` and digit `d` turns each `pow_mod` (~46 multiplications) into
/// at most 8 table multiplications. Values are exactly those of
/// [`pow_mod`] — this is a speedup, never a behaviour change.
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    // windows[w][d] = base^(d << (4·w)) mod p
    windows: Box<[[u64; 1 << WINDOW_BITS]; WINDOWS]>,
}

impl FixedBaseTable {
    /// Precomputes the table for `base` (120 multiplications, ~1 KiB).
    pub fn new(base: u64) -> Self {
        let mut windows = Box::new([[1u64; 1 << WINDOW_BITS]; WINDOWS]);
        let mut unit = base % P; // base^(16^w) as w advances
        for window in windows.iter_mut() {
            for d in 1..1 << WINDOW_BITS {
                window[d] = mul_mod(window[d - 1], unit, P);
            }
            unit = mul_mod(window[(1 << WINDOW_BITS) - 1], unit, P);
        }
        FixedBaseTable { windows }
    }

    /// `base^exp mod p` for `exp < 2³²`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `exp` fits the table's 32-bit range (every
    /// exponent the scheme produces is `< q < 2³¹`).
    pub fn pow(&self, exp: u64) -> u64 {
        debug_assert!(
            exp >> (WINDOW_BITS * WINDOWS as u32) == 0,
            "exponent too wide"
        );
        let mut acc: u64 = 1;
        for (w, window) in self.windows.iter().enumerate() {
            let digit = (exp >> (WINDOW_BITS * w as u32)) as usize & ((1 << WINDOW_BITS) - 1);
            if digit != 0 {
                acc = mul_mod(acc, window[digit], P);
            }
        }
        acc
    }
}

/// The generator's table, shared by key generation, signing and verification.
static G_TABLE: LazyLock<FixedBaseTable> = LazyLock::new(|| FixedBaseTable::new(G));

/// Derives the Fiat–Shamir challenge `e = H(r ‖ signer ‖ m) mod q`.
fn challenge(r: u64, signer: SignerId, msg: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(&r.to_le_bytes())
        .update(&signer.0.to_le_bytes())
        .update(msg);
    h.finalize().prefix_u64() % Q
}

/// Derives a deterministic per-message nonce `k = H(x ‖ m) mod q` (RFC 6979
/// style), so signing needs no RNG and never reuses a nonce across messages.
fn nonce(private: u64, msg: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(b"byzcast-schnorr-nonce")
        .update(&private.to_le_bytes())
        .update(msg);
    1 + h.finalize().prefix_u64() % (Q - 1)
}

/// Key material for all nodes in a run.
#[derive(Clone, Debug)]
pub struct SchnorrScheme {
    privates: Vec<u64>,
    publics: Vec<u64>,
}

/// Signs with one node's private key.
#[derive(Clone, Debug)]
pub struct SchnorrSigner {
    id: SignerId,
    private: u64,
}

/// Verifies against the public-key directory.
#[derive(Clone, Debug)]
pub struct SchnorrVerifier {
    /// Per-signer fixed-base tables for `y^(q−e)`; index = signer id.
    y_tables: Arc<Vec<FixedBaseTable>>,
}

impl SignatureScheme for SchnorrScheme {
    type Signer = SchnorrSigner;
    type Verifier = SchnorrVerifier;

    fn generate(seed: u64, n: u32) -> Self {
        let mut privates = Vec::with_capacity(n as usize);
        let mut publics = Vec::with_capacity(n as usize);
        for i in 0..n {
            // Private keys derived from the seed through SHA-256.
            let mut h = Sha256::new();
            h.update(b"byzcast-schnorr-key")
                .update(&seed.to_le_bytes())
                .update(&i.to_le_bytes());
            let x = 1 + h.finalize().prefix_u64() % (Q - 1);
            privates.push(x);
            publics.push(G_TABLE.pow(x));
        }
        SchnorrScheme { privates, publics }
    }

    fn signer(&self, id: SignerId) -> SchnorrSigner {
        SchnorrSigner {
            id,
            private: self.privates[id.0 as usize],
        }
    }

    fn verifier(&self) -> SchnorrVerifier {
        SchnorrVerifier {
            y_tables: Arc::new(
                self.publics
                    .iter()
                    .map(|&y| FixedBaseTable::new(y))
                    .collect(),
            ),
        }
    }
}

/// Packs `(e, s)` into the fixed-width [`Signature`] format.
fn encode(e: u64, s: u64) -> Signature {
    let mut out = [0u8; 40];
    out[..8].copy_from_slice(&e.to_le_bytes());
    out[8..16].copy_from_slice(&s.to_le_bytes());
    // Remaining bytes are a keyed fingerprint, filling the signature to the
    // DSA-like wire size the protocol accounts for.
    let mut h = Sha256::new();
    h.update(&out[..16]);
    let d = h.finalize();
    out[16..40].copy_from_slice(&d.0[..24]);
    Signature(out)
}

/// Unpacks `(e, s)` and checks the filler fingerprint.
fn decode(sig: &Signature) -> Option<(u64, u64)> {
    let e = u64::from_le_bytes(sig.0[..8].try_into().ok()?);
    let s = u64::from_le_bytes(sig.0[8..16].try_into().ok()?);
    let mut h = Sha256::new();
    h.update(&sig.0[..16]);
    if h.finalize().0[..24] != sig.0[16..40] {
        return None;
    }
    Some((e, s))
}

impl Signer for SchnorrSigner {
    fn id(&self) -> SignerId {
        self.id
    }

    fn sign(&self, data: &[u8]) -> Signature {
        let k = nonce(self.private, data);
        let r = G_TABLE.pow(k);
        let e = challenge(r, self.id, data);
        let s = (k + mul_mod(self.private, e, Q)) % Q;
        encode(e, s)
    }
}

impl Verifier for SchnorrVerifier {
    fn verify(&self, signer: SignerId, data: &[u8], sig: &Signature) -> bool {
        let Some((e, s)) = decode(sig) else {
            return false;
        };
        if e >= Q || s >= Q {
            return false;
        }
        let Some(y_table) = self.y_tables.get(signer.0 as usize) else {
            return false;
        };
        // r' = g^s * y^(q - e)  (y has order q, so y^(q-e) = y^(-e)).
        let gs = G_TABLE.pow(s);
        let y_inv_e = y_table.pow(Q - e);
        let r = mul_mod(gs, y_inv_e, P);
        challenge(r, signer, data) == e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_parameters_are_consistent() {
        // q divides p - 1.
        assert_eq!((P - 1) % Q, 0);
        // g has order exactly q (g != 1, g^q = 1).
        assert_ne!(G, 1);
        assert_eq!(pow_mod(G, Q, P), 1);
    }

    #[test]
    fn p_and_q_pass_miller_rabin() {
        fn is_prime(n: u64) -> bool {
            if n < 2 {
                return false;
            }
            for sp in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
                if n.is_multiple_of(sp) {
                    return n == sp;
                }
            }
            let mut d = n - 1;
            let mut r = 0;
            while d.is_multiple_of(2) {
                d /= 2;
                r += 1;
            }
            'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
                let mut x = pow_mod(a, d, n);
                if x == 1 || x == n - 1 {
                    continue;
                }
                for _ in 0..r - 1 {
                    x = mul_mod(x, x, n);
                    if x == n - 1 {
                        continue 'witness;
                    }
                }
                return false;
            }
            true
        }
        assert!(is_prime(P));
        assert!(is_prime(Q));
    }

    #[test]
    fn sign_verify_round_trip() {
        let scheme = SchnorrScheme::generate(1, 3);
        let v = scheme.verifier();
        for id in 0..3 {
            let s = scheme.signer(SignerId(id));
            let sig = s.sign(b"message body");
            assert!(v.verify(SignerId(id), b"message body", &sig));
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let scheme = SchnorrScheme::generate(2, 1);
        let sig = scheme.signer(SignerId(0)).sign(b"original");
        assert!(!scheme.verifier().verify(SignerId(0), b"tampered", &sig));
    }

    #[test]
    fn tampered_signature_bytes_rejected() {
        let scheme = SchnorrScheme::generate(3, 1);
        let mut sig = scheme.signer(SignerId(0)).sign(b"m");
        for byte in 0..40 {
            let mut bad = sig;
            bad.0[byte] ^= 0x01;
            assert!(
                !scheme.verifier().verify(SignerId(0), b"m", &bad),
                "flip of byte {byte} accepted"
            );
        }
        // Untouched still verifies.
        sig.0[0] ^= 0;
        assert!(scheme.verifier().verify(SignerId(0), b"m", &sig));
    }

    #[test]
    fn cross_signer_rejected() {
        let scheme = SchnorrScheme::generate(4, 2);
        let sig = scheme.signer(SignerId(0)).sign(b"m");
        assert!(!scheme.verifier().verify(SignerId(1), b"m", &sig));
    }

    #[test]
    fn unknown_signer_rejected() {
        let scheme = SchnorrScheme::generate(5, 2);
        let sig = scheme.signer(SignerId(0)).sign(b"m");
        assert!(!scheme.verifier().verify(SignerId(9), b"m", &sig));
    }

    #[test]
    fn deterministic_nonce_means_deterministic_signatures() {
        let scheme = SchnorrScheme::generate(6, 1);
        let s = scheme.signer(SignerId(0));
        assert_eq!(s.sign(b"m"), s.sign(b"m"));
        assert_ne!(s.sign(b"m1"), s.sign(b"m2"));
    }

    #[test]
    fn pow_mod_edge_cases() {
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(5, 1, 7), 5);
        assert_eq!(pow_mod(2, 10, 1_000_000), 1024);
        assert_eq!(pow_mod(0, 5, 7), 0);
    }

    #[test]
    fn mul_mod_no_overflow_near_modulus() {
        let a = P - 1;
        // (p-1)^2 mod p = 1.
        assert_eq!(mul_mod(a, a, P), 1);
    }

    #[test]
    fn fixed_base_table_matches_pow_mod_exactly() {
        for base in [G, 2, P - 1, 123_456_789_012_345] {
            let table = FixedBaseTable::new(base);
            // Edges plus a deterministic pseudo-random sweep of exponents.
            let mut exps = vec![0u64, 1, 2, 15, 16, 17, Q - 1, Q, (1 << 32) - 1];
            let mut x = 0x9e3779b97f4a7c15u64;
            for _ in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                exps.push(x >> 32); // uniform over [0, 2³²)
            }
            for &e in &exps {
                assert_eq!(table.pow(e), pow_mod(base, e, P), "base {base}, exp {e}");
            }
        }
    }
}

#[cfg(test)]
mod stability_tests {
    use super::*;
    use crate::{SignatureScheme, Signer, SignerId};

    /// Known-answer stability: key generation and signatures are pure
    /// functions of (seed, id, message). A change in this test's constants
    /// means a wire-format-breaking change to the scheme.
    #[test]
    fn key_generation_is_stable_across_runs() {
        let a = SchnorrScheme::generate(12345, 3);
        let b = SchnorrScheme::generate(12345, 3);
        for id in 0..3 {
            assert_eq!(
                a.signer(SignerId(id)).sign(b"kat"),
                b.signer(SignerId(id)).sign(b"kat")
            );
        }
    }

    #[test]
    fn public_keys_lie_in_the_prime_order_subgroup() {
        let scheme = SchnorrScheme::generate(99, 8);
        let v = scheme.verifier();
        // Indirectly: every node can sign and everyone verifies, which
        // requires y = g^x with x in [1, q).
        for id in 0..8 {
            let sig = scheme.signer(SignerId(id)).sign(b"subgroup");
            assert!(v.verify(SignerId(id), b"subgroup", &sig));
        }
    }

    #[test]
    fn distinct_ids_get_distinct_keys() {
        let scheme = SchnorrScheme::generate(7, 16);
        let sigs: std::collections::HashSet<_> = (0..16)
            .map(|id| scheme.signer(SignerId(id)).sign(b"same message").0)
            .collect();
        assert_eq!(sigs.len(), 16, "key collision across ids");
    }

    #[test]
    fn signature_encoding_survives_the_wire_width() {
        // e and s are < q < 2^31: the padding fingerprint must round-trip.
        let scheme = SchnorrScheme::generate(3, 1);
        let sig = scheme.signer(SignerId(0)).sign(b"wire");
        // Low 16 bytes carry (e, s); verify enforces the fingerprint over
        // them, so flipping any padding byte must also fail (covered by the
        // tamper test); here we confirm e, s < Q as encoded.
        let e = u64::from_le_bytes(sig.0[..8].try_into().unwrap());
        let s = u64::from_le_bytes(sig.0[8..16].try_into().unwrap());
        assert!(e < Q && s < Q);
    }
}
