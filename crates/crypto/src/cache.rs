//! Bounded memoization of signature verification.
//!
//! In the broadcast protocol the same signed `DATA` frame, gossip entry or
//! `BEACON` reaches many nodes as neighbours relay it, and each receiving
//! node re-verifies an identical `(signer, data, signature)` triple.
//! [`CachingVerifier`] wraps any [`Verifier`] and remembers verdicts, so each
//! distinct triple costs one real verification; repeats cost a hash-map probe
//! plus a byte comparison of the (short) signed preimage.
//!
//! The map is keyed on `(signer, signature)` alone — both small `Copy`
//! values — and each map slot holds the full signed bytes for an exact
//! comparison. Hashing the 40-byte signature is far cheaper than digesting
//! `data` (the signed preimages in this protocol are tens of bytes, and a
//! SHA-256 digest of them would cost as much as the verification it is meant
//! to save), while the stored copy of `data` keeps the verdict exact: a
//! colliding `(signer, signature)` pair with different bytes simply falls
//! through to the inner verifier.
//!
//! Caching the *negative* verdicts too is deliberate and safe: the match
//! requires the full signature and the full data, so a forged signature is
//! cached as `false` and can never alias a valid one. What must never happen
//! — and is covered by a test — is a forged signature being remembered as
//! valid.
//!
//! One instance is intended to be **shared by every verifying node in a
//! run** (the harness builds a single `Arc`'d cache per run). Verification
//! is a pure function of the triple, so a verdict computed for one node is
//! exactly the verdict any other node would compute — sharing cannot change
//! a single simulation result, and it is what makes the cache pay off: a
//! beacon heard by 80 neighbours is verified once, not 80 times. (A
//! per-node cache would model a real device's memory more literally, but
//! measures ~30% hit rate against ~97% shared, because the protocol already
//! deduplicates data before re-verifying at any one node.)
//!
//! The cache is bounded with a two-generation (segmented) LRU: lookups
//! promote entries into the hot generation, and when the hot generation
//! reaches `capacity` it becomes the cold one, dropping the previous cold
//! generation. Memory is therefore bounded by ~2 × `capacity` entries, with
//! deterministic operations — no clocks, no randomness, so simulation runs
//! stay reproducible.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{CacheStats, Signature, SignerId, Verifier};

type Key = (SignerId, Signature);

/// The verdicts recorded under one `(signer, signature)` key. Almost always
/// a single entry; multiple only if distinct data bytes ever map to the same
/// signature (e.g. a replayed signature probed against other payloads).
type Bucket = Vec<(Box<[u8]>, bool)>;

#[derive(Default)]
struct Generations {
    hot: HashMap<Key, Bucket>,
    cold: HashMap<Key, Bucket>,
    /// Entry counts (a bucket can hold several verdicts).
    hot_len: usize,
    cold_len: usize,
}

impl Generations {
    fn find(bucket: &Bucket, data: &[u8]) -> Option<bool> {
        bucket
            .iter()
            .find(|(d, _)| d.as_ref() == data)
            .map(|&(_, ok)| ok)
    }
}

/// A bounded memoizing wrapper around any [`Verifier`].
///
/// Intended to be instantiated **once per run** and shared (`Arc`) by every
/// verifying node — see the module docs for why sharing is result-neutral.
/// `capacity` is the size of one LRU generation; `0` disables caching
/// entirely (every call forwards to the inner verifier).
pub struct CachingVerifier<V> {
    inner: V,
    capacity: usize,
    generations: Mutex<Generations>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Verifier> CachingVerifier<V> {
    /// Wraps `inner` with a cache of `capacity` entries per generation.
    pub fn new(inner: V, capacity: usize) -> Self {
        CachingVerifier {
            inner,
            capacity,
            generations: Mutex::new(Generations::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The wrapped verifier.
    pub fn inner(&self) -> &V {
        &self.inner
    }

    /// Hit/miss/eviction counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl<V: Verifier> Verifier for CachingVerifier<V> {
    fn verify(&self, signer: SignerId, data: &[u8], sig: &Signature) -> bool {
        if self.capacity == 0 {
            return self.inner.verify(signer, data, sig);
        }
        let key = (signer, *sig);
        let mut gens = self.generations.lock().expect("cache poisoned");
        if let Some(bucket) = gens.hot.get(&key) {
            if let Some(ok) = Generations::find(bucket, data) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return ok;
            }
        }
        if let Some(ok) = gens.cold.get(&key).and_then(|b| Generations::find(b, data)) {
            // Promote: move the whole bucket so recently used entries
            // survive the next rotation.
            let mut bucket = gens.cold.remove(&key).expect("just probed");
            gens.cold_len -= bucket.len();
            gens.hot_len += bucket.len();
            gens.hot.entry(key).or_default().append(&mut bucket);
            self.hits.fetch_add(1, Ordering::Relaxed);
            if gens.hot_len >= self.capacity {
                self.rotate(&mut gens);
            }
            return ok;
        }
        let ok = self.inner.verify(signer, data, sig);
        self.misses.fetch_add(1, Ordering::Relaxed);
        gens.hot.entry(key).or_default().push((data.into(), ok));
        gens.hot_len += 1;
        if gens.hot_len >= self.capacity {
            self.rotate(&mut gens);
        }
        ok
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.stats())
    }
}

impl<V: Verifier> CachingVerifier<V> {
    fn rotate(&self, gens: &mut Generations) {
        let dropped = gens.cold_len;
        gens.cold = std::mem::take(&mut gens.hot);
        gens.cold_len = gens.hot_len;
        gens.hot_len = 0;
        self.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SignatureScheme, Signer, SimScheme};

    /// A verifier that counts how often it is actually consulted.
    struct Counting<V> {
        inner: V,
        calls: AtomicU64,
    }
    impl<V: Verifier> Verifier for Counting<V> {
        fn verify(&self, signer: SignerId, data: &[u8], sig: &Signature) -> bool {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.inner.verify(signer, data, sig)
        }
    }

    fn scheme() -> SimScheme {
        SimScheme::generate(7, 4)
    }

    #[test]
    fn repeats_hit_the_cache_and_skip_the_inner_verifier() {
        let s = scheme();
        let sig = s.signer(SignerId(0)).sign(b"payload");
        let v = CachingVerifier::new(
            Counting {
                inner: s.verifier(),
                calls: AtomicU64::new(0),
            },
            64,
        );
        for _ in 0..5 {
            assert!(v.verify(SignerId(0), b"payload", &sig));
        }
        assert_eq!(v.inner().calls.load(Ordering::Relaxed), 1);
        let st = v.stats();
        assert_eq!((st.hits, st.misses), (4, 1));
        assert_eq!(v.cache_stats().unwrap().hits, 4);
    }

    #[test]
    fn forged_signature_is_never_cached_as_valid() {
        let s = scheme();
        let good = s.signer(SignerId(0)).sign(b"m");
        let mut forged = good;
        forged.0[5] ^= 0xff;
        let v = CachingVerifier::new(s.verifier(), 64);
        // Cold and cached verdicts agree: the forgery stays invalid, and
        // caching it does not shadow the genuine signature (distinct keys).
        assert!(!v.verify(SignerId(0), b"m", &forged));
        assert!(!v.verify(SignerId(0), b"m", &forged));
        assert!(v.verify(SignerId(0), b"m", &good));
        assert!(v.verify(SignerId(0), b"m", &good));
        let st = v.stats();
        assert_eq!((st.hits, st.misses), (2, 2));
    }

    #[test]
    fn same_signature_different_data_is_an_exact_miss() {
        // The map key is (signer, signature); distinct data under the same
        // signature must fall through to the inner verifier, not alias.
        let s = scheme();
        let sig = s.signer(SignerId(0)).sign(b"aaaa");
        let v = CachingVerifier::new(
            Counting {
                inner: s.verifier(),
                calls: AtomicU64::new(0),
            },
            64,
        );
        assert!(v.verify(SignerId(0), b"aaaa", &sig));
        assert!(!v.verify(SignerId(0), b"bbbb", &sig)); // same key, new data
        assert!(!v.verify(SignerId(0), b"bbbb", &sig)); // now cached false
        assert!(v.verify(SignerId(0), b"aaaa", &sig)); // original still true
        assert_eq!(v.inner().calls.load(Ordering::Relaxed), 2);
        let st = v.stats();
        assert_eq!((st.hits, st.misses), (2, 2));
    }

    #[test]
    fn distinct_data_and_impersonation_miss_separately() {
        let s = scheme();
        let sig = s.signer(SignerId(0)).sign(b"a");
        let v = CachingVerifier::new(s.verifier(), 64);
        assert!(v.verify(SignerId(0), b"a", &sig));
        assert!(!v.verify(SignerId(1), b"a", &sig)); // impersonation: own key
        assert!(!v.verify(SignerId(0), b"b", &sig)); // different data
        assert_eq!(v.stats().misses, 3);
    }

    #[test]
    fn eviction_bounds_the_cache_and_is_counted() {
        let s = scheme();
        let signer = s.signer(SignerId(0));
        let v = CachingVerifier::new(s.verifier(), 4);
        // 16 distinct messages through a 4-per-generation cache: at most
        // 2 × 4 verdicts retained, the rest evicted.
        for i in 0..16u32 {
            let data = i.to_le_bytes();
            let sig = signer.sign(&data);
            assert!(v.verify(SignerId(0), &data, &sig));
        }
        let st = v.stats();
        assert_eq!(st.misses, 16);
        assert!(st.evictions >= 8, "evictions: {}", st.evictions);
        // The earliest entry is long gone: verifying it again is a miss.
        let sig = signer.sign(&0u32.to_le_bytes());
        assert!(v.verify(SignerId(0), &0u32.to_le_bytes(), &sig));
        assert_eq!(v.stats().misses, 17);
    }

    #[test]
    fn recently_used_entries_survive_rotation() {
        let s = scheme();
        let signer = s.signer(SignerId(0));
        let v = CachingVerifier::new(s.verifier(), 4);
        let hot_data = 99u32.to_le_bytes();
        let hot_sig = signer.sign(&hot_data);
        assert!(v.verify(SignerId(0), &hot_data, &hot_sig));
        // Interleave the hot entry with a stream of one-shot entries: the
        // promotions keep it cached throughout.
        for i in 0..12u32 {
            let data = i.to_le_bytes();
            let sig = signer.sign(&data);
            assert!(v.verify(SignerId(0), &data, &sig));
            assert!(v.verify(SignerId(0), &hot_data, &hot_sig));
        }
        assert_eq!(v.stats().misses, 13, "the hot entry was evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let s = scheme();
        let sig = s.signer(SignerId(0)).sign(b"m");
        let v = CachingVerifier::new(
            Counting {
                inner: s.verifier(),
                calls: AtomicU64::new(0),
            },
            0,
        );
        for _ in 0..3 {
            assert!(v.verify(SignerId(0), b"m", &sig));
        }
        assert_eq!(v.inner().calls.load(Ordering::Relaxed), 3);
        let st = v.stats();
        assert_eq!((st.hits, st.misses, st.evictions), (0, 0, 0));
    }
}
