//! The public-key directory.
//!
//! The paper assumes "each device can obtain the public key of every other
//! device, and can thus authenticate the sender of any signed message".
//! [`KeyRegistry`] packages that assumption: it is built once per run from a
//! [`SignatureScheme`] and handed to every node, exposing each node's signer
//! and a shared verifier without giving protocol code access to other nodes'
//! private keys.

use crate::{SignatureScheme, SignerId};

/// A per-run key directory generic over the signature scheme.
#[derive(Clone, Debug)]
pub struct KeyRegistry<S: SignatureScheme> {
    scheme: S,
    n: u32,
}

impl<S: SignatureScheme> KeyRegistry<S> {
    /// Generates keys for nodes `0..n` from `seed`.
    pub fn generate(seed: u64, n: u32) -> Self {
        KeyRegistry {
            scheme: S::generate(seed, n),
            n,
        }
    }

    /// Number of registered nodes.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The signer for node `id` — hand this only to node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= len()`.
    pub fn signer(&self, id: SignerId) -> S::Signer {
        assert!(id.0 < self.n, "signer id {id:?} out of range 0..{}", self.n);
        self.scheme.signer(id)
    }

    /// The shared verifier (cheaply cloneable; give one to every node).
    pub fn verifier(&self) -> S::Verifier {
        self.scheme.verifier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_sig::SimScheme;
    use crate::{Signer, Verifier};

    #[test]
    fn registry_hands_out_working_keys() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(11, 3);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
        let s = reg.signer(SignerId(1));
        let sig = s.sign(b"x");
        assert!(reg.verifier().verify(SignerId(1), b"x", &sig));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_signer_panics() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(11, 3);
        let _ = reg.signer(SignerId(3));
    }
}
