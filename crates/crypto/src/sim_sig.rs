//! The simulation-enforced signature scheme (fast default).
//!
//! A signature is `HMAC-SHA256(secret_i, signer_id ‖ data)` truncated to the
//! common wire size, where `secret_i` is a per-node secret derived from the
//! run seed. Each node's [`SimSigner`] holds only its own secret; the shared
//! [`SimVerifier`] holds all secrets and recomputes the MAC.
//!
//! Inside a simulation this gives exactly the properties the paper requires
//! of DSA — a node "cannot impersonate another node" and data tampering is
//! detected — because the only code path that can produce node `i`'s MAC is
//! node `i`'s own signer, and Byzantine protocol implementations are only
//! ever handed their own signer. It is, of course, not a real signature
//! scheme (the verifier could forge); it trades that for speed in runs with
//! hundreds of nodes gossiping signatures continuously.
//!
//! The secrets are held as precomputed [`HmacKey`] pad midstates, which
//! halves the SHA-256 compressions per sign/verify without changing a single
//! output byte relative to the one-shot `hmac_sha256` formulation.

use std::sync::Arc;

use crate::sha256::{hmac_sha256, HmacKey};
use crate::{Signature, SignatureScheme, Signer, SignerId, Verifier};

fn derive_key(seed: u64, id: u32) -> HmacKey {
    let secret = hmac_sha256(b"byzcast-sim-sig-secret", &{
        let mut buf = [0u8; 12];
        buf[..8].copy_from_slice(&seed.to_le_bytes());
        buf[8..].copy_from_slice(&id.to_le_bytes());
        buf
    })
    .0;
    HmacKey::new(&secret)
}

fn mac(key: &HmacKey, signer: SignerId, data: &[u8]) -> Signature {
    let d = key.mac(&[&signer.0.to_le_bytes(), data]);
    let mut out = [0u8; 40];
    out[..32].copy_from_slice(&d.0);
    // Widen to the common 40-byte wire size with a second pass.
    let d2 = key.mac(&[&d.0]);
    out[32..].copy_from_slice(&d2.0[..8]);
    Signature(out)
}

/// Key material for all nodes in a run.
#[derive(Clone, Debug)]
pub struct SimScheme {
    keys: Arc<Vec<HmacKey>>,
}

/// Signs with one node's secret.
#[derive(Clone, Debug)]
pub struct SimSigner {
    id: SignerId,
    key: HmacKey,
}

/// Verifies any node's signature by recomputation.
#[derive(Clone, Debug)]
pub struct SimVerifier {
    keys: Arc<Vec<HmacKey>>,
}

impl SignatureScheme for SimScheme {
    type Signer = SimSigner;
    type Verifier = SimVerifier;

    fn generate(seed: u64, n: u32) -> Self {
        SimScheme {
            keys: Arc::new((0..n).map(|i| derive_key(seed, i)).collect()),
        }
    }

    fn signer(&self, id: SignerId) -> SimSigner {
        SimSigner {
            id,
            key: self.keys[id.0 as usize].clone(),
        }
    }

    fn verifier(&self) -> SimVerifier {
        SimVerifier {
            keys: Arc::clone(&self.keys),
        }
    }
}

impl Signer for SimSigner {
    fn id(&self) -> SignerId {
        self.id
    }

    fn sign(&self, data: &[u8]) -> Signature {
        mac(&self.key, self.id, data)
    }
}

impl Verifier for SimVerifier {
    fn verify(&self, signer: SignerId, data: &[u8], sig: &Signature) -> bool {
        match self.keys.get(signer.0 as usize) {
            Some(key) => mac(key, signer, data) == *sig,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_rejections() {
        let scheme = SimScheme::generate(7, 2);
        let v = scheme.verifier();
        let s0 = scheme.signer(SignerId(0));
        let sig = s0.sign(b"data");
        assert!(v.verify(SignerId(0), b"data", &sig));
        assert!(!v.verify(SignerId(0), b"datA", &sig));
        assert!(!v.verify(SignerId(1), b"data", &sig));
        assert!(!v.verify(SignerId(5), b"data", &sig)); // unknown id
    }

    #[test]
    fn different_seeds_give_different_keys() {
        let a = SimScheme::generate(1, 1).signer(SignerId(0)).sign(b"m");
        let b = SimScheme::generate(2, 1).signer(SignerId(0)).sign(b"m");
        assert_ne!(a, b);
    }

    #[test]
    fn any_bit_flip_invalidates() {
        let scheme = SimScheme::generate(9, 1);
        let sig = scheme.signer(SignerId(0)).sign(b"m");
        let v = scheme.verifier();
        for byte in 0..40 {
            let mut bad = sig;
            bad.0[byte] ^= 0x80;
            assert!(!v.verify(SignerId(0), b"m", &bad), "byte {byte}");
        }
    }

    #[test]
    fn signer_reports_its_id() {
        let scheme = SimScheme::generate(1, 3);
        assert_eq!(scheme.signer(SignerId(2)).id(), SignerId(2));
    }

    /// The midstate-based formulation must reproduce the historical
    /// signature bytes exactly — a run's wire traffic (and thus every
    /// seeded result) depends on them.
    #[test]
    fn signatures_match_one_shot_hmac_formulation() {
        let seed: u64 = 7;
        let id = SignerId(3);
        let data = b"the quick brown fox";
        let secret = hmac_sha256(b"byzcast-sim-sig-secret", &{
            let mut buf = [0u8; 12];
            buf[..8].copy_from_slice(&seed.to_le_bytes());
            buf[8..].copy_from_slice(&id.0.to_le_bytes());
            buf
        })
        .0;
        let mut message = Vec::new();
        message.extend_from_slice(&id.0.to_le_bytes());
        message.extend_from_slice(data);
        let d = hmac_sha256(&secret, &message);
        let mut want = [0u8; 40];
        want[..32].copy_from_slice(&d.0);
        want[32..].copy_from_slice(&hmac_sha256(&secret, &d.0).0[..8]);

        let got = SimScheme::generate(seed, 4).signer(id).sign(data);
        assert_eq!(got, Signature(want));
    }
}
