//! A from-scratch implementation of SHA-256 (FIPS 180-4) and HMAC-SHA256
//! (RFC 2104), with no dependencies.
//!
//! Used to hash message bodies for signing, to derive per-node keys, and as
//! the Fiat–Shamir challenge hash in the Schnorr scheme.

/// A 32-byte SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The digest as a hexadecimal string.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The first 8 bytes of the digest as a little-endian integer, handy for
    /// deriving challenge scalars and short identifiers.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sha256:{}…", &self.to_hex()[..8])
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// An incremental SHA-256 hasher.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Resumes hashing from a state that has already absorbed one full
    /// 64-byte block (the HMAC pad-block midstate).
    fn from_midstate(state: [u32; 8]) -> Self {
        Sha256 {
            state,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 64,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let block: [u8; 64] = input[..64].try_into().expect("sliced 64");
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
        self
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buffer_len < 56 {
            56 - self.buffer_len
        } else {
            120 - self.buffer_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update(&pad[..pad_len + 8]);
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunked 4"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// A precomputed HMAC-SHA256 key.
///
/// HMAC spends two of its four compression calls absorbing the fixed
/// `key ⊕ ipad` / `key ⊕ opad` blocks; for a long-lived key those midstates
/// can be computed once and every MAC resumed from them, halving the cost of
/// short-message MACs. `HmacKey::mac` produces byte-identical output to
/// [`hmac_sha256`] with the same key.
#[derive(Clone, Debug)]
pub struct HmacKey {
    inner: [u32; 8],
    outer: [u32; 8],
}

impl HmacKey {
    /// Precomputes the pad midstates for `key` (RFC 2104 key preparation:
    /// keys longer than the 64-byte block are hashed first).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; 64];
        if key.len() > 64 {
            k[..32].copy_from_slice(&sha256(key).0);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let midstate = |block: &[u8; 64]| {
            let mut h = Sha256::new();
            h.compress(block);
            h.state
        };
        HmacKey {
            inner: midstate(&ipad),
            outer: midstate(&opad),
        }
    }

    /// HMAC-SHA256 of the concatenation of `parts` under this key —
    /// equal to `hmac_sha256(key, parts.concat())` without the
    /// concatenation or the pad-block compressions.
    pub fn mac(&self, parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::from_midstate(self.inner);
        for part in parts {
            h.update(part);
        }
        let inner_digest = h.finalize();
        let mut o = Sha256::from_midstate(self.outer);
        o.update(&inner_digest.0);
        o.finalize()
    }
}

/// HMAC-SHA256 (RFC 2104) of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> Digest {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key).0);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad).update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad).update(&inner_digest.0);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST / RFC test vectors.
    #[test]
    fn nist_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_every_split() {
        let data: Vec<u8> = (0..300u16).map(|i| (i % 251) as u8).collect();
        let want = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    // RFC 4231 HMAC-SHA256 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let got = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            got.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let got = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            got.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        let key = [0xaa; 131];
        let got = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            got.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn digest_helpers() {
        let d = sha256(b"abc");
        assert_eq!(d.to_hex().len(), 64);
        assert!(format!("{d:?}").starts_with("sha256:"));
        // prefix_u64 is just the first 8 bytes.
        let expect = u64::from_le_bytes(d.0[..8].try_into().unwrap());
        assert_eq!(d.prefix_u64(), expect);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn hmac_key_matches_one_shot_hmac_exactly() {
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        for key_len in [0usize, 1, 20, 63, 64, 65, 131] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 7 % 256) as u8).collect();
            let precomputed = HmacKey::new(&key);
            for data_len in [0usize, 1, 27, 55, 56, 64, 100, 200] {
                let want = hmac_sha256(&key, &data[..data_len]);
                assert_eq!(
                    precomputed.mac(&[&data[..data_len]]),
                    want,
                    "key {key_len} data {data_len}"
                );
                // Split parts concatenate.
                let (a, b) = data[..data_len].split_at(data_len / 2);
                assert_eq!(precomputed.mac(&[a, b]), want);
            }
        }
    }
}
