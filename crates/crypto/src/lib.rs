//! # byzcast-crypto — signatures and hashing for the broadcast protocol
//!
//! The paper assumes "each device p holds a private key k_p … with which p can
//! digitally sign every message it sends" (DSA in their implementation) and
//! that "each device can obtain the public key of every other device". This
//! crate provides that substrate:
//!
//! * [`sha256()`] — a from-scratch FIPS 180-4 SHA-256, validated against NIST
//!   test vectors, plus HMAC-SHA256.
//! * [`schnorr`] — a real Schnorr signature scheme over a 62-bit prime-order
//!   subgroup. The *algorithm* is the genuine article (commit–challenge–
//!   response, Fiat–Shamir); the *parameters* are toy-sized so millions of
//!   signatures per simulated run stay cheap. **Not secure for real use.**
//! * [`sim_sig`] — a simulation-enforced scheme: signatures are HMACs keyed
//!   by a per-node secret that only the signing node's [`Signer`] holds, so
//!   unforgeability holds *by construction inside the simulation*. This is
//!   the fast default for large experiments.
//! * [`registry`] — the public-key directory the paper assumes.
//!
//! Both schemes implement the [`SignatureScheme`] trait, so protocol code is
//! generic over which one a run uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod registry;
pub mod schnorr;
pub mod sha256;
pub mod sim_sig;

pub use cache::CachingVerifier;
pub use registry::KeyRegistry;
pub use schnorr::{SchnorrScheme, SchnorrSigner, SchnorrVerifier};
pub use sha256::{hmac_sha256, sha256, Digest};
pub use sim_sig::{SimScheme, SimSigner, SimVerifier};

/// A detached signature over a byte string.
///
/// Fixed-size so wire-size accounting is uniform: 40 bytes, the ballpark of a
/// DSA signature (2 × 160-bit values) the paper's implementation used.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; 40]);

impl Signature {
    /// Wire size of a signature in bytes.
    pub const WIRE_SIZE: usize = 40;

    /// The all-zero (obviously invalid) signature, useful for tests and for
    /// Byzantine forgers.
    pub const fn zero() -> Self {
        Signature([0u8; 40])
    }
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sig:{:02x}{:02x}{:02x}{:02x}…",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl Default for Signature {
    fn default() -> Self {
        Signature::zero()
    }
}

/// Identifies the signing node. Mirrors `byzcast_sim::NodeId` without
/// depending on it, so this crate stays free-standing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SignerId(pub u32);

/// Signs byte strings on behalf of one node.
pub trait Signer {
    /// The id this signer signs as.
    fn id(&self) -> SignerId;
    /// Produces a signature over `data`.
    fn sign(&self, data: &[u8]) -> Signature;
}

/// Counters exposed by memoizing verifiers (see [`cache::CachingVerifier`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Verifications answered from the cache.
    pub hits: u64,
    /// Verifications that reached the wrapped verifier.
    pub misses: u64,
    /// Cached verdicts dropped to respect the capacity bound.
    pub evictions: u64,
}

/// Verifies signatures of any node, given the public-key directory.
pub trait Verifier {
    /// Whether `sig` is a valid signature by `signer` over `data`.
    fn verify(&self, signer: SignerId, data: &[u8], sig: &Signature) -> bool;

    /// Hit/miss counters, for verifiers that memoize verdicts. `None` for
    /// plain verifiers (the default).
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
}

/// A complete signature scheme: mints per-node signers and a shared verifier.
///
/// The scheme owns key generation so that a simulation can hand each node its
/// signer while every node shares one verifier (the paper's public-key
/// infrastructure assumption).
pub trait SignatureScheme {
    /// The per-node signer type.
    type Signer: Signer;
    /// The shared verifier type.
    type Verifier: Verifier + Clone;

    /// Generates key material for nodes `0..n` from `seed`.
    fn generate(seed: u64, n: u32) -> Self;
    /// The signer for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    fn signer(&self, id: SignerId) -> Self::Signer;
    /// The shared verifier.
    fn verifier(&self) -> Self::Verifier;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_debug_is_compact_and_nonempty() {
        let s = Signature::zero();
        let d = format!("{s:?}");
        assert!(d.starts_with("sig:"));
        assert!(!d.is_empty());
    }

    fn exercise_scheme<S: SignatureScheme>() {
        let scheme = S::generate(42, 4);
        let s0 = scheme.signer(SignerId(0));
        let s1 = scheme.signer(SignerId(1));
        let v = scheme.verifier();

        let sig = s0.sign(b"hello");
        assert!(v.verify(SignerId(0), b"hello", &sig));
        // Wrong data.
        assert!(!v.verify(SignerId(0), b"hullo", &sig));
        // Wrong claimed signer (impersonation).
        assert!(!v.verify(SignerId(1), b"hello", &sig));
        // A different node's signature over the same data differs.
        let sig1 = s1.sign(b"hello");
        assert_ne!(sig, sig1);
        assert!(v.verify(SignerId(1), b"hello", &sig1));
        // Garbage never verifies.
        assert!(!v.verify(SignerId(0), b"hello", &Signature::zero()));
    }

    #[test]
    fn sim_scheme_contract() {
        exercise_scheme::<SimScheme>();
    }

    #[test]
    fn schnorr_scheme_contract() {
        exercise_scheme::<SchnorrScheme>();
    }
}
