//! Property-based tests for the message store and wire format.

use proptest::prelude::*;

use byzcast_core::message::{DataMsg, GossipMsg, WireMsg};
use byzcast_core::MessageStore;
use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};
use byzcast_sim::{Message, NodeId, SimDuration, SimTime};

fn msg(reg: &KeyRegistry<SimScheme>, origin: u32, seq: u64, len: u32) -> DataMsg {
    DataMsg::sign(&reg.signer(SignerId(origin)), seq, seq, len)
}

fn store_invariants_case(ops: &[(u8, u64, u64)]) -> Result<(), TestCaseError> {
    let hold = SimDuration::from_secs(10);
    let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(5, 4);
    let mut store = MessageStore::new(hold);
    let mut clock = SimTime::ZERO;
    // seq → when it was last accepted as new. Re-acceptance is only
    // legitimate once the seen-window (4 × hold) has fully expired.
    let mut last_new: std::collections::BTreeMap<u64, SimTime> = Default::default();
    for &(op, seq, dt) in ops {
        clock += SimDuration::from_secs(dt);
        match op {
            0 | 1 => {
                let m = msg(&reg, 0, seq, 64);
                let newly = store.insert(clock, m);
                if newly {
                    if let Some(&prev) = last_new.get(&seq) {
                        prop_assert!(
                            clock.saturating_since(prev) > hold.saturating_mul(4),
                            "id {seq} re-accepted inside the dedup window"
                        );
                    }
                    last_new.insert(seq, clock);
                }
                prop_assert!(store.seen(m.id));
            }
            _ => store.purge(clock),
        }
        prop_assert!(store.len() <= store.high_water());
        for id in store.ids() {
            prop_assert!(store.seen(id), "{id:?} held but not seen");
        }
    }
    Ok(())
}

/// The shrunk schedule recorded in `properties.proptest-regressions`:
/// insert seq 26, insert seq 0 at t+20, purge at t+41, re-insert seq 26.
/// The re-insert lands right at the seen-window boundary (41 s vs the
/// 4×10 s window), so it pins the off-by-one behaviour of the dedup map.
#[test]
fn regression_store_reinsert_at_seen_window_boundary() {
    store_invariants_case(&[(0, 26, 0), (0, 0, 20), (2, 0, 21), (0, 26, 0)]).unwrap();
}

proptest! {
    /// Store invariants across arbitrary insert/purge schedules:
    /// * an id is `has` only if `seen`;
    /// * `len` never exceeds `high_water`;
    /// * re-inserting a seen id is never "new".
    #[test]
    fn store_invariants_hold_under_any_schedule(
        ops in proptest::collection::vec((0u8..3, 0u64..30, 0u64..60), 1..80),
    ) {
        store_invariants_case(&ops)?;
    }

    /// Wire sizes: a gossip packet is always smaller than the data messages
    /// it announces (the protocol's core economics), and sizes are additive
    /// in the entry count.
    #[test]
    fn gossip_packets_are_cheaper_than_their_messages(
        lens in proptest::collection::vec(64u32..2048, 1..40),
    ) {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(6, 2);
        let msgs: Vec<DataMsg> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| msg(&reg, 0, i as u64 + 1, len))
            .collect();
        let entries = msgs.iter().map(|m| m.gossip_entry()).collect::<Vec<_>>();
        let packet = WireMsg::Gossip(GossipMsg::of_entries(entries));
        let data_total: usize = msgs.iter().map(|m| WireMsg::Data(*m).wire_size()).sum();
        prop_assert!(packet.wire_size() < data_total);
        // Additivity.
        let one = WireMsg::Gossip(GossipMsg::of_entries(vec![msgs[0].gossip_entry()]));
        prop_assert_eq!(
            packet.wire_size() - 3,           // strip the fixed packet header
            (one.wire_size() - 3) * lens.len()
        );
    }

    /// Signatures are unique per (origin, seq, payload): two distinct
    /// messages never share a signature (collision would forge).
    #[test]
    fn distinct_messages_have_distinct_signatures(
        s1 in 1u64..1000, s2 in 1u64..1000, origin in 0u32..4,
    ) {
        prop_assume!(s1 != s2);
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(7, 4);
        let a = msg(&reg, origin, s1, 64);
        let b = msg(&reg, origin, s2, 64);
        prop_assert_ne!(a.msg_sig, b.msg_sig);
        prop_assert_ne!(a.id_sig, b.id_sig);
    }

    /// The seen-window outlives the body window: within 4× the hold time a
    /// purged message can never be re-accepted.
    #[test]
    fn purged_messages_stay_deduplicated(hold_s in 1u64..20, gap_s in 0u64..60) {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(8, 2);
        let mut store = MessageStore::new(SimDuration::from_secs(hold_s));
        let m = msg(&reg, 0, 1, 64);
        let t0 = SimTime::from_secs(1);
        prop_assert!(store.insert(t0, m));
        let later = t0 + SimDuration::from_secs(gap_s);
        store.purge(later);
        if gap_s <= 4 * hold_s {
            prop_assert!(!store.insert(later, m), "dedup window broken");
        }
        let _ = NodeId(0);
    }
}
