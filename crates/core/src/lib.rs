//! # byzcast-core — the Byzantine-tolerant broadcast protocol
//!
//! The primary contribution of *"Efficient Byzantine Broadcast in Wireless
//! Ad-Hoc Networks"* (Drabkin, Friedman & Segal, DSN 2005): an overlay-based
//! broadcast that "overcomes Byzantine failures by combining digital
//! signatures, gossiping of message signatures, and failure detectors", and
//! "only requires the existence of one correct node in each one-hop
//! neighborhood".
//!
//! * [`message`] — the wire format (DATA / GOSSIP / REQUEST_MSG /
//!   FIND_MISSING_MSG / beacons) with originator signatures.
//! * [`store`] — the message buffer with timeout-based purging (§3.2.2) and
//!   the buffer-bound accounting of §3.5.
//! * [`config`] — protocol timing, including the paper's
//!   `max_timeout = gossip + request + rebroadcast + 3β`.
//! * [`resources`] — the resource-governance envelope (admission control,
//!   verification budgets, store caps, per-origin quotas) that makes the
//!   §3.5 buffer bound hold under Byzantine load.
//! * [`protocol`] — [`ByzcastNode`], the line-by-line implementation of the
//!   pseudo-code of Figures 3–4 plus overlay maintenance (§3.3).
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use byzcast_core::{ByzcastConfig, ByzcastNode};
//! use byzcast_crypto::{KeyRegistry, SignatureScheme, SignerId, SimScheme, Verifier};
//! use byzcast_sim::{NodeId, SimBuilder, SimConfig, SimDuration};
//!
//! let n = 20u32;
//! let keys: KeyRegistry<SimScheme> = KeyRegistry::generate(7, n);
//! let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(keys.verifier());
//! let mut sim = SimBuilder::new(SimConfig::default())
//!     .with_nodes(n as usize, |id| {
//!         Box::new(ByzcastNode::new(
//!             id,
//!             ByzcastConfig::default(),
//!             Box::new(keys.signer(SignerId(id.0))),
//!             Arc::clone(&verifier),
//!         ))
//!     })
//!     .build();
//! sim.schedule_app_broadcast(SimDuration::from_secs(3), NodeId(0), 1, 512);
//! sim.run_for(SimDuration::from_secs(10));
//! let delivered = sim.metrics().deliveries_of(1).count();
//! assert!(delivered > 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod message;
pub mod protocol;
pub mod recovery;
pub mod resources;
pub mod stability;
pub mod store;

pub use config::ByzcastConfig;
pub use message::{
    BeaconMsg, DataMsg, FindMissingMsg, GossipEntry, GossipMsg, MessageId, RequestMsg, WireMsg,
};
pub use protocol::{ByzcastNode, ProtocolCounters};
pub use recovery::{RecoveryConfig, RecoveryStats};
pub use resources::{ResourceConfig, ResourceStats};
pub use stability::{PurgePolicy, StabilityTracker};
pub use store::{MessageStore, StoredMsg};
