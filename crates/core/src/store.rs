//! The received-message buffer with timeout-based purging.
//!
//! "Messages can be purged either after a timeout, or by using a stability
//! detection mechanism. In this work, we have chosen to use timeout based
//! purging due to its simplicity." (paper §3.2.2)
//!
//! §3.5 bounds the buffer a node needs: `max_timeout · δ` messages in a
//! static network and `max_timeout · (n − 1) · δ` in a mobile one (δ = new
//! messages injected per second). The store tracks its own high-water mark so
//! experiment T1 can compare occupancy against that bound.
//!
//! # Caps and eviction
//!
//! That bound assumes correct senders; a Byzantine flooder of unique signed
//! messages fills the buffer linearly until the purge horizon. The store
//! therefore accepts hard count and byte caps ([`MessageStore::with_limits`],
//! `0` = unlimited, the default):
//!
//! * **Bodies** are governed drop-newest: when a cap is hit, the *incoming*
//!   body is rejected (its seen-id is still recorded and the message still
//!   delivered once). Established bodies stay servable for recovery, and a
//!   flood burst — always the newest traffic — pays its own cost.
//! * **Seen-ids** are retained past the body purge horizon so a replayed
//!   old-but-valid message is never delivered twice (every seen-id is a
//!   delivered id). The cap evicts oldest-first: the oldest ids are exactly
//!   the ones an age-based policy would have dropped, so memory pressure
//!   degrades toward age-based retention, never past it for recent traffic.

use std::collections::BTreeMap;

use byzcast_sim::{SimDuration, SimTime};

use crate::message::{DataMsg, MessageId};

/// A stored message with its reception time.
#[derive(Clone, Copy, Debug)]
pub struct StoredMsg {
    /// The message (TTL normalized to 1; TTLs are hop counters, not state).
    pub msg: DataMsg,
    /// When this node first received (or originated) it.
    pub received_at: SimTime,
}

/// The per-node message buffer.
///
/// ```
/// use byzcast_core::{MessageStore, message::DataMsg};
/// use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};
/// use byzcast_sim::{SimDuration, SimTime};
///
/// let keys: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 1);
/// let m = DataMsg::sign(&keys.signer(SignerId(0)), 1, 42, 128);
/// let mut store = MessageStore::new(SimDuration::from_secs(10));
/// assert!(store.insert(SimTime::from_secs(1), m));   // first reception
/// assert!(!store.insert(SimTime::from_secs(2), m));  // duplicate
/// store.purge(SimTime::from_secs(20));
/// assert!(!store.has(m.id));  // body purged…
/// assert!(store.seen(m.id));  // …but still deduplicated
/// ```
#[derive(Debug)]
pub struct MessageStore {
    hold_for: SimDuration,
    messages: BTreeMap<MessageId, StoredMsg>,
    /// Ids of messages already seen (all of them delivered), retained past
    /// body purging so a purged message re-received late — or replayed by an
    /// adversary — is never delivered twice. Bounded by `max_seen` only.
    seen: BTreeMap<MessageId, SimTime>,
    /// Reception-order index over `seen`, for oldest-first cap eviction.
    seen_by_time: BTreeMap<(SimTime, MessageId), ()>,
    /// Cap on buffered bodies (count); `0` = unlimited.
    max_msgs: usize,
    /// Cap on buffered bodies (total wire bytes); `0` = unlimited.
    max_bytes: usize,
    /// Cap on retained seen-ids; `0` = unlimited.
    max_seen: usize,
    /// Total wire bytes of the buffered bodies.
    bytes: usize,
    high_water: usize,
    peak_bytes: usize,
    peak_seen: usize,
    body_rejects: u64,
    seen_evictions: u64,
}

impl MessageStore {
    /// Creates an uncapped store that purges message bodies after
    /// `hold_for`.
    pub fn new(hold_for: SimDuration) -> Self {
        Self::with_limits(hold_for, 0, 0, 0)
    }

    /// Creates a store with hard caps: at most `max_msgs` bodies totalling at
    /// most `max_bytes` wire bytes, and at most `max_seen` retained seen-ids
    /// (`0` = unlimited for each).
    pub fn with_limits(
        hold_for: SimDuration,
        max_msgs: usize,
        max_bytes: usize,
        max_seen: usize,
    ) -> Self {
        MessageStore {
            hold_for,
            messages: BTreeMap::new(),
            seen: BTreeMap::new(),
            seen_by_time: BTreeMap::new(),
            max_msgs,
            max_bytes,
            max_seen,
            bytes: 0,
            high_water: 0,
            peak_bytes: 0,
            peak_seen: 0,
            body_rejects: 0,
            seen_evictions: 0,
        }
    }

    /// Whether the message body is currently buffered.
    pub fn has(&self, id: MessageId) -> bool {
        self.messages.contains_key(&id)
    }

    /// Whether the message has ever been seen (even if since purged).
    pub fn seen(&self, id: MessageId) -> bool {
        self.seen.contains_key(&id)
    }

    /// Inserts a message received at `now`. Returns `true` if it is new
    /// (first reception → deliver/forward), `false` on duplicates. Under a
    /// count/byte cap the body of a new message may be rejected (drop-newest;
    /// check [`MessageStore::has`]) while the id is still recorded as seen.
    pub fn insert(&mut self, now: SimTime, msg: DataMsg) -> bool {
        let id = msg.id;
        if self.seen.contains_key(&id) {
            return false;
        }
        self.record_seen(now, id);
        let size = msg.wire_size();
        let over_count = self.max_msgs != 0 && self.messages.len() >= self.max_msgs;
        let over_bytes = self.max_bytes != 0 && self.bytes + size > self.max_bytes;
        if over_count || over_bytes {
            self.body_rejects += 1;
            return true;
        }
        self.messages.insert(
            id,
            StoredMsg {
                msg: msg.with_ttl(1),
                received_at: now,
            },
        );
        self.bytes += size;
        self.high_water = self.high_water.max(self.messages.len());
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        true
    }

    fn record_seen(&mut self, now: SimTime, id: MessageId) {
        if self.max_seen != 0 && self.seen.len() >= self.max_seen {
            if let Some((&key, ())) = self.seen_by_time.iter().next() {
                self.seen_by_time.remove(&key);
                self.seen.remove(&key.1);
                self.seen_evictions += 1;
            }
        }
        self.seen.insert(id, now);
        self.seen_by_time.insert((now, id), ());
        self.peak_seen = self.peak_seen.max(self.seen.len());
    }

    /// The buffered message body, if present.
    pub fn get(&self, id: MessageId) -> Option<&StoredMsg> {
        self.messages.get(&id)
    }

    /// Removes one body early (stability-based purging); the seen-id stays
    /// so late duplicates are still filtered.
    pub fn remove(&mut self, id: MessageId) {
        if let Some(s) = self.messages.remove(&id) {
            self.bytes -= s.msg.wire_size();
        }
    }

    /// Purges expired bodies. Seen-ids are retained (bounded by the seen-id
    /// cap, oldest evicted first) so late replays stay deduplicated.
    pub fn purge(&mut self, now: SimTime) {
        let hold = self.hold_for;
        let mut freed = 0usize;
        self.messages.retain(|_, s| {
            let keep = now.saturating_since(s.received_at) <= hold;
            if !keep {
                freed += s.msg.wire_size();
            }
            keep
        });
        self.bytes -= freed;
    }

    /// Currently buffered message ids, oldest-id first.
    pub fn ids(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.messages.keys().copied()
    }

    /// Iterates buffered messages.
    pub fn iter(&self) -> impl Iterator<Item = &StoredMsg> {
        self.messages.values()
    }

    /// Number of buffered message bodies.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether no bodies are buffered.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The maximum number of bodies ever buffered simultaneously — compared
    /// against the paper's §3.5 buffer bound in experiment T1.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total wire bytes of the currently buffered bodies.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The maximum buffered body bytes ever held simultaneously.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Number of currently retained seen-ids.
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// The maximum retained seen-ids ever held simultaneously.
    pub fn peak_seen(&self) -> usize {
        self.peak_seen
    }

    /// Bodies rejected by the count/byte caps (drop-newest).
    pub fn body_rejects(&self) -> u64 {
        self.body_rejects
    }

    /// Seen-ids evicted by the seen-id cap (oldest first).
    pub fn seen_evictions(&self) -> u64 {
        self.seen_evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};

    fn msg(seq: u64) -> DataMsg {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 1);
        DataMsg::sign(&reg.signer(SignerId(0)), seq, seq * 10, 100)
    }

    fn store() -> MessageStore {
        MessageStore::new(SimDuration::from_secs(10))
    }

    #[test]
    fn first_insert_is_new_duplicates_are_not() {
        let mut s = store();
        let t = SimTime::from_secs(1);
        let m = msg(1);
        assert!(s.insert(t, m));
        assert!(!s.insert(t, m));
        assert!(s.has(m.id));
        assert!(s.seen(m.id));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn purge_removes_old_bodies_but_remembers_ids() {
        let mut s = store();
        let m = msg(1);
        s.insert(SimTime::from_secs(1), m);
        s.purge(SimTime::from_secs(12));
        assert!(!s.has(m.id), "body survived purge");
        assert!(s.seen(m.id), "seen-id purged too early");
        // Re-receiving a purged message is still a duplicate.
        assert!(!s.insert(SimTime::from_secs(13), m));
    }

    #[test]
    fn delivered_ids_are_retained_indefinitely() {
        // The replay hole: ids used to expire after 4 × hold, letting an
        // adversary re-inject an old valid message as fresh. Retention is now
        // bounded only by the seen-id cap.
        let mut s = store();
        let m = msg(1);
        s.insert(SimTime::from_secs(1), m);
        s.purge(SimTime::from_secs(100)); // far past the old 4 × hold horizon
        assert!(s.seen(m.id), "late replay window reopened");
        assert!(!s.insert(SimTime::from_secs(100), m));
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut s = store();
        for seq in 0..5 {
            s.insert(SimTime::from_secs(1), msg(seq));
        }
        s.purge(SimTime::from_secs(20));
        assert_eq!(s.len(), 0);
        assert_eq!(s.high_water(), 5);
        assert_eq!(s.bytes(), 0);
        assert_eq!(s.peak_bytes(), 5 * msg(0).wire_size());
        assert_eq!(s.peak_seen(), 5);
    }

    #[test]
    fn stored_ttl_is_normalized() {
        let mut s = store();
        let m = msg(1).with_ttl(2);
        s.insert(SimTime::from_secs(1), m);
        assert_eq!(s.get(m.id).unwrap().msg.ttl, 1);
    }

    #[test]
    fn ids_and_iter_agree() {
        let mut s = store();
        for seq in [3u64, 1, 2] {
            s.insert(SimTime::from_secs(1), msg(seq));
        }
        let ids: Vec<_> = s.ids().collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(s.iter().count(), 3);
        // BTreeMap ordering: sorted by id.
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(!s.is_empty());
    }

    #[test]
    fn count_cap_rejects_newest_body_but_still_deduplicates() {
        let mut s = MessageStore::with_limits(SimDuration::from_secs(10), 2, 0, 0);
        let t = SimTime::from_secs(1);
        assert!(s.insert(t, msg(1)));
        assert!(s.insert(t, msg(2)));
        let m3 = msg(3);
        // Still a first reception (deliver), but the body is dropped.
        assert!(s.insert(t, m3));
        assert!(!s.has(m3.id));
        assert!(s.seen(m3.id));
        assert!(!s.insert(t, m3), "rejected body must stay deduplicated");
        assert_eq!(s.len(), 2);
        assert_eq!(s.body_rejects(), 1);
        // Established bodies survive (drop-newest keeps them servable).
        assert!(s.has(msg(1).id) && s.has(msg(2).id));
    }

    #[test]
    fn byte_cap_rejects_and_purge_frees_budget() {
        let one = msg(0).wire_size();
        let mut s = MessageStore::with_limits(SimDuration::from_secs(10), 0, 2 * one, 0);
        let t = SimTime::from_secs(1);
        assert!(s.insert(t, msg(1)));
        assert!(s.insert(t, msg(2)));
        assert!(s.insert(t, msg(3)));
        assert_eq!(s.len(), 2, "byte cap exceeded");
        assert_eq!(s.bytes(), 2 * one);
        // Purging frees the byte budget for new bodies.
        s.purge(SimTime::from_secs(12));
        assert_eq!(s.bytes(), 0);
        assert!(s.insert(SimTime::from_secs(13), msg(4)));
        assert!(s.has(msg(4).id));
    }

    #[test]
    fn seen_cap_evicts_oldest_ids_first() {
        let mut s = MessageStore::with_limits(SimDuration::from_secs(10), 0, 0, 3);
        for seq in 1..=3 {
            s.insert(SimTime::from_secs(seq), msg(seq));
        }
        // A fourth id evicts the oldest (seq 1), not the recent ones.
        s.insert(SimTime::from_secs(4), msg(4));
        assert!(!s.seen(msg(1).id));
        assert!(s.seen(msg(2).id) && s.seen(msg(3).id) && s.seen(msg(4).id));
        assert_eq!(s.seen_len(), 3);
        assert_eq!(s.seen_evictions(), 1);
        assert_eq!(s.peak_seen(), 3);
    }

    #[test]
    fn remove_keeps_byte_accounting_consistent() {
        let mut s = store();
        let m = msg(1);
        s.insert(SimTime::from_secs(1), m);
        assert_eq!(s.bytes(), m.wire_size());
        s.remove(m.id);
        assert_eq!(s.bytes(), 0);
        assert!(s.seen(m.id));
    }
}
