//! The received-message buffer with timeout-based purging.
//!
//! "Messages can be purged either after a timeout, or by using a stability
//! detection mechanism. In this work, we have chosen to use timeout based
//! purging due to its simplicity." (paper §3.2.2)
//!
//! §3.5 bounds the buffer a node needs: `max_timeout · δ` messages in a
//! static network and `max_timeout · (n − 1) · δ` in a mobile one (δ = new
//! messages injected per second). The store tracks its own high-water mark so
//! experiment T1 can compare occupancy against that bound.

use std::collections::BTreeMap;

use byzcast_sim::{SimDuration, SimTime};

use crate::message::{DataMsg, MessageId};

/// A stored message with its reception time.
#[derive(Clone, Copy, Debug)]
pub struct StoredMsg {
    /// The message (TTL normalized to 1; TTLs are hop counters, not state).
    pub msg: DataMsg,
    /// When this node first received (or originated) it.
    pub received_at: SimTime,
}

/// The per-node message buffer.
///
/// ```
/// use byzcast_core::{MessageStore, message::DataMsg};
/// use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};
/// use byzcast_sim::{SimDuration, SimTime};
///
/// let keys: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 1);
/// let m = DataMsg::sign(&keys.signer(SignerId(0)), 1, 42, 128);
/// let mut store = MessageStore::new(SimDuration::from_secs(10));
/// assert!(store.insert(SimTime::from_secs(1), m));   // first reception
/// assert!(!store.insert(SimTime::from_secs(2), m));  // duplicate
/// store.purge(SimTime::from_secs(20));
/// assert!(!store.has(m.id));  // body purged…
/// assert!(store.seen(m.id));  // …but still deduplicated
/// ```
#[derive(Debug)]
pub struct MessageStore {
    hold_for: SimDuration,
    messages: BTreeMap<MessageId, StoredMsg>,
    /// Ids of messages already seen, kept past purging so that a purged
    /// message re-received late is not delivered twice. Bounded separately.
    seen: BTreeMap<MessageId, SimTime>,
    seen_hold_for: SimDuration,
    high_water: usize,
}

impl MessageStore {
    /// Creates a store that purges message bodies after `hold_for` and
    /// seen-ids after `4 × hold_for`.
    pub fn new(hold_for: SimDuration) -> Self {
        MessageStore {
            hold_for,
            messages: BTreeMap::new(),
            seen: BTreeMap::new(),
            seen_hold_for: hold_for.saturating_mul(4),
            high_water: 0,
        }
    }

    /// Whether the message body is currently buffered.
    pub fn has(&self, id: MessageId) -> bool {
        self.messages.contains_key(&id)
    }

    /// Whether the message has ever been seen (even if since purged).
    pub fn seen(&self, id: MessageId) -> bool {
        self.seen.contains_key(&id)
    }

    /// Inserts a message received at `now`. Returns `true` if it is new
    /// (first reception → deliver/forward), `false` on duplicates.
    pub fn insert(&mut self, now: SimTime, msg: DataMsg) -> bool {
        let id = msg.id;
        if self.seen.contains_key(&id) {
            return false;
        }
        self.seen.insert(id, now);
        self.messages.insert(
            id,
            StoredMsg {
                msg: msg.with_ttl(1),
                received_at: now,
            },
        );
        self.high_water = self.high_water.max(self.messages.len());
        true
    }

    /// The buffered message body, if present.
    pub fn get(&self, id: MessageId) -> Option<&StoredMsg> {
        self.messages.get(&id)
    }

    /// Removes one body early (stability-based purging); the seen-id stays
    /// so late duplicates are still filtered.
    pub fn remove(&mut self, id: MessageId) {
        self.messages.remove(&id);
    }

    /// Purges expired bodies and seen-ids.
    pub fn purge(&mut self, now: SimTime) {
        let hold = self.hold_for;
        self.messages
            .retain(|_, s| now.saturating_since(s.received_at) <= hold);
        let seen_hold = self.seen_hold_for;
        self.seen
            .retain(|_, &mut t| now.saturating_since(t) <= seen_hold);
    }

    /// Currently buffered message ids, oldest-id first.
    pub fn ids(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.messages.keys().copied()
    }

    /// Iterates buffered messages.
    pub fn iter(&self) -> impl Iterator<Item = &StoredMsg> {
        self.messages.values()
    }

    /// Number of buffered message bodies.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether no bodies are buffered.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The maximum number of bodies ever buffered simultaneously — compared
    /// against the paper's §3.5 buffer bound in experiment T1.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};

    fn msg(seq: u64) -> DataMsg {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 1);
        DataMsg::sign(&reg.signer(SignerId(0)), seq, seq * 10, 100)
    }

    fn store() -> MessageStore {
        MessageStore::new(SimDuration::from_secs(10))
    }

    #[test]
    fn first_insert_is_new_duplicates_are_not() {
        let mut s = store();
        let t = SimTime::from_secs(1);
        let m = msg(1);
        assert!(s.insert(t, m));
        assert!(!s.insert(t, m));
        assert!(s.has(m.id));
        assert!(s.seen(m.id));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn purge_removes_old_bodies_but_remembers_ids() {
        let mut s = store();
        let m = msg(1);
        s.insert(SimTime::from_secs(1), m);
        s.purge(SimTime::from_secs(12));
        assert!(!s.has(m.id), "body survived purge");
        assert!(s.seen(m.id), "seen-id purged too early");
        // Re-receiving a purged message is still a duplicate.
        assert!(!s.insert(SimTime::from_secs(13), m));
    }

    #[test]
    fn seen_ids_eventually_expire_too() {
        let mut s = store();
        let m = msg(1);
        s.insert(SimTime::from_secs(1), m);
        s.purge(SimTime::from_secs(100)); // > 4 × hold
        assert!(!s.seen(m.id));
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut s = store();
        for seq in 0..5 {
            s.insert(SimTime::from_secs(1), msg(seq));
        }
        s.purge(SimTime::from_secs(20));
        assert_eq!(s.len(), 0);
        assert_eq!(s.high_water(), 5);
    }

    #[test]
    fn stored_ttl_is_normalized() {
        let mut s = store();
        let m = msg(1).with_ttl(2);
        s.insert(SimTime::from_secs(1), m);
        assert_eq!(s.get(m.id).unwrap().msg.ttl, 1);
    }

    #[test]
    fn ids_and_iter_agree() {
        let mut s = store();
        for seq in [3u64, 1, 2] {
            s.insert(SimTime::from_secs(1), msg(seq));
        }
        let ids: Vec<_> = s.ids().collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(s.iter().count(), 3);
        // BTreeMap ordering: sorted by id.
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(!s.is_empty());
    }
}
