//! The Byzantine dissemination protocol node (paper Figures 3–4).
//!
//! A [`ByzcastNode`] runs the paper's three concurrent tasks:
//!
//! 1. **Dissemination** — "messages are disseminated over the overlay by the
//!    overlay nodes": signed data messages are broadcast by the originator
//!    and re-broadcast by nodes whose overlay role is active.
//! 2. **Gossip + recovery** — "signatures about sent messages are gossiped
//!    among all nodes in the system": every node periodically lazycasts the
//!    aggregated signatures of the messages it holds; a node hearing a gossip
//!    for a message it misses requests it from the gossiper and its overlay
//!    neighbours (`REQUEST_MSG`), and overlay nodes that cannot serve a
//!    request search two hops ("in order to bypass a potential neighboring
//!    Byzantine node") via `FIND_MISSING_MSG`.
//! 3. **Overlay maintenance** — periodic signed beacons build each node's
//!    two-hop view; the CDS or MIS+B rule plus the TRUST failure detector
//!    decides the local role.
//!
//! The failure-detector wiring follows the pseudo-code line by line; comments
//! in the handlers cite the corresponding line numbers.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use byzcast_crypto::{CacheStats, Signer, Verifier};
use byzcast_fd::{
    ExpectMode, FailureDetectors, HeaderPattern, MsgKind, SuspicionLog, SuspicionReason, TrustLevel,
};
use byzcast_overlay::{NeighborTable, OverlayProtocol, OverlayRole, TrustView};
use byzcast_sim::{AppPayload, Context, NodeId, Protocol, SimDuration, SimTime, TimerKey};

use crate::config::ByzcastConfig;
use crate::message::{
    BeaconMsg, DataMsg, FindMissingMsg, GossipEntry, GossipMsg, MessageId, RequestMsg, WireMsg,
};
use crate::recovery::RecoveryStats;
use crate::resources::{Governor, ResourceStats};
use crate::stability::{PurgePolicy, StabilityTracker};
use crate::store::MessageStore;

/// Timer keys used by the protocol.
pub mod timers {
    use byzcast_sim::TimerKey;
    /// Gossip lazycast tick (beacons piggyback on it).
    pub const GOSSIP: TimerKey = TimerKey(1);
    /// Failure-detector deadline resolution tick.
    pub const FD: TimerKey = TimerKey(3);
    /// Store purge tick.
    pub const PURGE: TimerKey = TimerKey(4);
    /// Batched request flush.
    pub const REQUEST_FLUSH: TimerKey = TimerKey(5);
    /// Delayed recovery-response flush (`rebroadcast_timeout`).
    pub const RESPONSE_FLUSH: TimerKey = TimerKey(6);
}

/// Book-keeping for a message we know exists (from a gossip) but miss.
#[derive(Clone, Debug)]
struct MissingState {
    entry: GossipEntry,
    /// Gossipers who advertised the message (most recent last, capped).
    heard_from: Vec<NodeId>,
    first_heard: SimTime,
    requests_sent: u32,
    last_request: SimTime,
    /// When the next batched request should go out, if armed.
    request_due: Option<SimTime>,
}

/// Protocol-level counters exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolCounters {
    /// Application messages this node originated.
    pub data_originated: u64,
    /// Data messages this node re-broadcast (overlay forwarding + TTL-2).
    pub data_forwards: u64,
    /// Gossip packets sent.
    pub gossip_packets: u64,
    /// Gossip entries sent (≥ packets when aggregating).
    pub gossip_entries: u64,
    /// `REQUEST_MSG`s sent.
    pub requests_sent: u64,
    /// `FIND_MISSING_MSG`s sent (originated, not forwarded).
    pub finds_sent: u64,
    /// Recovery responses served (data re-sent on request/find).
    pub recoveries_served: u64,
    /// Messages this node obtained through the recovery path.
    pub recovered_via_request: u64,
    /// Messages or beacons rejected for bad signatures.
    pub bad_signatures_seen: u64,
    /// Beacons sent.
    pub beacons_sent: u64,
    /// Signature verifications answered by this node's verification cache.
    /// Zero while the node runs (filled from [`ByzcastNode::sig_cache_stats`]
    /// when the harness totals counters).
    pub sig_cache_hits: u64,
    /// Signature verifications that ran the real verifier (see
    /// `sig_cache_hits`).
    pub sig_cache_misses: u64,
}

impl ProtocolCounters {
    /// Adds `other` field-wise — used to total counters across nodes.
    pub fn merge(&mut self, other: &ProtocolCounters) {
        self.data_originated += other.data_originated;
        self.data_forwards += other.data_forwards;
        self.gossip_packets += other.gossip_packets;
        self.gossip_entries += other.gossip_entries;
        self.requests_sent += other.requests_sent;
        self.finds_sent += other.finds_sent;
        self.recoveries_served += other.recoveries_served;
        self.recovered_via_request += other.recovered_via_request;
        self.bad_signatures_seen += other.bad_signatures_seen;
        self.beacons_sent += other.beacons_sent;
        self.sig_cache_hits += other.sig_cache_hits;
        self.sig_cache_misses += other.sig_cache_misses;
    }
}

/// Adapts the TRUST failure detector to the overlay's [`TrustView`] at a
/// fixed instant.
struct TrustAt<'a> {
    trust: &'a byzcast_fd::TrustDetector,
    now: SimTime,
}

impl TrustView for TrustAt<'_> {
    fn level(&self, node: NodeId) -> TrustLevel {
        self.trust.level(node, self.now)
    }
}

/// A node running the Byzantine broadcast protocol.
pub struct ByzcastNode {
    id: NodeId,
    config: ByzcastConfig,
    signer: Box<dyn Signer + Send>,
    verifier: Arc<dyn Verifier + Send + Sync>,
    fds: FailureDetectors,
    table: NeighborTable,
    overlay_protocol: Box<dyn OverlayProtocol + Send>,
    role: OverlayRole,
    /// Wu–Li marked flag advertised alongside the role.
    marked: bool,
    store: MessageStore,
    next_seq: u64,
    /// Ids (all present in the store) whose gossip entries we lazycast,
    /// with the number of advertisement rounds each has left.
    active_gossip: BTreeMap<MessageId, u32>,
    gossip_cursor: usize,
    missing: BTreeMap<MessageId, MissingState>,
    counters: ProtocolCounters,
    /// History of this node's own TRUST suspicions (for experiment R6).
    sus_log: SuspicionLog,
    prev_untrusted: BTreeSet<NodeId>,
    /// When the last beacon was piggybacked (`None` = one is due now).
    last_beacon: Option<SimTime>,
    /// Recovery responses scheduled after `rebroadcast_timeout` jitter,
    /// cancelled if another node's rebroadcast is overheard first (response
    /// implosion suppression: one answer instead of one per overlay
    /// neighbour).
    pending_responses: BTreeMap<MessageId, PendingResponse>,
    /// `FIND_MISSING` searches re-flooded recently: each message id is
    /// re-flooded at most once per window, or a single search sweeping a
    /// dense region explodes quadratically.
    finds_forwarded: BTreeMap<MessageId, SimTime>,
    /// When each message id was last served with a recovery response: a
    /// holder answers a given id at most once per window, bounding response
    /// implosion even when collisions hide other holders' answers.
    served_recently: BTreeMap<MessageId, SimTime>,
    /// Which neighbours have been observed holding each buffered message
    /// (drives stability-based purging when enabled).
    stability: StabilityTracker,
    /// Reused preimage buffer for beacon verification (the most frequent
    /// signature check).
    beacon_scratch: Vec<u8>,
    /// Admission control and verification budgets (resource governance).
    governor: Governor,
    /// Escalated-recovery and overlay-repair accounting (only reported when
    /// the `ByzcastConfig::recovery` envelope is enabled).
    recovery_stats: RecoveryStats,
    /// Peak `active_gossip` size (resource-stats high-water mark).
    peak_active_gossip: usize,
    /// Peak `missing` size (resource-stats high-water mark).
    peak_missing: usize,
}

/// A scheduled recovery response.
#[derive(Clone, Copy, Debug)]
struct PendingResponse {
    due: SimTime,
    ttl: u8,
}

impl ByzcastNode {
    /// Creates a node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `signer` does not sign as
    /// `id`.
    pub fn new(
        id: NodeId,
        config: ByzcastConfig,
        signer: Box<dyn Signer + Send>,
        verifier: Arc<dyn Verifier + Send + Sync>,
    ) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid byzcast config: {e}");
        }
        assert_eq!(signer.id().0, id.0, "signer must sign as the node's own id");
        let mut fds = FailureDetectors::new(config.mute, config.verbose, config.trust);
        // VERBOSE spacing rules, "invoked at initialization time" (paper
        // §2.2): consecutive gossips or beacons from one node arriving
        // closer together than 60% of the period are a verbose fault. MAC
        // backoff jitter is sub-millisecond, so compliant senders sit far
        // from the rule; a node transmitting at double rate trips it on
        // every arrival.
        let spacing = |period: SimDuration| SimDuration::from_micros(period.as_micros() * 3 / 5);
        fds.verbose
            .set_min_spacing(MsgKind::Gossip, spacing(config.gossip_period));
        fds.verbose
            .set_min_spacing(MsgKind::Beacon, spacing(config.beacon_period));
        // Neighbour entries expire after three missed beacons.
        let table = NeighborTable::new(config.beacon_period.saturating_mul(3));
        let overlay_protocol = config.overlay.build();
        let store = MessageStore::with_limits(
            config.purge_after,
            config.resources.max_store_msgs,
            config.resources.max_store_bytes,
            config.resources.max_seen_ids,
        );
        let governor = Governor::new(config.resources);
        ByzcastNode {
            id,
            config,
            signer,
            verifier,
            fds,
            table,
            overlay_protocol,
            role: OverlayRole::Passive,
            marked: false,
            store,
            next_seq: 0,
            active_gossip: BTreeMap::new(),
            gossip_cursor: 0,
            missing: BTreeMap::new(),
            counters: ProtocolCounters::default(),
            sus_log: SuspicionLog::new(),
            prev_untrusted: BTreeSet::new(),
            last_beacon: None,
            pending_responses: BTreeMap::new(),
            finds_forwarded: BTreeMap::new(),
            served_recently: BTreeMap::new(),
            stability: StabilityTracker::new(),
            beacon_scratch: Vec::new(),
            governor,
            recovery_stats: RecoveryStats::default(),
            peak_active_gossip: 0,
            peak_missing: 0,
        }
    }

    // ------------------------------------------------------------------
    // Inspection API (tests, harness, experiments)
    // ------------------------------------------------------------------

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configuration in force.
    pub fn config(&self) -> &ByzcastConfig {
        &self.config
    }

    /// Current overlay role.
    pub fn role(&self) -> OverlayRole {
        self.role
    }

    /// Whether this node currently considers itself an overlay node.
    pub fn is_overlay(&self) -> bool {
        self.role.is_active()
    }

    /// Protocol counters.
    pub fn counters(&self) -> &ProtocolCounters {
        &self.counters
    }

    /// Hit/miss counters of this node's signature-verification cache, if its
    /// verifier memoizes (see `ByzcastConfig::sig_cache_capacity`).
    pub fn sig_cache_stats(&self) -> Option<CacheStats> {
        self.verifier.cache_stats()
    }

    /// The message buffer.
    pub fn store(&self) -> &MessageStore {
        &self.store
    }

    /// Resource-governance statistics: admission drops, evictions, quota
    /// suspicions, and high-water marks against the configured envelope.
    pub fn resource_stats(&self) -> ResourceStats {
        let mut s = *self.governor.stats();
        s.store_rejects = self.store.body_rejects();
        s.seen_evictions = self.store.seen_evictions();
        s.peak_store_msgs = self.store.high_water() as u64;
        s.peak_store_bytes = self.store.peak_bytes() as u64;
        s.peak_seen_ids = self.store.peak_seen() as u64;
        s.peak_active_gossip = self.peak_active_gossip as u64;
        s.peak_missing = self.peak_missing as u64;
        s
    }

    /// Recovery-escalation statistics: widened retries, escalated searches,
    /// escalation high-water, and liveness-driven overlay repairs.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery_stats
    }

    /// The neighbour table.
    pub fn table(&self) -> &NeighborTable {
        &self.table
    }

    /// The failure detectors.
    pub fn fds(&self) -> &FailureDetectors {
        &self.fds
    }

    /// Number of known-missing messages awaiting recovery.
    pub fn missing_count(&self) -> usize {
        self.missing.len()
    }

    /// This node's suspicion history (open and closed episodes).
    pub fn suspicion_log(&self) -> &SuspicionLog {
        &self.sus_log
    }

    /// The trust level this node assigns `other` at `now`.
    pub fn trust_level(&self, other: NodeId, now: SimTime) -> TrustLevel {
        self.fds.level(other, now)
    }

    /// Replaces the overlay maintenance rule.
    ///
    /// Used by tests and by Byzantine wrappers — e.g. a mute adversary that
    /// always *claims* to be a dominator so correct neighbours defer to it,
    /// which is exactly the attack the MUTE failure detector must defeat.
    pub fn set_overlay_protocol(&mut self, protocol: Box<dyn OverlayProtocol + Send>) {
        self.overlay_protocol = protocol;
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    /// `OL(1, p)`: the trusted neighbours currently advertising an active
    /// overlay role.
    fn overlay_neighbors(&self, now: SimTime) -> Vec<NodeId> {
        self.table
            .iter()
            .filter(|(id, info)| {
                info.role.is_active() && self.fds.trust.level(*id, now) == TrustLevel::Trusted
            })
            .map(|(id, _)| id)
            .collect()
    }

    fn neighbor_is_overlay(&self, node: NodeId) -> bool {
        self.table.info(node).is_some_and(|i| i.role.is_active())
    }

    /// Total request rounds allowed per missing message: the plain retry cap
    /// normally, or unicast rounds + widened rounds when the recovery
    /// envelope escalates.
    fn request_cap(&self) -> u32 {
        let rec = &self.config.recovery;
        if rec.escalation_enabled() {
            rec.escalate_after.saturating_add(rec.max_escalations)
        } else {
            self.config.max_requests_per_msg
        }
    }

    fn suspect(&mut self, now: SimTime, node: NodeId, reason: SuspicionReason) {
        if matches!(reason, SuspicionReason::BadSignature) {
            self.counters.bad_signatures_seen += 1;
        }
        self.fds.trust.suspect(now, node, reason);
    }

    /// Records one resource-governance violation by `from`; sustained
    /// violations convert into VERBOSE indictments (via the configured
    /// `quota_violation_threshold`), so a flooder is eventually suspected
    /// and shed from the overlay, not just throttled.
    fn note_quota_violation(&mut self, now: SimTime, from: NodeId) {
        if self.fds.verbose.report_quota_violation(now, from) {
            self.governor.stats_mut().quota_suspicions += 1;
        }
    }

    /// Charges one signature verification against `from`'s budget *before*
    /// the crypto runs. On `false` the caller must drop the item unverified
    /// — and unsuspected, since nothing was authenticated.
    fn may_verify(&mut self, now: SimTime, from: NodeId) -> bool {
        if self.governor.admit_verification(now, from) {
            true
        } else {
            self.note_quota_violation(now, from);
            false
        }
    }

    /// Whether an `active_gossip` entry for `id` may be created on behalf of
    /// `from`. Per-origin quotas bound how much advertisement bookkeeping a
    /// single (possibly Byzantine) originator can occupy; a node's own
    /// messages are exempt (origination is application-driven).
    fn gossip_quota_allows(&mut self, now: SimTime, from: NodeId, id: MessageId) -> bool {
        let quota = self.config.resources.max_gossip_per_origin;
        if quota == 0 || id.origin == self.id || self.active_gossip.contains_key(&id) {
            return true;
        }
        let in_use = self
            .active_gossip
            .range(MessageId::new(id.origin, 0)..=MessageId::new(id.origin, u64::MAX))
            .count();
        if in_use < quota {
            true
        } else {
            self.governor.stats_mut().quota_drops += 1;
            self.note_quota_violation(now, from);
            false
        }
    }

    // ------------------------------------------------------------------
    // Dissemination task (Figure 3, lines 1–25)
    // ------------------------------------------------------------------

    fn handle_data(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, m: &DataMsg) {
        let now = ctx.now();
        // Feed the MUTE detector on *every* reception, duplicates included:
        // the overlay copy satisfying an earlier expectation typically
        // arrives after the copy that triggered it.
        self.fds.mute.observe(&m.header(), from);
        // Whoever transmitted the message evidently holds it (and so does
        // its originator) — stability-tracking input.
        self.stability.observe_holder(m.id, from);
        self.stability.observe_holder(m.id, m.id.origin);
        // Another node rebroadcast this message: cancel our own scheduled
        // recovery response for it (implosion suppression).
        self.pending_responses.remove(&m.id);

        // Line 25: duplicates are ignored.
        if self.store.seen(m.id) {
            return;
        }
        // Budget the two signature checks below against `from` before any
        // crypto runs, so ill-signed garbage cannot burn unbounded CPU.
        if !self.may_verify(now, from) || !self.may_verify(now, from) {
            return;
        }
        // Lines 6 / 22–24: verify both originator signatures; on mismatch
        // "m is ignored and the process that sent it is suspected".
        if !m.verify(self.verifier.as_ref()) || !m.gossip_entry().verify(self.verifier.as_ref()) {
            self.suspect(now, from, SuspicionReason::BadSignature);
            return;
        }

        // Line 7: accept — forward to the application.
        self.store.insert(now, *m);
        ctx.deliver(m.id.origin, m.payload_id);
        // Obtaining the message discharges every pending expectation for it
        // (e.g. the request-path expectation on the targeted gossiper, whom
        // another holder may have answered for).
        self.fds.mute.satisfy(&m.header());
        if let Some(ms) = self.missing.remove(&m.id) {
            if ms.requests_sent > 0 {
                self.counters.recovered_via_request += 1;
            }
        }
        // Advertise only what we can serve: a body rejected by the store
        // caps is not gossiped (we could not answer the requests the gossip
        // would invite), and per-origin quotas bound a flooder's share of
        // the advertisement bookkeeping.
        if self.store.has(m.id) && self.gossip_quota_allows(now, from, m.id) {
            self.active_gossip
                .insert(m.id, self.config.gossip_advertise_rounds);
            self.peak_active_gossip = self.peak_active_gossip.max(self.active_gossip.len());
        }

        // Lines 8–11: received the correct message, but not from an overlay
        // node and not from the originator → the overlay neighbours were
        // supposed to forward it; tell MUTE to expect that.
        let from_is_originator = from == m.id.origin;
        if !from_is_originator && !self.neighbor_is_overlay(from) {
            let ol = self.overlay_neighbors(now);
            self.fds.mute.expect(
                now,
                HeaderPattern::data_msg(m.id.origin, m.id.seq),
                &ol,
                ExpectMode::One,
            );
        }

        // Lines 12–18: overlay nodes forward; non-overlay nodes forward only
        // TTL-2 recovery responses (one extra hop).
        if self.role.is_active() || m.ttl == 2 {
            ctx.send(WireMsg::Data(m.with_ttl(1)));
            self.counters.data_forwards += 1;
        }
    }

    // ------------------------------------------------------------------
    // Gossip + recovery task (Figure 3 lines 26–41, Figure 4)
    // ------------------------------------------------------------------

    fn handle_gossip_entry(
        &mut self,
        ctx: &mut Context<'_, WireMsg>,
        from: NodeId,
        e: &GossipEntry,
    ) {
        let now = ctx.now();
        // Entries for messages we already hold need no re-verification: we
        // never use their contents (our own stored copy backs any echo), so
        // the signature check — the hot cost at scale — runs only for
        // genuinely new announcements.
        if self.store.has(e.id) {
            // A gossiper holds what it advertises ("p only gossips about
            // messages it has already received").
            self.stability.observe_holder(e.id, from);
            // Lines 34–37: we have the message — echo its gossip once.
            // Entries whose window closed stay in the map with 0 rounds, so
            // the echo cannot be re-armed forever by mutual re-advertising.
            if self.gossip_quota_allows(now, from, e.id) {
                self.active_gossip.entry(e.id).or_insert(1);
                self.peak_active_gossip = self.peak_active_gossip.max(self.active_gossip.len());
            }
            return;
        }
        if self.store.seen(e.id) {
            return; // had it, purged: stale gossip
        }
        // Budget the signature check before the crypto runs.
        if !self.may_verify(now, from) {
            return;
        }
        // Lines 26 / 39–41: authenticate the gossiped signature.
        if !e.verify(self.verifier.as_ref()) {
            self.suspect(now, from, SuspicionReason::BadSignature);
            return;
        }
        // Per-origin quota on the request bookkeeping: a flooder gossiping
        // unique ids cannot grow `missing` beyond its envelope share.
        let quota = self.config.resources.max_missing_per_origin;
        if quota != 0 && !self.missing.contains_key(&e.id) {
            let tracked = self
                .missing
                .range(MessageId::new(e.id.origin, 0)..=MessageId::new(e.id.origin, u64::MAX))
                .count();
            if tracked >= quota {
                self.governor.stats_mut().quota_drops += 1;
                self.note_quota_violation(now, from);
                return;
            }
        }
        // Lines 27–33: the message is missing.
        let ms = self.missing.entry(e.id).or_insert_with(|| MissingState {
            entry: *e,
            heard_from: Vec::new(),
            first_heard: now,
            requests_sent: 0,
            last_request: SimTime::ZERO,
            request_due: None,
        });
        if !ms.heard_from.contains(&from) {
            if ms.heard_from.len() >= 4 {
                ms.heard_from.remove(0);
            }
            ms.heard_from.push(from);
        }
        self.peak_missing = self.peak_missing.max(self.missing.len());
        // Line 28's expectation — "since q gossiped about m, it should have
        // m and supply it when needed" — splits by who gossiped. The
        // *originator* owes us the broadcast itself (no request is sent to
        // it), so it is put on notice immediately; any other gossiper only
        // owes an *answer to a request*, so its expectation is registered
        // when the request actually goes out (see `flush_requests` — our
        // request may be suppressed by a neighbour's duplicate, and then the
        // gossiper owes nothing).
        if from == e.id.origin {
            self.fds.mute.expect(
                now,
                HeaderPattern::data_msg(e.id.origin, e.id.seq),
                &[from],
                ExpectMode::One,
            );
        }
        // Lines 29–32: a non-originator gossiper is requested after
        // `request_timeout`. When the gossiper *is* the originator the paper
        // sends no request at all ("the originator is expected to broadcast
        // the message itself") — but if the originator's one broadcast was
        // lost at every receiver, that rule deadlocks the message. We keep
        // the spirit (give the originator its MUTE expect window to
        // retransmit) and then fall back to a delayed request, so the
        // recovery chain of Theorem 3.2 also starts at the first hop.
        let originator_grace = if from == e.id.origin {
            self.config.mute.expect_timeout
        } else {
            SimDuration::ZERO
        };
        // Per-node jitter (up to half a request timeout) desynchronizes the
        // neighbours that all heard the same gossip at the same instant.
        let jitter = SimDuration::from_micros(
            ctx.rng()
                .gen_range_u64(self.config.request_timeout.as_micros().max(2) / 2),
        );
        let cap = self.request_cap();
        let ms = self.missing.get_mut(&e.id).expect("just inserted");
        let may_request = ms.requests_sent < cap
            && now.saturating_since(ms.last_request) >= self.config.request_retry_spacing;
        if may_request && ms.request_due.is_none() {
            let due = now + self.config.request_timeout + originator_grace + jitter;
            ms.request_due = Some(due);
            ctx.set_timer_at(due, timers::REQUEST_FLUSH);
        }
    }

    fn flush_requests(&mut self, ctx: &mut Context<'_, WireMsg>) {
        let now = ctx.now();
        let mut next_due: Option<SimTime> = None;
        let due_ids: Vec<MessageId> = self
            .missing
            .iter()
            .filter(|(_, ms)| ms.request_due.is_some_and(|d| d <= now))
            .map(|(&id, _)| id)
            .collect();
        let rec = self.config.recovery;
        let cap = self.request_cap();
        for id in due_ids {
            let Some(ms) = self.missing.get_mut(&id) else {
                continue;
            };
            ms.request_due = None;
            if self.store.has(id) {
                continue; // recovered meanwhile
            }
            let Some(&target) = ms.heard_from.last() else {
                continue;
            };
            let entry = ms.entry;
            let round = ms.requests_sent;
            ms.requests_sent += 1;
            ms.last_request = now;
            if rec.escalation_enabled() && round >= rec.escalate_after {
                // Escalated round: the remembered gossiper has gone
                // `escalate_after` rounds without answering — on a thin
                // chain it may be the crashed node itself, so stop trusting
                // it. Widen the request to a rotating window of trusted
                // neighbours (non-dominators included) and flood a
                // TTL-bumped search so recovery no longer depends on a
                // healthy two-hop overlay path.
                let level = round - rec.escalate_after; // 0-based widened round
                if ms.requests_sent < cap {
                    ms.request_due = Some(now + rec.backoff(level));
                }
                let peers: Vec<NodeId> = self
                    .table
                    .iter()
                    .filter(|&(id, _)| self.fds.trust.level(id, now) != TrustLevel::Untrusted)
                    .map(|(id, _)| id)
                    .collect();
                let widened: Vec<NodeId> = if peers.is_empty() {
                    Vec::new()
                } else {
                    let start = (level as usize).wrapping_mul(rec.widen_fanout) % peers.len();
                    (0..rec.widen_fanout.min(peers.len()))
                        .map(|i| peers[(start + i) % peers.len()])
                        .collect()
                };
                for peer in widened {
                    ctx.send(WireMsg::Request(RequestMsg {
                        entry,
                        target: peer,
                    }));
                    self.counters.requests_sent += 1;
                    self.recovery_stats.requests_widened += 1;
                    // Deliberately no MUTE expectation: unlike the
                    // remembered gossiper, a widened target never
                    // advertised the message and may legitimately lack it.
                }
                ctx.send(WireMsg::FindMissing(FindMissingMsg {
                    entry,
                    target: self.id,
                    ttl: rec.find_ttl.max(2),
                }));
                self.counters.finds_sent += 1;
                self.recovery_stats.finds_escalated += 1;
                self.recovery_stats.peak_escalation = self
                    .recovery_stats
                    .peak_escalation
                    .max(u64::from(level) + 1);
            } else {
                // Self-re-arm while retries remain, so recovery does not
                // depend on hearing the gossip again (advertisement windows
                // close).
                if ms.requests_sent < cap {
                    ms.request_due = Some(now + self.config.request_retry_spacing);
                }
                // Line 32: ask the gossiper and the overlay neighbours (one
                // broadcast reaches both; handlers filter by role/target).
                ctx.send(WireMsg::Request(RequestMsg { entry, target }));
                self.counters.requests_sent += 1;
                self.recovery_stats.requests_originated += 1;
                // Line 28: the targeted gossiper advertised the message, so
                // it must supply it now; anyone's rebroadcast satisfies this.
                self.fds.mute.expect(
                    now,
                    HeaderPattern::data_msg(entry.id.origin, entry.id.seq),
                    &[target],
                    ExpectMode::One,
                );
            }
        }
        for ms in self.missing.values() {
            if let Some(d) = ms.request_due {
                next_due = Some(next_due.map_or(d, |nd: SimTime| nd.min(d)));
            }
        }
        if let Some(d) = next_due {
            ctx.set_timer_at(d, timers::REQUEST_FLUSH);
        }
    }

    /// Schedules a recovery rebroadcast of `id` after a random fraction of
    /// `rebroadcast_timeout` — "the time between getting a request message
    /// and sending the message that fits" — so that of the many overlay
    /// neighbours holding the message, typically one answers and the rest
    /// suppress on overhearing it.
    fn schedule_response(&mut self, ctx: &mut Context<'_, WireMsg>, id: MessageId, ttl: u8) {
        let now = ctx.now();
        // Serve each id at most once per serve window: collisions can hide
        // other holders' answers from us, and without this cap a burst of
        // requests turns every holder into a responder. The window is
        // deliberately shorter than `request_retry_spacing` (validated in
        // config) — the two used to share one knob, and because this window
        // starts at the jittered *serve* time, a retry spaced exactly one
        // retry window after the original request landed inside it and was
        // silently refused.
        if let Some(&last) = self.served_recently.get(&id) {
            if now.saturating_since(last) < self.config.response_serve_window {
                return;
            }
        }
        let span = self.config.rebroadcast_timeout.as_micros().max(1);
        let jitter = SimDuration::from_micros(ctx.rng().gen_range_u64(span));
        let due = now + jitter;
        let entry = self
            .pending_responses
            .entry(id)
            .or_insert(PendingResponse { due, ttl });
        entry.due = entry.due.min(due);
        entry.ttl = entry.ttl.max(ttl);
        let at = entry.due;
        ctx.set_timer_at(at, timers::RESPONSE_FLUSH);
    }

    /// Sends the due recovery responses (unless meanwhile cancelled).
    fn flush_responses(&mut self, ctx: &mut Context<'_, WireMsg>) {
        let now = ctx.now();
        let due_ids: Vec<MessageId> = self
            .pending_responses
            .iter()
            .filter(|(_, p)| p.due <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due_ids {
            let Some(p) = self.pending_responses.remove(&id) else {
                continue;
            };
            if let Some(stored) = self.store.get(id) {
                let msg = stored.msg;
                ctx.send(WireMsg::Data(msg.with_ttl(p.ttl)));
                self.counters.recoveries_served += 1;
                self.served_recently.insert(id, now);
            }
        }
        if let Some(next) = self.pending_responses.values().map(|p| p.due).min() {
            ctx.set_timer_at(next, timers::RESPONSE_FLUSH);
        }
    }

    /// Figure 4 lines 42–61: `REQUEST_MSG` handling. `from` is the requester
    /// (`p_j`); `r.target` the gossiper (`p_k`).
    fn handle_request(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, r: &RequestMsg) {
        let now = ctx.now();
        if !self.may_verify(now, from) {
            return;
        }
        if !r.entry.verify(self.verifier.as_ref()) {
            self.suspect(now, from, SuspicionReason::BadSignature);
            return;
        }
        self.fds
            .verbose
            .observe_arrival(now, from, MsgKind::RequestMsg);
        // Someone else is already requesting this message: *defer* our own
        // pending request past a retry window — the broadcast answer will
        // reach us too, and if it does not (lost to a hidden-terminal
        // collision) our deferred request still fires. Cancelling outright
        // deadlocks when all requesters suppress each other.
        if let Some(ms) = self.missing.get_mut(&r.entry.id) {
            if ms.request_due.is_some() {
                let deferred = now + self.config.request_retry_spacing;
                ms.request_due = Some(deferred);
                ms.last_request = now;
                ctx.set_timer_at(deferred, timers::REQUEST_FLUSH);
            }
        }
        // Line 43: only overlay nodes and the targeted gossiper respond.
        if !(self.role.is_active() || self.id == r.target) {
            return;
        }
        if self.store.has(r.entry.id) {
            // Lines 45–47: an overlay node already broadcast this message;
            // a request for it counts against the requester.
            if self.role.is_active() {
                self.fds.verbose.indict(now, from);
            }
            // Line 48: rebroadcast the data (after the rebroadcast_timeout
            // jitter, suppressed if another holder answers first).
            self.schedule_response(ctx, r.entry.id, 1);
        } else if from != r.entry.id.origin {
            // Lines 50–53: we don't have it either; overlay nodes search two
            // hops to bypass a potential Byzantine neighbour.
            if self.role.is_active() {
                ctx.send(WireMsg::FindMissing(FindMissingMsg {
                    entry: r.entry,
                    target: r.target,
                    ttl: 2,
                }));
                self.counters.finds_sent += 1;
            }
        } else {
            // Lines 54–56: the originator requesting its own message is
            // nonsensical — indict.
            self.fds.verbose.indict(now, from);
        }
    }

    /// Figure 4 lines 62–81: `FIND_MISSING_MSG` handling.
    fn handle_find(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, f: &FindMissingMsg) {
        let now = ctx.now();
        if !self.may_verify(now, from) {
            return;
        }
        if !f.entry.verify(self.verifier.as_ref()) {
            self.suspect(now, from, SuspicionReason::BadSignature);
            return;
        }
        self.fds
            .verbose
            .observe_arrival(now, from, MsgKind::FindMissingMsg);
        // An escalated search (TTL above the paper's fixed 2) only exists
        // when the recovery envelope is on; its searcher is known to be
        // stranded, so holders of *any* role answer and nobody indicts it.
        let escalated = self.config.recovery.escalation_enabled() && f.ttl > 2;
        if self.store.has(f.entry.id) {
            // Lines 68–77.
            if self.role.is_active() || self.id == f.target || escalated {
                if self.table.contains(from) {
                    // Line 69–73: the searcher is our direct neighbour — an
                    // overlay node must already have broadcast to it, so the
                    // search counts against it; answer locally.
                    if self.role.is_active() && !escalated {
                        self.fds.verbose.indict(now, from);
                    }
                    self.schedule_response(ctx, f.entry.id, 1);
                } else {
                    // Line 75: two hops away — answer with TTL 2 so the data
                    // can travel back across the intermediate hop.
                    self.schedule_response(ctx, f.entry.id, 2);
                }
            }
        } else if f.ttl == 2 || (escalated && f.ttl <= self.config.recovery.find_ttl.max(2)) {
            // Lines 63–66: keep flooding one more hop — but re-flood each
            // searched id at most once per window, or one search sweeping a
            // dense region is amplified by every node that lacks the
            // message. Escalated searches decrement hop by hop the same way,
            // so a TTL-bumped flood travels `find_ttl` hops in total.
            let fresh = match self.finds_forwarded.get(&f.entry.id) {
                Some(&last) => now.saturating_since(last) >= self.config.request_retry_spacing,
                None => true,
            };
            if fresh {
                self.finds_forwarded.insert(f.entry.id, now);
                ctx.send(WireMsg::FindMissing(FindMissingMsg {
                    ttl: f.ttl - 1,
                    ..*f
                }));
            }
        }
    }

    // ------------------------------------------------------------------
    // Overlay maintenance (paper §3.3)
    // ------------------------------------------------------------------

    fn handle_beacon(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, b: &BeaconMsg) {
        let now = ctx.now();
        if b.sender != from {
            // The radio identified the true transmitter; a beacon claiming a
            // different sender is an impersonation attempt.
            self.suspect(now, from, SuspicionReason::ProtocolViolation);
            return;
        }
        if !self.may_verify(now, from) {
            return;
        }
        if !b.verify_with(self.verifier.as_ref(), &mut self.beacon_scratch) {
            self.suspect(now, from, SuspicionReason::BadSignature);
            return;
        }
        self.fds.verbose.observe_arrival(now, from, MsgKind::Beacon);
        self.table.record_beacon_marked(
            now,
            from,
            b.role,
            b.marked,
            b.neighbors.iter().copied(),
            b.dominator_neighbors.iter().copied(),
        );
        // Second-hand suspicion reports ("a node that suspects one of its
        // neighbors should notify its other neighbors about this suspicion").
        for &s in &b.suspects {
            if s != self.id {
                self.fds.trust.report_from_neighbor(now, from, s);
            }
        }
        let _ = ctx;
    }

    /// Runs the periodic overlay-maintenance computation step (paper §3.3)
    /// and builds the signed beacon to advertise.
    fn make_beacon(&mut self, now: SimTime) -> BeaconMsg {
        self.table.prune(now);
        self.fds.tick(now);
        // Local computation step: decide our role from the current view.
        let trust_view = TrustAt {
            trust: &self.fds.trust,
            now,
        };
        let decision = self
            .overlay_protocol
            .decide(self.id, &self.table, &trust_view);
        self.role = decision.role;
        self.marked = decision.marked;
        let neighbors = self.table.neighbor_ids();
        let dominator_neighbors: Vec<NodeId> = self
            .table
            .iter()
            .filter(|(_, i)| i.role == OverlayRole::Dominator)
            .map(|(id, _)| id)
            .collect();
        let mut suspects = self.fds.trust.untrusted(now);
        suspects.truncate(16);
        self.counters.beacons_sent += 1;
        BeaconMsg::sign_marked(
            self.signer.as_ref(),
            self.role,
            self.marked,
            neighbors,
            dominator_neighbors,
            suspects,
        )
    }

    /// The periodic lazycast: aggregated gossip entries, with the overlay
    /// beacon piggybacked whenever one is due ("most overlay maintenance
    /// messages can be piggybacked on gossip messages").
    fn gossip_tick(&mut self, ctx: &mut Context<'_, WireMsg>) {
        let now = ctx.now();
        let beacon_due = self
            .last_beacon
            .is_none_or(|t| now.saturating_since(t) >= self.config.beacon_period);
        let beacon = if beacon_due {
            self.last_beacon = Some(now);
            Some(self.make_beacon(now))
        } else {
            None
        };
        // Only gossip messages we still hold (purging stops their gossip)
        // and whose advertisement window is open. Exhausted entries stay as
        // 0-round tombstones until the store purges them, so a neighbour's
        // late echo cannot restart our advertising. The store only shrinks
        // in `purge_tick`, which prunes `active_gossip` in the same breath,
        // so `active_gossip ⊆ store` already holds here.
        debug_assert!(self.active_gossip.keys().all(|id| self.store.has(*id)));
        let ids: Vec<MessageId> = self
            .active_gossip
            .iter()
            .filter(|(_, &rounds)| rounds > 0)
            .map(|(&id, _)| id)
            .collect();
        let entries: Vec<GossipEntry> = if ids.is_empty() {
            Vec::new()
        } else {
            let cap = self.config.max_gossip_entries;
            let take = ids.len().min(cap);
            // Round-robin over the active set so large sets all get airtime;
            // each advertisement uses up one of the entry's rounds.
            let entries = (0..take)
                .map(|k| {
                    let id = ids[(self.gossip_cursor + k) % ids.len()];
                    if let Some(rounds) = self.active_gossip.get_mut(&id) {
                        *rounds -= 1;
                    }
                    self.store
                        .get(id)
                        .expect("active_gossip ⊆ store")
                        .msg
                        .gossip_entry()
                })
                .collect();
            self.gossip_cursor = (self.gossip_cursor + take) % ids.len().max(1);
            entries
        };
        if self.config.aggregate_gossip {
            if !entries.is_empty() || beacon.is_some() {
                self.counters.gossip_packets += 1;
                self.counters.gossip_entries += entries.len() as u64;
                ctx.send(WireMsg::Gossip(GossipMsg { entries, beacon }));
            }
        } else {
            // Ablation (experiment R8): one packet per entry; the beacon
            // travels in its own packet too.
            for e in entries {
                self.counters.gossip_packets += 1;
                self.counters.gossip_entries += 1;
                ctx.send(WireMsg::Gossip(GossipMsg::of_entries(vec![e])));
            }
            if let Some(b) = beacon {
                ctx.send(WireMsg::Gossip(GossipMsg {
                    entries: vec![],
                    beacon: Some(b),
                }));
            }
        }
        ctx.set_timer_after(self.config.gossip_period, timers::GOSSIP);
    }

    fn fd_tick(&mut self, ctx: &mut Context<'_, WireMsg>) {
        let now = ctx.now();
        self.fds.tick(now);
        // Log TRUST transitions for the interval-FD analyses.
        let current: BTreeSet<NodeId> = self.fds.trust.untrusted(now).into_iter().collect();
        let fresh: Vec<NodeId> = current.difference(&self.prev_untrusted).copied().collect();
        for &n in &fresh {
            self.sus_log.begin(now, self.id, n);
        }
        for &n in self.prev_untrusted.difference(&current) {
            self.sus_log.end(now, self.id, n);
        }
        self.prev_untrusted = current;
        if self.config.recovery.reelect_on_indictment {
            // Liveness-driven overlay repair: a freshly indicted neighbour —
            // or one whose beacons expired — otherwise lingers in the table
            // until the next beacon round, absorbing unicast REQUESTs and
            // holding its (possibly dominator) role in our view. Purge it
            // and re-run the overlay decision now, at fd_tick granularity,
            // so a crashed dominator's role is re-assigned within one
            // beacon period.
            let before = self.table.len();
            for &n in &fresh {
                self.table.remove(n);
            }
            self.table.prune(now);
            let purged = (before - self.table.len()) as u64;
            self.recovery_stats.neighbors_purged += purged;
            if purged > 0 || !fresh.is_empty() {
                self.reelect(now);
            }
        }
        ctx.set_timer_after(self.config.fd_tick, timers::FD);
    }

    /// Re-runs the overlay decision outside the beacon cycle. On a role or
    /// marked change the next gossip tick advertises it immediately (the
    /// beacon is forced due), so neighbours learn of the repair within one
    /// gossip period instead of one beacon period.
    fn reelect(&mut self, now: SimTime) {
        let trust_view = TrustAt {
            trust: &self.fds.trust,
            now,
        };
        let decision = self
            .overlay_protocol
            .decide(self.id, &self.table, &trust_view);
        if decision.role != self.role || decision.marked != self.marked {
            self.role = decision.role;
            self.marked = decision.marked;
            self.last_beacon = None;
            self.recovery_stats.reelections += 1;
        }
    }

    fn purge_tick(&mut self, ctx: &mut Context<'_, WireMsg>) {
        let now = ctx.now();
        self.store.purge(now);
        if self.config.purge_policy == PurgePolicy::Stability {
            // Early-purge every body all current trusted neighbours are
            // observed to hold: none of them can need it from us any more.
            let neighbors: Vec<NodeId> = self
                .table
                .iter()
                .filter(|(id, _)| self.fds.trust.level(*id, now) == TrustLevel::Trusted)
                .map(|(id, _)| id)
                .collect();
            let stable: Vec<MessageId> = self
                .store
                .ids()
                .filter(|&id| self.stability.is_stable(id, neighbors.iter()))
                .collect();
            for id in stable {
                self.store.remove(id);
                self.stability.forget(id);
            }
        }
        self.stability.retain(|id| self.store.has(id));
        self.active_gossip.retain(|id, _| self.store.has(*id));
        let horizon = self.config.purge_after;
        self.missing
            .retain(|_, ms| now.saturating_since(ms.first_heard) <= horizon);
        self.finds_forwarded
            .retain(|_, &mut t| now.saturating_since(t) <= horizon);
        self.served_recently
            .retain(|_, &mut t| now.saturating_since(t) <= horizon);
        ctx.set_timer_after(self.purge_tick_period(), timers::PURGE);
    }

    /// Stability purging re-checks often (stability arrives with gossip);
    /// timeout purging only needs to run once per hold period.
    fn purge_tick_period(&self) -> SimDuration {
        match self.config.purge_policy {
            PurgePolicy::Timeout => self.config.purge_after,
            PurgePolicy::Stability => self.config.gossip_period.saturating_mul(2),
        }
    }
}

impl Protocol for ByzcastNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        // Stagger the periodic tasks with per-node random phase so the whole
        // network does not beacon or gossip in lockstep.
        let gossip_phase = SimDuration::from_micros(
            ctx.rng()
                .gen_range_u64(self.config.gossip_period.as_micros().max(1)),
        );
        ctx.set_timer_after(gossip_phase, timers::GOSSIP);
        ctx.set_timer_after(self.config.fd_tick, timers::FD);
        ctx.set_timer_after(self.purge_tick_period(), timers::PURGE);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, msg: &WireMsg) {
        // Admission precedes everything — dispatch, FD observation, crypto:
        // a neighbour past its frame budget cannot spend any further cycles
        // of this node.
        let now = ctx.now();
        if !self.governor.admit_frame(now, from) {
            self.note_quota_violation(now, from);
            return;
        }
        match msg {
            WireMsg::Data(m) => self.handle_data(ctx, from, m),
            WireMsg::Gossip(g) => {
                let now = ctx.now();
                self.fds.verbose.observe_arrival(now, from, MsgKind::Gossip);
                if let Some(b) = &g.beacon {
                    self.handle_beacon(ctx, from, b);
                }
                for e in &g.entries {
                    self.handle_gossip_entry(ctx, from, e);
                }
            }
            WireMsg::Request(r) => self.handle_request(ctx, from, r),
            WireMsg::FindMissing(f) => self.handle_find(ctx, from, f),
            WireMsg::Beacon(b) => self.handle_beacon(ctx, from, b),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        match timer {
            timers::GOSSIP => self.gossip_tick(ctx),
            timers::FD => self.fd_tick(ctx),
            timers::PURGE => self.purge_tick(ctx),
            timers::REQUEST_FLUSH => self.flush_requests(ctx),
            timers::RESPONSE_FLUSH => self.flush_responses(ctx),
            // Unknown keys can reach a wrapped node when an adversary
            // wrapper shares the timer space; ignore them.
            _ => {}
        }
    }

    fn on_app_broadcast(&mut self, ctx: &mut Context<'_, WireMsg>, payload: AppPayload) {
        let now = ctx.now();
        self.next_seq += 1;
        // Line 1: message := msg_id ‖ node_id ‖ msg ‖ sig(…).
        let m = DataMsg::sign(
            self.signer.as_ref(),
            self.next_seq,
            payload.id,
            payload.size_bytes as u32,
        );
        self.store.insert(now, m);
        ctx.deliver(self.id, payload.id);
        self.counters.data_originated += 1;
        // Line 3: broadcast(message, DATA, ttl=1).
        ctx.send(WireMsg::Data(m));
        // Lines 2 & 4: start lazycasting the gossip. The *first* gossip is
        // piggybacked on the data message itself (footnote 5: "It is
        // possible to piggyback the first gossip of a message by the sender
        // … on the actual message") — `DataMsg` carries `id_sig`. Under a
        // store cap our own body may have been rejected; then it is not
        // advertised either (we could not serve the requests).
        if self.store.has(m.id) {
            self.active_gossip
                .insert(m.id, self.config.gossip_advertise_rounds);
            self.peak_active_gossip = self.peak_active_gossip.max(self.active_gossip.len());
        }
    }
}

impl std::fmt::Debug for ByzcastNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByzcastNode")
            .field("id", &self.id)
            .field("role", &self.role)
            .field("store_len", &self.store.len())
            .field("missing", &self.missing.len())
            .field("counters", &self.counters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};
    use byzcast_sim::node::Action;
    use byzcast_sim::SimRng;

    /// A hand-driven single node with captured actions.
    struct Harness {
        node: ByzcastNode,
        rng: SimRng,
        #[allow(dead_code)]
        verifier: Arc<dyn Verifier + Send + Sync>,
        reg: KeyRegistry<SimScheme>,
    }

    impl Harness {
        fn new(id: u32, config: ByzcastConfig) -> Self {
            let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(42, 16);
            let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
            let node = ByzcastNode::new(
                NodeId(id),
                config,
                Box::new(reg.signer(SignerId(id))),
                Arc::clone(&verifier),
            );
            Harness {
                node,
                rng: SimRng::new(1),
                verifier,
                reg,
            }
        }

        fn data_from(&self, origin: u32, seq: u64) -> DataMsg {
            DataMsg::sign(&self.reg.signer(SignerId(origin)), seq, seq * 100, 256)
        }

        fn drive<R>(
            &mut self,
            now: SimTime,
            f: impl FnOnce(&mut ByzcastNode, &mut Context<'_, WireMsg>) -> R,
        ) -> (R, Vec<Action<WireMsg>>) {
            let mut actions = Vec::new();
            let r = {
                let mut ctx = Context::new(self.node.id(), now, &mut self.rng, &mut actions);
                f(&mut self.node, &mut ctx)
            };
            (r, actions)
        }

        fn beacon_from(&self, sender: u32, role: OverlayRole) -> BeaconMsg {
            BeaconMsg::sign(
                &self.reg.signer(SignerId(sender)),
                role,
                vec![],
                vec![],
                vec![],
            )
        }
    }

    fn sends(actions: &[Action<WireMsg>]) -> Vec<&WireMsg> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(m) => Some(m),
                _ => None,
            })
            .collect()
    }

    fn delivers(actions: &[Action<WireMsg>]) -> Vec<(NodeId, u64)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { origin, payload_id } => Some((*origin, *payload_id)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn app_broadcast_sends_data_and_gossip_and_delivers_locally() {
        let mut h = Harness::new(0, ByzcastConfig::default());
        let (_, actions) = h.drive(SimTime::from_secs(1), |n, ctx| {
            n.on_app_broadcast(
                ctx,
                AppPayload {
                    id: 7,
                    size_bytes: 256,
                },
            )
        });
        let s = sends(&actions);
        // The first gossip is piggybacked on the data message itself
        // (footnote 5), so exactly one frame goes out.
        assert_eq!(s.len(), 1);
        match s[0] {
            WireMsg::Data(d) => assert!(d.gossip_entry().verify(h.verifier.as_ref())),
            other => panic!("expected data, got {other:?}"),
        }
        assert_eq!(delivers(&actions), vec![(NodeId(0), 7)]);
        assert_eq!(h.node.counters().data_originated, 1);
    }

    #[test]
    fn first_reception_delivers_and_overlay_forwards() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        h.node.role = OverlayRole::Dominator;
        let m = h.data_from(0, 1);
        let (_, actions) = h.drive(SimTime::from_secs(1), |n, ctx| {
            n.on_packet(ctx, NodeId(0), &WireMsg::Data(m));
        });
        assert_eq!(delivers(&actions), vec![(NodeId(0), 100)]);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0], WireMsg::Data(d) if d.id == m.id && d.ttl == 1));
        assert_eq!(h.node.counters().data_forwards, 1);
    }

    #[test]
    fn non_overlay_node_does_not_forward_ttl1() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let m = h.data_from(0, 1);
        let (_, actions) = h.drive(SimTime::from_secs(1), |n, ctx| {
            n.on_packet(ctx, NodeId(0), &WireMsg::Data(m));
        });
        assert_eq!(delivers(&actions).len(), 1);
        assert!(sends(&actions).is_empty());
    }

    #[test]
    fn non_overlay_node_forwards_ttl2_once() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let m = h.data_from(0, 1).with_ttl(2);
        let (_, actions) = h.drive(SimTime::from_secs(1), |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::Data(m));
        });
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0], WireMsg::Data(d) if d.ttl == 1));
    }

    #[test]
    fn duplicate_reception_is_ignored() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        h.node.role = OverlayRole::Dominator;
        let m = h.data_from(0, 1);
        let t = SimTime::from_secs(1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        let (_, actions) = h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(2), &WireMsg::Data(m)));
        assert!(actions.is_empty());
    }

    #[test]
    fn tampered_data_suspects_the_sender_not_the_originator() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let mut m = h.data_from(0, 1);
        m.payload_id = 999; // tampered in flight by node 3
        let t = SimTime::from_secs(1);
        let (_, actions) = h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(3), &WireMsg::Data(m));
        });
        assert!(actions.is_empty());
        assert_eq!(h.node.trust_level(NodeId(3), t), TrustLevel::Untrusted);
        assert_eq!(h.node.trust_level(NodeId(0), t), TrustLevel::Trusted);
        assert_eq!(h.node.counters().bad_signatures_seen, 1);
    }

    #[test]
    fn reception_from_non_overlay_registers_mute_expectation() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        // Node 9 is a trusted overlay neighbour.
        let b = h.beacon_from(9, OverlayRole::Dominator);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(9), &WireMsg::Beacon(b)));
        // Receive data from non-overlay node 5 (not the originator 0).
        let m = h.data_from(0, 1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(5), &WireMsg::Data(m)));
        assert_eq!(h.node.fds.mute.pending_expectations(), 1);
        // The overlay neighbour forwarding satisfies it.
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(9), &WireMsg::Data(m)));
        let late = t + SimDuration::from_secs(10);
        let (_, _) = h.drive(late, |n, ctx| n.fd_tick(ctx));
        assert_eq!(h.node.trust_level(NodeId(9), late), TrustLevel::Trusted);
    }

    #[test]
    fn silent_overlay_neighbor_gets_suspected_after_repeated_misses() {
        // Short expect timeout so the misses land within one decay interval
        // (the default expect timeout is sized for congested networks).
        let mut config = ByzcastConfig::default();
        config.mute.expect_timeout = SimDuration::from_millis(500);
        let mut h = Harness::new(1, config);
        let threshold = h.node.config().mute.threshold;
        let timeout = h.node.config().mute.expect_timeout;
        let mut t = SimTime::from_secs(1);
        let b = h.beacon_from(9, OverlayRole::Dominator);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(9), &WireMsg::Beacon(b)));
        // Node 9 never forwards any of the messages node 5 relays to us:
        // each missed expectation counts, and at the threshold it is
        // suspected (single misses — a collision — would not suffice).
        for seq in 1..=u64::from(threshold) {
            let m = h.data_from(0, seq);
            h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(5), &WireMsg::Data(m)));
            t = t + timeout + SimDuration::from_millis(200);
            h.drive(t, |n, ctx| n.fd_tick(ctx));
        }
        assert_eq!(h.node.trust_level(NodeId(9), t), TrustLevel::Untrusted);
        // And the suspicion was logged as an episode.
        assert_eq!(h.node.suspicion_log().episodes().len(), 1);
    }

    #[test]
    fn gossip_for_missing_message_triggers_request() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        let g = GossipMsg::of_entries(vec![m.gossip_entry()]);
        let (_, actions) = h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::Gossip(g));
        });
        assert!(
            sends(&actions).is_empty(),
            "request must wait request_timeout"
        );
        assert_eq!(h.node.missing_count(), 1);
        // Flush after the request timeout plus the worst-case jitter.
        let t2 = t + h.node.config().request_timeout + h.node.config().request_timeout;
        let (_, actions) = h.drive(t2, |n, ctx| n.flush_requests(ctx));
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        match s[0] {
            WireMsg::Request(r) => {
                assert_eq!(r.target, NodeId(5));
                assert_eq!(r.entry.id, m.id);
            }
            other => panic!("expected request, got {other:?}"),
        }
        assert_eq!(h.node.counters().requests_sent, 1);
    }

    #[test]
    fn gossip_from_originator_gets_a_grace_window_before_the_request() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        let g = GossipMsg::of_entries(vec![m.gossip_entry()]);
        h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(0), &WireMsg::Gossip(g)); // from the originator
        });
        assert_eq!(h.node.fds.mute.pending_expectations(), 1);
        // Inside the grace window (the originator's MUTE expect timeout):
        // no request yet — line 29's "the originator is expected to
        // broadcast the message itself".
        let t2 = t + h.node.config().request_timeout + SimDuration::from_millis(1);
        let (_, actions) = h.drive(t2, |n, ctx| n.flush_requests(ctx));
        assert!(sends(&actions).is_empty());
        // After the grace window (plus worst-case jitter) the fallback
        // request fires, so a message whose only broadcast was lost
        // everywhere is still recoverable.
        let t3 = t2 + h.node.config().mute.expect_timeout + h.node.config().request_timeout;
        let (_, actions) = h.drive(t3, |n, ctx| n.flush_requests(ctx));
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0], WireMsg::Request(r) if r.target == NodeId(0)));
    }

    #[test]
    fn forged_gossip_entry_suspects_gossiper() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        let mut e = m.gossip_entry();
        e.id.seq = 99; // forged announcement
        let (_, actions) = h.drive(t, |n, ctx| {
            n.on_packet(
                ctx,
                NodeId(5),
                &WireMsg::Gossip(GossipMsg::of_entries(vec![e])),
            );
        });
        assert!(actions.is_empty());
        assert_eq!(h.node.trust_level(NodeId(5), t), TrustLevel::Untrusted);
        assert_eq!(h.node.missing_count(), 0);
    }

    #[test]
    fn overlay_node_serves_request_and_indicts_requester() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        h.node.role = OverlayRole::Dominator;
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        let req = RequestMsg {
            entry: m.gossip_entry(),
            target: NodeId(7),
        };
        let (_, actions) = h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::Request(req));
        });
        // The response waits out the rebroadcast jitter first.
        assert!(sends(&actions).is_empty());
        let later = t + h.node.config().rebroadcast_timeout;
        let (_, actions) = h.drive(later, |n, ctx| n.flush_responses(ctx));
        let served: Vec<_> = sends(&actions)
            .into_iter()
            .filter(|m| matches!(m, WireMsg::Data(_)))
            .collect();
        assert_eq!(served.len(), 1);
        assert_eq!(h.node.counters().recoveries_served, 1);
        assert_eq!(h.node.fds.verbose.indict_count(NodeId(5)), 1);
    }

    #[test]
    fn overheard_rebroadcast_suppresses_scheduled_response() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        h.node.role = OverlayRole::Dominator;
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        let req = RequestMsg {
            entry: m.gossip_entry(),
            target: NodeId(7),
        };
        h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::Request(req))
        });
        // Another holder answers first: we overhear the duplicate.
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(8), &WireMsg::Data(m)));
        let later = t + h.node.config().rebroadcast_timeout;
        let (_, actions) = h.drive(later, |n, ctx| n.flush_responses(ctx));
        assert!(sends(&actions).is_empty(), "suppression failed");
        assert_eq!(h.node.counters().recoveries_served, 0);
    }

    #[test]
    fn anothers_request_defers_ours_but_does_not_cancel_it() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        // We hear a gossip and queue a request.
        let g = GossipMsg::of_entries(vec![m.gossip_entry()]);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(5), &WireMsg::Gossip(g)));
        // Node 6 requests the same message before our flush fires: our own
        // request is pushed past a retry window (its answer will reach us).
        let req = RequestMsg {
            entry: m.gossip_entry(),
            target: NodeId(5),
        };
        h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(6), &WireMsg::Request(req))
        });
        let later = t + h.node.config().request_timeout;
        let (_, actions) = h.drive(later, |n, ctx| n.flush_requests(ctx));
        assert!(
            sends(&actions).is_empty(),
            "request fired inside the deferral window"
        );
        assert_eq!(h.node.counters().requests_sent, 0);
        // …but if node 6's request went unanswered (e.g. the response was
        // lost to a hidden terminal), our deferred request still fires —
        // cancelling outright would deadlock the message.
        let after_defer = t + h.node.config().request_retry_spacing + SimDuration::from_millis(1);
        let (_, actions) = h.drive(after_defer, |n, ctx| n.flush_requests(ctx));
        let s = sends(&actions);
        assert_eq!(s.len(), 1, "deferred request never fired");
        assert!(matches!(s[0], WireMsg::Request(_)));
    }

    #[test]
    fn targeted_non_overlay_gossiper_serves_without_indicting() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        let req = RequestMsg {
            entry: m.gossip_entry(),
            target: NodeId(1),
        };
        h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::Request(req));
        });
        let later = t + h.node.config().rebroadcast_timeout;
        let (_, actions) = h.drive(later, |n, ctx| n.flush_responses(ctx));
        assert_eq!(sends(&actions).len(), 1);
        assert_eq!(h.node.fds.verbose.indict_count(NodeId(5)), 0);
    }

    #[test]
    fn untargeted_non_overlay_node_ignores_request() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        let req = RequestMsg {
            entry: m.gossip_entry(),
            target: NodeId(9),
        };
        let (_, actions) = h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::Request(req));
        });
        assert!(sends(&actions).is_empty());
    }

    #[test]
    fn overlay_node_without_message_searches_two_hops() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        h.node.role = OverlayRole::Dominator;
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        let req = RequestMsg {
            entry: m.gossip_entry(),
            target: NodeId(7),
        };
        let (_, actions) = h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::Request(req));
        });
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        match s[0] {
            WireMsg::FindMissing(f) => {
                assert_eq!(f.ttl, 2);
                assert_eq!(f.target, NodeId(7));
            }
            other => panic!("expected find, got {other:?}"),
        }
        assert_eq!(h.node.counters().finds_sent, 1);
    }

    #[test]
    fn originator_requesting_own_message_is_indicted() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        h.node.role = OverlayRole::Dominator;
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        let req = RequestMsg {
            entry: m.gossip_entry(),
            target: NodeId(7),
        };
        let (_, actions) = h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(0), &WireMsg::Request(req)); // origin requests own msg
        });
        assert!(sends(&actions).is_empty());
        assert_eq!(h.node.fds.verbose.indict_count(NodeId(0)), 1);
    }

    #[test]
    fn find_missing_floods_one_extra_hop_when_lacking_the_message() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        let f = FindMissingMsg {
            entry: m.gossip_entry(),
            target: NodeId(7),
            ttl: 2,
        };
        let (_, actions) = h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::FindMissing(f));
        });
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0], WireMsg::FindMissing(ff) if ff.ttl == 1));
        // TTL 1 searches are not re-flooded.
        let f1 = FindMissingMsg { ttl: 1, ..f };
        let (_, actions) = h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(6), &WireMsg::FindMissing(f1));
        });
        assert!(sends(&actions).is_empty());
    }

    #[test]
    fn find_missing_answered_with_ttl2_for_distant_searcher() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        h.node.role = OverlayRole::Dominator;
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        // Searcher 5 is NOT in our neighbour table → answer with TTL 2.
        let f = FindMissingMsg {
            entry: m.gossip_entry(),
            target: NodeId(7),
            ttl: 1,
        };
        h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::FindMissing(f));
        });
        let later = t + h.node.config().rebroadcast_timeout;
        let (_, actions) = h.drive(later, |n, ctx| n.flush_responses(ctx));
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0], WireMsg::Data(d) if d.ttl == 2));
    }

    #[test]
    fn find_missing_from_direct_neighbor_is_indicted_and_served_ttl1() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        h.node.role = OverlayRole::Dominator;
        let t = SimTime::from_secs(1);
        let b = h.beacon_from(5, OverlayRole::Passive);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(5), &WireMsg::Beacon(b)));
        let m = h.data_from(0, 1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        let f = FindMissingMsg {
            entry: m.gossip_entry(),
            target: NodeId(7),
            ttl: 1,
        };
        h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::FindMissing(f));
        });
        let later = t + h.node.config().rebroadcast_timeout;
        let (_, actions) = h.drive(later, |n, ctx| n.flush_responses(ctx));
        let s = sends(&actions);
        assert!(matches!(s[0], WireMsg::Data(d) if d.ttl == 1));
        assert_eq!(h.node.fds.verbose.indict_count(NodeId(5)), 1);
    }

    #[test]
    fn beacon_updates_table_and_second_hand_suspicions() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        let b = BeaconMsg::sign(
            &h.reg.signer(SignerId(2)),
            OverlayRole::Dominator,
            vec![NodeId(1), NodeId(3)],
            vec![NodeId(3)],
            vec![NodeId(4)],
        );
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(2), &WireMsg::Beacon(b)));
        assert!(h.node.table().contains(NodeId(2)));
        assert_eq!(h.node.trust_level(NodeId(4), t), TrustLevel::Unknown);
        assert_eq!(h.node.trust_level(NodeId(2), t), TrustLevel::Trusted);
    }

    #[test]
    fn beacon_with_wrong_sender_is_impersonation() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        let b = h.beacon_from(2, OverlayRole::Dominator);
        // Node 6 replays node 2's beacon as its own transmission.
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(6), &WireMsg::Beacon(b)));
        assert!(!h.node.table().contains(NodeId(2)));
        assert_eq!(h.node.trust_level(NodeId(6), t), TrustLevel::Untrusted);
    }

    #[test]
    fn tampered_beacon_is_rejected() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        let mut b = h.beacon_from(2, OverlayRole::Dominator);
        b.suspects = vec![NodeId(3)]; // framing attempt after signing
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(2), &WireMsg::Beacon(b)));
        assert!(!h.node.table().contains(NodeId(2)));
        assert_eq!(h.node.trust_level(NodeId(3), t), TrustLevel::Trusted);
        assert_eq!(h.node.trust_level(NodeId(2), t), TrustLevel::Untrusted);
    }

    #[test]
    fn gossip_tick_aggregates_entries() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        h.node.role = OverlayRole::Dominator;
        let t = SimTime::from_secs(1);
        for seq in 1..=5 {
            let m = h.data_from(0, seq);
            h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        }
        let (_, actions) = h.drive(t, |n, ctx| n.gossip_tick(ctx));
        let s = sends(&actions);
        assert_eq!(s.len(), 1, "aggregation should produce one packet");
        match s[0] {
            WireMsg::Gossip(g) => assert_eq!(g.entries.len(), 5),
            other => panic!("expected gossip, got {other:?}"),
        }
    }

    #[test]
    fn gossip_tick_without_aggregation_sends_per_entry() {
        let config = ByzcastConfig {
            aggregate_gossip: false,
            ..ByzcastConfig::default()
        };
        let mut h = Harness::new(1, config);
        let t = SimTime::from_secs(1);
        for seq in 1..=3 {
            let m = h.data_from(0, seq);
            h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        }
        let (_, actions) = h.drive(t, |n, ctx| n.gossip_tick(ctx));
        // Three per-entry packets plus the (first-due) beacon-only packet.
        let s = sends(&actions);
        assert_eq!(s.len(), 4);
        let entry_packets = s
            .iter()
            .filter(|m| matches!(m, WireMsg::Gossip(g) if g.entries.len() == 1))
            .count();
        assert_eq!(entry_packets, 3);
    }

    #[test]
    fn recovered_message_cancels_pending_request() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        let g = GossipMsg::of_entries(vec![m.gossip_entry()]);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(5), &WireMsg::Gossip(g)));
        // Message arrives before the flush.
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(9), &WireMsg::Data(m)));
        assert_eq!(h.node.missing_count(), 0);
        let t2 = t + SimDuration::from_secs(1);
        let (_, actions) = h.drive(t2, |n, ctx| n.flush_requests(ctx));
        assert!(sends(&actions).is_empty());
    }

    #[test]
    fn request_retries_are_capped() {
        let config = ByzcastConfig {
            max_requests_per_msg: 2,
            ..ByzcastConfig::default()
        };
        let mut h = Harness::new(1, config);
        let m = h.data_from(0, 1);
        let mut now = SimTime::from_secs(1);
        for round in 0..4 {
            let g = GossipMsg::of_entries(vec![m.gossip_entry()]);
            h.drive(now, |n, ctx| {
                n.on_packet(ctx, NodeId(5), &WireMsg::Gossip(g))
            });
            now += SimDuration::from_secs(1);
            h.drive(now, |n, ctx| n.flush_requests(ctx));
            let _ = round;
        }
        assert_eq!(h.node.counters().requests_sent, 2);
    }

    #[test]
    fn escalation_widens_requests_and_bumps_find_ttl() {
        use crate::recovery::RecoveryConfig;
        let config = ByzcastConfig {
            recovery: RecoveryConfig::standard(), // escalate_after 2, fanout 3, ttl 3
            ..ByzcastConfig::default()
        };
        let mut h = Harness::new(1, config);
        // Three trusted neighbours the widened rounds can target.
        let t0 = SimTime::from_millis(500);
        for n in [9u32, 10, 11] {
            let b = h.beacon_from(n, OverlayRole::Passive);
            h.drive(t0, |node, ctx| {
                node.on_packet(ctx, NodeId(n), &WireMsg::Beacon(b))
            });
        }
        // Node 5 gossips a message we never receive.
        let m = h.data_from(0, 1);
        let g = GossipMsg::of_entries(vec![m.gossip_entry()]);
        let t1 = SimTime::from_secs(1);
        h.drive(t1, |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::Gossip(g))
        });
        // Rounds 0 and 1: plain unicast retries to the remembered gossiper.
        for s in [2u64, 3] {
            let (_, actions) = h.drive(SimTime::from_secs(s), |n, ctx| n.flush_requests(ctx));
            let reqs: Vec<_> = sends(&actions)
                .into_iter()
                .filter(|m| matches!(m, WireMsg::Request(_)))
                .collect();
            assert_eq!(reqs.len(), 1, "round at t={s}s must stay unicast");
            assert!(
                matches!(reqs[0], WireMsg::Request(r) if r.target == NodeId(5)),
                "plain rounds target the remembered gossiper"
            );
        }
        assert_eq!(h.node.recovery_stats().requests_originated, 2);
        assert_eq!(h.node.recovery_stats().requests_widened, 0);
        // Round 2: the gossiper never answered — widen to the trusted
        // neighbours and flood a TTL-bumped search.
        let (_, actions) = h.drive(SimTime::from_secs(4), |n, ctx| n.flush_requests(ctx));
        let s = sends(&actions);
        let targets: Vec<NodeId> = s
            .iter()
            .filter_map(|m| match m {
                WireMsg::Request(r) => Some(r.target),
                _ => None,
            })
            .collect();
        assert_eq!(targets.len(), 3, "widened round hits widen_fanout peers");
        for t in &targets {
            assert!(
                [NodeId(9), NodeId(10), NodeId(11)].contains(t),
                "widened targets come from the neighbour table, got {t:?}"
            );
        }
        assert!(
            s.iter().any(
                |m| matches!(m, WireMsg::FindMissing(f) if f.ttl == 3 && f.target == NodeId(1))
            ),
            "escalation floods a TTL-bumped FIND_MISSING naming the searcher"
        );
        let stats = h.node.recovery_stats();
        assert_eq!(stats.requests_widened, 3);
        assert_eq!(stats.finds_escalated, 1);
        assert_eq!(stats.peak_escalation, 1);
        // The widened round re-arms on the escalation backoff (1 s at level
        // 0), not the plain retry spacing — and keeps escalating.
        let (_, actions) = h.drive(SimTime::from_secs(5), |n, ctx| n.flush_requests(ctx));
        assert!(
            !sends(&actions).is_empty(),
            "level-1 round fires after backoff"
        );
        assert_eq!(h.node.recovery_stats().peak_escalation, 2);
        // Total request budget: escalate_after + max_escalations rounds.
        for s in 6..30u64 {
            h.drive(SimTime::from_secs(s), |n, ctx| n.flush_requests(ctx));
        }
        assert_eq!(
            h.node.recovery_stats().requests_originated + h.node.recovery_stats().finds_escalated,
            6,
            "request rounds are capped at escalate_after + max_escalations"
        );
    }

    #[test]
    fn widened_requests_register_no_mute_expectations() {
        use crate::recovery::RecoveryConfig;
        let config = ByzcastConfig {
            recovery: RecoveryConfig {
                escalate_after: 1,
                ..RecoveryConfig::standard()
            },
            ..ByzcastConfig::default()
        };
        let mut h = Harness::new(1, config);
        let t0 = SimTime::from_millis(500);
        let b = h.beacon_from(9, OverlayRole::Passive);
        h.drive(t0, |node, ctx| {
            node.on_packet(ctx, NodeId(9), &WireMsg::Beacon(b))
        });
        let m = h.data_from(0, 1);
        let g = GossipMsg::of_entries(vec![m.gossip_entry()]);
        h.drive(SimTime::from_secs(1), |n, ctx| {
            n.on_packet(ctx, NodeId(5), &WireMsg::Gossip(g))
        });
        // Round 0 unicast (registers a MUTE expect on the gossiper), round 1
        // widened (must NOT put node 9 on notice — it never advertised the
        // message and may legitimately lack it).
        h.drive(SimTime::from_secs(2), |n, ctx| n.flush_requests(ctx));
        h.drive(SimTime::from_secs(3), |n, ctx| n.flush_requests(ctx));
        assert!(h.node.recovery_stats().requests_widened > 0);
        // Let every MUTE expectation deadline lapse, then tick: only the
        // remembered gossiper (node 5) may be suspected.
        let late = SimTime::from_secs(60);
        h.drive(late, |n, ctx| n.fd_tick(ctx));
        assert_eq!(h.node.trust_level(NodeId(9), late), TrustLevel::Trusted);
    }

    #[test]
    fn spaced_retry_clears_the_serve_window() {
        // Satellite regression: the responder's per-id serve window used to
        // alias `request_retry_spacing`. Because the window starts at the
        // *jittered serve time* (up to `rebroadcast_timeout` after the
        // request), a retry spaced exactly `request_retry_spacing` after the
        // original request landed `jitter` short of the window and was
        // silently refused — the requester burned a retry for nothing.
        let mut h = Harness::new(1, ByzcastConfig::default());
        let m = h.data_from(0, 1);
        let id = m.id;
        h.drive(SimTime::from_millis(100), |n, ctx| {
            n.on_packet(ctx, NodeId(0), &WireMsg::Data(m))
        });
        // Original request at t=580 ms; our response served at t=600 ms
        // (20 ms of rebroadcast jitter).
        h.node.served_recently.insert(id, SimTime::from_millis(600));
        // The requester retries exactly one spacing after its request:
        // t = 580 + 1000 = 1580 ms — 980 ms after the serve. Under the old
        // aliased knob (window == spacing == 1000 ms) this was refused.
        let entry = h.data_from(0, 1).gossip_entry();
        let t_retry = SimTime::from_millis(1580);
        h.drive(t_retry, |n, ctx| {
            n.on_packet(
                ctx,
                NodeId(7),
                &WireMsg::Request(RequestMsg {
                    entry,
                    target: NodeId(1),
                }),
            )
        });
        let (_, actions) = h.drive(t_retry + SimDuration::from_millis(60), |n, ctx| {
            n.flush_responses(ctx)
        });
        assert!(
            sends(&actions)
                .iter()
                .any(|m| matches!(m, WireMsg::Data(d) if d.id == id)),
            "a retry spaced request_retry_spacing after the original must be served"
        );
        // The window still suppresses genuinely bursty duplicates: a second
        // request inside `response_serve_window` of the serve is refused.
        let t_burst = t_retry + SimDuration::from_millis(200);
        h.drive(t_burst, |n, ctx| {
            n.on_packet(
                ctx,
                NodeId(8),
                &WireMsg::Request(RequestMsg {
                    entry,
                    target: NodeId(1),
                }),
            )
        });
        let (_, actions) = h.drive(t_burst + SimDuration::from_millis(60), |n, ctx| {
            n.flush_responses(ctx)
        });
        assert!(
            sends(&actions).is_empty(),
            "requests inside the serve window stay suppressed"
        );
    }

    #[test]
    fn mute_indictment_purges_neighbor_and_reelects() {
        use crate::recovery::RecoveryConfig;
        let config = ByzcastConfig {
            recovery: RecoveryConfig::standard(),
            ..ByzcastConfig::default()
        };
        let mut h = Harness::new(1, config);
        let t0 = SimTime::from_secs(1);
        for n in [9u32, 10] {
            let b = h.beacon_from(n, OverlayRole::Dominator);
            h.drive(t0, |node, ctx| {
                node.on_packet(ctx, NodeId(n), &WireMsg::Beacon(b))
            });
        }
        assert!(h.node.table.contains(NodeId(9)));
        // Node 9 is caught misbehaving.
        let t1 = t0 + SimDuration::from_millis(50);
        h.drive(t1, |n, ctx| {
            let _ = ctx;
            n.suspect(t1, NodeId(9), SuspicionReason::BadSignature);
        });
        // The very next fd tick purges it — no waiting for beacon-record
        // expiry, during which it would keep absorbing unicast REQUESTs.
        let t2 = t1 + SimDuration::from_millis(100);
        h.drive(t2, |n, ctx| n.fd_tick(ctx));
        assert!(
            !h.node.table.contains(NodeId(9)),
            "indicted neighbour must leave the table at the next fd tick"
        );
        assert!(
            h.node.table.contains(NodeId(10)),
            "uninvolved neighbours stay"
        );
        assert!(h.node.recovery_stats().neighbors_purged >= 1);
    }

    #[test]
    fn indicted_neighbor_lingers_when_recovery_is_off() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        let t0 = SimTime::from_secs(1);
        let b = h.beacon_from(9, OverlayRole::Dominator);
        h.drive(t0, |node, ctx| {
            node.on_packet(ctx, NodeId(9), &WireMsg::Beacon(b))
        });
        let t1 = t0 + SimDuration::from_millis(50);
        h.drive(t1, |n, ctx| {
            let _ = ctx;
            n.suspect(t1, NodeId(9), SuspicionReason::BadSignature);
        });
        let t2 = t1 + SimDuration::from_millis(100);
        h.drive(t2, |n, ctx| n.fd_tick(ctx));
        // Documents the pre-recovery behaviour the default-off envelope
        // preserves: the entry survives until beacon-record expiry.
        assert!(h.node.table.contains(NodeId(9)));
        assert_eq!(h.node.recovery_stats().neighbors_purged, 0);
    }

    #[test]
    fn escalated_find_refloods_beyond_two_hops_and_passive_holders_serve() {
        use crate::recovery::RecoveryConfig;
        let config = ByzcastConfig {
            recovery: RecoveryConfig::standard(), // find_ttl 3
            ..ByzcastConfig::default()
        };
        let entry = Harness::new(0, ByzcastConfig::default())
            .data_from(0, 1)
            .gossip_entry();
        let find = |ttl| {
            WireMsg::FindMissing(FindMissingMsg {
                entry,
                target: NodeId(7),
                ttl,
            })
        };
        // A non-holder refloods a TTL-3 search (plain protocol stops at 2).
        let mut h = Harness::new(1, config.clone());
        let t = SimTime::from_secs(1);
        let (_, actions) = h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(7), &find(3)));
        assert!(
            sends(&actions)
                .iter()
                .any(|m| matches!(m, WireMsg::FindMissing(f) if f.ttl == 2)),
            "escalated searches decrement hop by hop past the paper's 2"
        );
        // With the envelope off, a TTL-3 search is inert at a non-holder.
        let mut h = Harness::new(1, ByzcastConfig::default());
        let (_, actions) = h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(7), &find(3)));
        assert!(sends(&actions).is_empty());
        // A *passive* holder serves an escalated search (plain TTL-2 ones
        // are only served by overlay nodes and the targeted gossiper).
        let mut h = Harness::new(1, config);
        let m = h.data_from(0, 1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(7), &find(3)));
        let (_, actions) = h.drive(t + SimDuration::from_millis(60), |n, ctx| {
            n.flush_responses(ctx)
        });
        assert!(
            sends(&actions)
                .iter()
                .any(|m| matches!(m, WireMsg::Data(_))),
            "passive holders answer escalated searches"
        );
        // ...but stay silent for plain TTL-2 searches, as in the paper.
        let mut h = Harness::new(1, ByzcastConfig::default());
        let m = h.data_from(0, 1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(7), &find(2)));
        let (_, actions) = h.drive(t + SimDuration::from_millis(60), |n, ctx| {
            n.flush_responses(ctx)
        });
        assert!(sends(&actions).is_empty());
    }

    #[test]
    fn store_purge_stops_gossip_for_old_messages() {
        let mut h = Harness::new(1, ByzcastConfig::default());
        h.node.role = OverlayRole::Dominator;
        let t = SimTime::from_secs(1);
        let m = h.data_from(0, 1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        let far = t + h.node.config().purge_after + SimDuration::from_secs(1);
        h.drive(far, |n, ctx| n.purge_tick(ctx));
        let (_, actions) = h.drive(far, |n, ctx| n.gossip_tick(ctx));
        // The purged message is no longer advertised; only the periodic
        // beacon may still ride the gossip packet.
        for s in sends(&actions) {
            match s {
                WireMsg::Gossip(g) => assert!(g.entries.is_empty(), "stale entries: {g:?}"),
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "sign as the node's own id")]
    fn signer_id_mismatch_panics() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 2);
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        let _ = ByzcastNode::new(
            NodeId(0),
            ByzcastConfig::default(),
            Box::new(reg.signer(SignerId(1))),
            verifier,
        );
    }

    #[test]
    fn frame_admission_drops_excess_frames_before_dispatch() {
        use crate::resources::ResourceConfig;
        let config = ByzcastConfig {
            resources: ResourceConfig {
                frames_per_sec: 2,
                frame_burst: 2,
                ..ResourceConfig::unlimited()
            },
            ..ByzcastConfig::default()
        };
        let mut h = Harness::new(1, config);
        let t = SimTime::from_secs(1);
        // Five distinct messages in one instant from one neighbour: only the
        // burst (2) is dispatched, the rest are dropped before delivery.
        for seq in 1..=5 {
            let m = h.data_from(0, seq);
            h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        }
        let stats = h.node.resource_stats();
        assert_eq!(stats.frames_admitted, 2);
        assert_eq!(stats.frames_dropped, 3);
        assert_eq!(h.node.store().len(), 2);
        // Another neighbour's bucket is untouched.
        let m = h.data_from(2, 1);
        let (_, actions) = h.drive(t, |n, ctx| {
            n.on_packet(ctx, NodeId(2), &WireMsg::Data(m));
        });
        assert_eq!(delivers(&actions).len(), 1);
    }

    #[test]
    fn verification_budget_drops_unverified_without_suspecting() {
        use crate::resources::ResourceConfig;
        let config = ByzcastConfig {
            resources: ResourceConfig {
                verifs_per_sec: 2,
                verif_burst: 2,
                ..ResourceConfig::unlimited()
            },
            ..ByzcastConfig::default()
        };
        let mut h = Harness::new(1, config);
        let t = SimTime::from_secs(1);
        // The first data message spends the whole budget (two signatures);
        // the second is dropped before any crypto — and without suspecting
        // the sender, since nothing was authenticated.
        let m1 = h.data_from(0, 1);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m1)));
        let m2 = h.data_from(0, 2);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m2)));
        assert!(h.node.store().has(m1.id));
        assert!(!h.node.store().seen(m2.id));
        let stats = h.node.resource_stats();
        assert_eq!(stats.verifs_charged, 2);
        assert!(stats.verifs_dropped >= 1);
        assert_eq!(h.node.counters().bad_signatures_seen, 0);
    }

    #[test]
    fn sustained_admission_violations_feed_verbose() {
        use crate::resources::ResourceConfig;
        let config = ByzcastConfig {
            resources: ResourceConfig {
                frames_per_sec: 1,
                frame_burst: 1,
                ..ResourceConfig::unlimited()
            },
            ..ByzcastConfig::default()
        };
        // Default VERBOSE: 8 violations per indictment, 10 indictments to
        // suspect → 80+ sustained drops from one neighbour.
        let mut h = Harness::new(1, config);
        let t = SimTime::from_secs(1);
        for seq in 1..=120 {
            let m = h.data_from(0, seq);
            h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(0), &WireMsg::Data(m)));
        }
        assert!(h.node.fds().verbose.is_suspected(NodeId(0), t));
        assert!(h.node.resource_stats().quota_suspicions >= 1);
    }

    #[test]
    fn per_origin_missing_quota_bounds_request_bookkeeping() {
        use crate::resources::ResourceConfig;
        let config = ByzcastConfig {
            resources: ResourceConfig {
                max_missing_per_origin: 3,
                ..ResourceConfig::unlimited()
            },
            ..ByzcastConfig::default()
        };
        let mut h = Harness::new(1, config);
        let t = SimTime::from_secs(1);
        // Ten gossip entries for unique unseen messages from origin 0: the
        // missing map tracks at most the quota.
        for seq in 1..=10 {
            let e = h.data_from(0, seq).gossip_entry();
            let g = GossipMsg::of_entries(vec![e]);
            h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(5), &WireMsg::Gossip(g)));
        }
        assert_eq!(h.node.missing_count(), 3);
        let stats = h.node.resource_stats();
        assert_eq!(stats.quota_drops, 7);
        assert_eq!(stats.peak_missing, 3);
        // A different origin is unaffected by origin 0's quota.
        let e = h.data_from(2, 1).gossip_entry();
        let g = GossipMsg::of_entries(vec![e]);
        h.drive(t, |n, ctx| n.on_packet(ctx, NodeId(5), &WireMsg::Gossip(g)));
        assert_eq!(h.node.missing_count(), 4);
    }

    #[test]
    fn store_cap_keeps_delivering_but_stops_advertising() {
        use crate::resources::ResourceConfig;
        let config = ByzcastConfig {
            resources: ResourceConfig {
                max_store_msgs: 2,
                ..ResourceConfig::unlimited()
            },
            ..ByzcastConfig::default()
        };
        let mut h = Harness::new(1, config);
        let t = SimTime::from_secs(1);
        let mut delivered = 0;
        for seq in 1..=5 {
            let m = h.data_from(0, seq);
            let (_, actions) = h.drive(t, |n, ctx| {
                n.on_packet(ctx, NodeId(0), &WireMsg::Data(m));
            });
            delivered += delivers(&actions).len();
        }
        // Every first reception is still delivered exactly once…
        assert_eq!(delivered, 5);
        // …but only the capped bodies are buffered, and rejected bodies are
        // not advertised (we could not serve requests for them).
        assert_eq!(h.node.store().len(), 2);
        let (_, actions) = h.drive(t, |n, ctx| n.gossip_tick(ctx));
        for s in sends(&actions) {
            if let WireMsg::Gossip(g) = s {
                assert!(g.entries.len() <= 2);
            }
        }
        let stats = h.node.resource_stats();
        assert_eq!(stats.store_rejects, 3);
        assert_eq!(stats.peak_store_msgs, 2);
    }
}

#[cfg(test)]
mod stability_tests {
    use super::*;
    use crate::stability::PurgePolicy;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};
    use byzcast_sim::node::Action;
    use byzcast_sim::SimRng;

    fn node_with_stability() -> (ByzcastNode, KeyRegistry<SimScheme>) {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(21, 8);
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        let config = ByzcastConfig {
            purge_policy: PurgePolicy::Stability,
            ..ByzcastConfig::default()
        };
        (
            ByzcastNode::new(
                NodeId(1),
                config,
                Box::new(reg.signer(SignerId(1))),
                verifier,
            ),
            reg,
        )
    }

    fn drive<R>(
        node: &mut ByzcastNode,
        now: SimTime,
        f: impl FnOnce(&mut ByzcastNode, &mut Context<'_, WireMsg>) -> R,
    ) -> R {
        let mut rng = SimRng::new(1);
        let mut actions: Vec<Action<WireMsg>> = Vec::new();
        let mut ctx = Context::new(node.id(), now, &mut rng, &mut actions);
        f(node, &mut ctx)
    }

    #[test]
    fn stable_messages_are_purged_early() {
        let (mut node, reg) = node_with_stability();
        let t = SimTime::from_secs(1);
        // Two neighbours known from beacons.
        for q in [2u32, 3] {
            let b = BeaconMsg::sign(
                &reg.signer(SignerId(q)),
                byzcast_overlay::OverlayRole::Passive,
                vec![],
                vec![],
                vec![],
            );
            drive(&mut node, t, |n, ctx| {
                n.on_packet(ctx, NodeId(q), &WireMsg::Beacon(b))
            });
        }
        // A message arrives from node 2.
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 7, 100);
        drive(&mut node, t, |n, ctx| {
            n.on_packet(ctx, NodeId(2), &WireMsg::Data(m))
        });
        assert!(node.store().has(m.id));
        // Not yet stable: node 3 was never observed holding it.
        drive(&mut node, t + SimDuration::from_secs(2), |n, ctx| {
            n.purge_tick(ctx)
        });
        assert!(node.store().has(m.id), "purged before stability");
        // Node 3 gossips the entry: now every neighbour holds it.
        let g = GossipMsg::of_entries(vec![m.gossip_entry()]);
        drive(&mut node, t + SimDuration::from_secs(2), |n, ctx| {
            n.on_packet(ctx, NodeId(3), &WireMsg::Gossip(g))
        });
        drive(&mut node, t + SimDuration::from_secs(4), |n, ctx| {
            n.purge_tick(ctx)
        });
        assert!(!node.store().has(m.id), "stable message not purged");
        // The seen-id survives: a late duplicate is still filtered.
        let delivered_again = drive(&mut node, t + SimDuration::from_secs(5), |n, ctx| {
            n.on_packet(ctx, NodeId(2), &WireMsg::Data(m));
            n.store().seen(m.id)
        });
        assert!(delivered_again);
    }

    #[test]
    fn unstable_messages_survive_until_timeout_backstop() {
        let (mut node, reg) = node_with_stability();
        let t = SimTime::from_secs(1);
        let b = BeaconMsg::sign(
            &reg.signer(SignerId(3)),
            byzcast_overlay::OverlayRole::Passive,
            vec![],
            vec![],
            vec![],
        );
        drive(&mut node, t, |n, ctx| {
            n.on_packet(ctx, NodeId(3), &WireMsg::Beacon(b))
        });
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 7, 100);
        drive(&mut node, t, |n, ctx| {
            n.on_packet(ctx, NodeId(2), &WireMsg::Data(m))
        });
        // Node 3 never shows it holds the message: early purge must not fire…
        drive(&mut node, t + SimDuration::from_secs(5), |n, ctx| {
            n.purge_tick(ctx)
        });
        assert!(node.store().has(m.id));
        // …but the timeout backstop still does.
        let late = t + node.config().purge_after + SimDuration::from_secs(1);
        drive(&mut node, late, |n, ctx| n.purge_tick(ctx));
        assert!(!node.store().has(m.id));
    }
}
