//! Stability detection — the purging alternative the paper mentions but
//! does not use: "Messages can be purged either after a timeout, or by using
//! a stability detection mechanism. In this work, we have chosen to use
//! timeout based purging due to its simplicity." (§3.2.2)
//!
//! This module supplies the mechanism the authors deferred: a message is
//! *stable* at node `p` once every current (trusted) neighbour of `p` has
//! been observed holding it — by transmitting it, or by advertising it in a
//! gossip. A stable message no longer needs `p` as a recovery source for its
//! one-hop neighbourhood, so its body can be purged early and its gossip
//! stopped, shrinking buffers below the §3.5 timeout bound. The timeout
//! remains as a backstop (a neighbour that never gossips would otherwise pin
//! buffers forever).

use std::collections::BTreeMap;

use byzcast_sim::{NodeId, SimTime};

use crate::message::MessageId;

/// Which purging policy the message store follows.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PurgePolicy {
    /// The paper's choice: purge bodies `purge_after` after reception.
    #[default]
    Timeout,
    /// The paper's deferred alternative: purge as soon as every current
    /// neighbour has been observed holding the message (with the timeout as
    /// a backstop).
    Stability,
}

/// Tracks, per buffered message, which nodes have been observed holding it.
/// Holder sets are sorted vectors (observations arrive hot, once per gossip
/// entry per reception; a vector's binary-search insert beats a tree set at
/// neighbourhood sizes, and iteration order stays ascending).
#[derive(Debug, Default)]
pub struct StabilityTracker {
    holders: BTreeMap<MessageId, Vec<NodeId>>,
}

impl StabilityTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        StabilityTracker::default()
    }

    /// Records that `node` has been observed holding `id` — it transmitted
    /// the message, or gossiped its signature ("p only gossips about
    /// messages it has already received").
    pub fn observe_holder(&mut self, id: MessageId, node: NodeId) {
        let h = self.holders.entry(id).or_default();
        if let Err(pos) = h.binary_search(&node) {
            h.insert(pos, node);
        }
    }

    /// Whether every node in `neighbors` has been observed holding `id`.
    /// Vacuously true for an empty neighbour set only if the message was
    /// observed at all (otherwise unknown ids would count as stable).
    pub fn is_stable<'a>(
        &self,
        id: MessageId,
        mut neighbors: impl Iterator<Item = &'a NodeId>,
    ) -> bool {
        match self.holders.get(&id) {
            Some(h) => neighbors.all(|n| h.binary_search(n).is_ok()),
            None => false,
        }
    }

    /// The observed holders of `id`, in ascending id order.
    pub fn holders(&self, id: MessageId) -> impl Iterator<Item = NodeId> + '_ {
        self.holders.get(&id).into_iter().flatten().copied()
    }

    /// Drops tracking state for `id` (call when the body is purged).
    pub fn forget(&mut self, id: MessageId) {
        self.holders.remove(&id);
    }

    /// Drops tracking state for every id not retained by `keep`.
    pub fn retain(&mut self, mut keep: impl FnMut(MessageId) -> bool) {
        self.holders.retain(|&id, _| keep(id));
    }

    /// Number of tracked messages.
    pub fn len(&self) -> usize {
        self.holders.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty()
    }
}

/// Ensures `SimTime` stays imported if the backstop logic migrates here.
const _: fn(SimTime) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64) -> MessageId {
        MessageId::new(NodeId(0), seq)
    }

    #[test]
    fn unobserved_message_is_never_stable() {
        let t = StabilityTracker::new();
        let nbrs = [NodeId(1), NodeId(2)];
        assert!(!t.is_stable(id(1), nbrs.iter()));
    }

    #[test]
    fn stable_once_all_neighbors_hold_it() {
        let mut t = StabilityTracker::new();
        let nbrs = [NodeId(1), NodeId(2)];
        t.observe_holder(id(1), NodeId(1));
        assert!(!t.is_stable(id(1), nbrs.iter()));
        t.observe_holder(id(1), NodeId(2));
        assert!(t.is_stable(id(1), nbrs.iter()));
        // A new neighbour appearing makes it unstable again.
        let nbrs3 = [NodeId(1), NodeId(2), NodeId(3)];
        assert!(!t.is_stable(id(1), nbrs3.iter()));
    }

    #[test]
    fn holders_are_queryable_and_forgettable() {
        let mut t = StabilityTracker::new();
        t.observe_holder(id(1), NodeId(5));
        t.observe_holder(id(1), NodeId(6));
        assert_eq!(t.holders(id(1)).count(), 2);
        assert_eq!(t.len(), 1);
        t.forget(id(1));
        assert!(t.is_empty());
        assert_eq!(t.holders(id(1)).count(), 0);
    }

    #[test]
    fn retain_prunes_stale_ids() {
        let mut t = StabilityTracker::new();
        t.observe_holder(id(1), NodeId(1));
        t.observe_holder(id(2), NodeId(1));
        t.retain(|m| m.seq == 2);
        assert_eq!(t.len(), 1);
        assert!(t.is_stable(id(2), [NodeId(1)].iter()));
    }

    #[test]
    fn duplicate_observations_are_idempotent() {
        let mut t = StabilityTracker::new();
        t.observe_holder(id(1), NodeId(1));
        t.observe_holder(id(1), NodeId(1));
        assert_eq!(t.holders(id(1)).count(), 1);
    }
}
