//! Resource governance: admission control, verification budgets, quotas.
//!
//! The §3.5 buffer bound (`max_timeout · δ` messages) only holds when senders
//! are correct: nothing in the paper's pseudo-code limits how fast a
//! Byzantine neighbour may inject *unique* signed frames, each of which costs
//! a full signature verification and (if valid) a buffered body until the
//! purge horizon. This module makes the implicit envelope explicit:
//!
//! * a per-neighbour **token bucket** admits frames *before* any
//!   dispatching, and a second bucket budgets **signature verifications**
//!   *before* any crypto runs, so an attacker cannot spend a correct node's
//!   CPU faster than the configured rate;
//! * [`ResourceConfig`] also carries hard count/byte caps enforced by
//!   [`crate::store::MessageStore`] and per-origin quotas enforced by
//!   [`crate::protocol::ByzcastNode`] on its gossip/request bookkeeping;
//! * [`ResourceStats`] reports high-water marks and drop counters so a
//!   harness oracle can check that the envelope was honoured.
//!
//! Every limit defaults to `0` = unlimited; with the default configuration
//! the governed code paths reproduce ungoverned behaviour exactly.

use std::collections::BTreeMap;

use byzcast_sim::{NodeId, SimTime};

/// Per-node resource-governance envelope. All limits use `0` = unlimited,
/// and [`ResourceConfig::default`] leaves every limit at `0`, reproducing
/// ungoverned behaviour bit for bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceConfig {
    /// Per-neighbour frame admission rate (frames/second), charged for every
    /// received frame before it is dispatched; `0` = unlimited.
    pub frames_per_sec: u32,
    /// Burst capacity of the frame bucket; `0` = same as `frames_per_sec`.
    pub frame_burst: u32,
    /// Per-neighbour signature-verification budget (verifications/second),
    /// charged before any crypto runs; `0` = unlimited.
    pub verifs_per_sec: u32,
    /// Burst capacity of the verification bucket; `0` = same as
    /// `verifs_per_sec`.
    pub verif_burst: u32,
    /// Hard cap on buffered message bodies (count); `0` = unlimited.
    pub max_store_msgs: usize,
    /// Hard cap on buffered message bodies (total wire bytes); `0` =
    /// unlimited.
    pub max_store_bytes: usize,
    /// Hard cap on retained seen/delivered ids; `0` = unlimited.
    pub max_seen_ids: usize,
    /// Per-origin cap on concurrently advertised gossip entries
    /// (`active_gossip`); `0` = unlimited. A node's own messages are exempt.
    pub max_gossip_per_origin: usize,
    /// Per-origin cap on concurrently tracked missing messages (request
    /// bookkeeping); `0` = unlimited.
    pub max_missing_per_origin: usize,
}

impl ResourceConfig {
    /// The ungoverned envelope (every limit `0`); same as `default()`.
    pub const fn unlimited() -> Self {
        ResourceConfig {
            frames_per_sec: 0,
            frame_burst: 0,
            verifs_per_sec: 0,
            verif_burst: 0,
            max_store_msgs: 0,
            max_store_bytes: 0,
            max_seen_ids: 0,
            max_gossip_per_origin: 0,
            max_missing_per_origin: 0,
        }
    }

    /// Whether every limit is disabled.
    pub fn is_unlimited(&self) -> bool {
        *self == Self::unlimited()
    }

    fn frame_burst_tokens(&self) -> u64 {
        if self.frame_burst != 0 {
            self.frame_burst as u64
        } else {
            self.frames_per_sec as u64
        }
    }

    fn verif_burst_tokens(&self) -> u64 {
        if self.verif_burst != 0 {
            self.verif_burst as u64
        } else {
            self.verifs_per_sec as u64
        }
    }
}

/// Resource-governance statistics of one node (or, merged, of a whole run):
/// what was dropped, what was evicted, and how close the node came to its
/// envelope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// Frames admitted past the per-neighbour token bucket.
    pub frames_admitted: u64,
    /// Frames dropped by admission control before dispatch.
    pub frames_dropped: u64,
    /// Signature verifications charged against a neighbour's budget.
    pub verifs_charged: u64,
    /// Verifications refused because the neighbour's budget was exhausted.
    pub verifs_dropped: u64,
    /// Most signature verifications performed in any one-second window.
    pub peak_verifs_per_sec: u64,
    /// Message bodies rejected by the store's count/byte caps (drop-newest).
    pub store_rejects: u64,
    /// Seen/delivered ids evicted by the store's seen-id cap (drop-oldest).
    pub seen_evictions: u64,
    /// Gossip/request bookkeeping entries refused by per-origin quotas.
    pub quota_drops: u64,
    /// VERBOSE indictments produced by sustained quota violations.
    pub quota_suspicions: u64,
    /// Peak buffered message bodies (count).
    pub peak_store_msgs: u64,
    /// Peak buffered message bodies (total wire bytes).
    pub peak_store_bytes: u64,
    /// Peak retained seen/delivered ids.
    pub peak_seen_ids: u64,
    /// Peak `active_gossip` entries.
    pub peak_active_gossip: u64,
    /// Peak tracked missing messages.
    pub peak_missing: u64,
}

impl ResourceStats {
    /// Adds `other` — counters sum, high-water marks take the maximum — used
    /// to total stats across nodes.
    pub fn merge(&mut self, other: &ResourceStats) {
        self.frames_admitted += other.frames_admitted;
        self.frames_dropped += other.frames_dropped;
        self.verifs_charged += other.verifs_charged;
        self.verifs_dropped += other.verifs_dropped;
        self.peak_verifs_per_sec = self.peak_verifs_per_sec.max(other.peak_verifs_per_sec);
        self.store_rejects += other.store_rejects;
        self.seen_evictions += other.seen_evictions;
        self.quota_drops += other.quota_drops;
        self.quota_suspicions += other.quota_suspicions;
        self.peak_store_msgs = self.peak_store_msgs.max(other.peak_store_msgs);
        self.peak_store_bytes = self.peak_store_bytes.max(other.peak_store_bytes);
        self.peak_seen_ids = self.peak_seen_ids.max(other.peak_seen_ids);
        self.peak_active_gossip = self.peak_active_gossip.max(other.peak_active_gossip);
        self.peak_missing = self.peak_missing.max(other.peak_missing);
    }
}

/// A token bucket in integer micro-tokens (1 token = 1_000_000 micro-tokens,
/// refilled at `rate` micro-tokens per elapsed microsecond — i.e. `rate`
/// tokens per second) so admission is exactly deterministic.
#[derive(Clone, Copy, Debug)]
struct TokenBucket {
    micro_tokens: u64,
    last_refill: SimTime,
}

impl TokenBucket {
    const TOKEN: u64 = 1_000_000;

    fn full(burst: u64) -> Self {
        TokenBucket {
            micro_tokens: burst.saturating_mul(Self::TOKEN),
            last_refill: SimTime::ZERO,
        }
    }

    fn try_take(&mut self, now: SimTime, rate: u64, burst: u64) -> bool {
        let elapsed = now.saturating_since(self.last_refill).as_micros();
        self.last_refill = now;
        self.micro_tokens = self
            .micro_tokens
            .saturating_add(rate.saturating_mul(elapsed))
            .min(burst.saturating_mul(Self::TOKEN));
        if self.micro_tokens >= Self::TOKEN {
            self.micro_tokens -= Self::TOKEN;
            true
        } else {
            false
        }
    }
}

/// The admission-control state of one node: per-neighbour token buckets plus
/// the verification-rate window used for `peak_verifs_per_sec`.
#[derive(Debug)]
pub(crate) struct Governor {
    cfg: ResourceConfig,
    frames: BTreeMap<NodeId, TokenBucket>,
    verifs: BTreeMap<NodeId, TokenBucket>,
    /// Calendar second of the current verification-counting window.
    verif_window: u64,
    verifs_in_window: u64,
    stats: ResourceStats,
}

impl Governor {
    pub(crate) fn new(cfg: ResourceConfig) -> Self {
        Governor {
            cfg,
            frames: BTreeMap::new(),
            verifs: BTreeMap::new(),
            verif_window: 0,
            verifs_in_window: 0,
            stats: ResourceStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> &ResourceStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut ResourceStats {
        &mut self.stats
    }

    /// Charges one frame against `from`'s admission bucket. Returns whether
    /// the frame may be dispatched.
    pub(crate) fn admit_frame(&mut self, now: SimTime, from: NodeId) -> bool {
        if self.cfg.frames_per_sec == 0 {
            self.stats.frames_admitted += 1;
            return true;
        }
        let (rate, burst) = (
            self.cfg.frames_per_sec as u64,
            self.cfg.frame_burst_tokens(),
        );
        let bucket = self
            .frames
            .entry(from)
            .or_insert_with(|| TokenBucket::full(burst));
        if bucket.try_take(now, rate, burst) {
            self.stats.frames_admitted += 1;
            true
        } else {
            self.stats.frames_dropped += 1;
            false
        }
    }

    /// Charges one signature verification against `from`'s budget. Returns
    /// whether the verification may run; the caller must drop the item
    /// unverified (and unsuspected — nothing was authenticated) on `false`.
    pub(crate) fn admit_verification(&mut self, now: SimTime, from: NodeId) -> bool {
        if self.cfg.verifs_per_sec != 0 {
            let (rate, burst) = (
                self.cfg.verifs_per_sec as u64,
                self.cfg.verif_burst_tokens(),
            );
            let bucket = self
                .verifs
                .entry(from)
                .or_insert_with(|| TokenBucket::full(burst));
            if !bucket.try_take(now, rate, burst) {
                self.stats.verifs_dropped += 1;
                return false;
            }
        }
        self.stats.verifs_charged += 1;
        let window = now.as_micros() / 1_000_000;
        if window != self.verif_window {
            self.verif_window = window;
            self.verifs_in_window = 0;
        }
        self.verifs_in_window += 1;
        self.stats.peak_verifs_per_sec = self.stats.peak_verifs_per_sec.max(self.verifs_in_window);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_sim::SimDuration;

    #[test]
    fn default_is_unlimited() {
        assert!(ResourceConfig::default().is_unlimited());
        assert_eq!(ResourceConfig::default(), ResourceConfig::unlimited());
        assert!(!ResourceConfig {
            frames_per_sec: 1,
            ..ResourceConfig::unlimited()
        }
        .is_unlimited());
    }

    #[test]
    fn unlimited_governor_admits_everything() {
        let mut g = Governor::new(ResourceConfig::unlimited());
        let t = SimTime::from_secs(1);
        for _ in 0..10_000 {
            assert!(g.admit_frame(t, NodeId(1)));
            assert!(g.admit_verification(t, NodeId(1)));
        }
        assert_eq!(g.stats().frames_dropped, 0);
        assert_eq!(g.stats().verifs_dropped, 0);
        assert_eq!(g.stats().frames_admitted, 10_000);
        assert_eq!(g.stats().peak_verifs_per_sec, 10_000);
    }

    #[test]
    fn frame_bucket_enforces_rate_and_burst() {
        let cfg = ResourceConfig {
            frames_per_sec: 10,
            frame_burst: 5,
            ..ResourceConfig::unlimited()
        };
        let mut g = Governor::new(cfg);
        let t = SimTime::from_secs(100);
        // The bucket starts full: exactly `burst` frames pass at one instant.
        let admitted = (0..20).filter(|_| g.admit_frame(t, NodeId(1))).count();
        assert_eq!(admitted, 5);
        assert_eq!(g.stats().frames_dropped, 15);
        // 100 ms refills one token at 10/s.
        let t2 = t + SimDuration::from_millis(100);
        assert!(g.admit_frame(t2, NodeId(1)));
        assert!(!g.admit_frame(t2, NodeId(1)));
        // Budgets are per neighbour: another sender has its own bucket.
        assert!(g.admit_frame(t2, NodeId(2)));
    }

    #[test]
    fn verification_bucket_is_separate_from_frames() {
        let cfg = ResourceConfig {
            verifs_per_sec: 2,
            verif_burst: 2,
            ..ResourceConfig::unlimited()
        };
        let mut g = Governor::new(cfg);
        let t = SimTime::from_secs(3);
        assert!(g.admit_frame(t, NodeId(1))); // frames unlimited
        assert!(g.admit_verification(t, NodeId(1)));
        assert!(g.admit_verification(t, NodeId(1)));
        assert!(!g.admit_verification(t, NodeId(1)));
        assert_eq!(g.stats().verifs_charged, 2);
        assert_eq!(g.stats().verifs_dropped, 1);
    }

    #[test]
    fn peak_verifications_track_the_busiest_window() {
        let mut g = Governor::new(ResourceConfig::unlimited());
        for i in 0..5 {
            g.admit_verification(SimTime::from_secs(1), NodeId(i));
        }
        g.admit_verification(SimTime::from_secs(2), NodeId(0));
        assert_eq!(g.stats().peak_verifs_per_sec, 5);
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_peaks() {
        let mut a = ResourceStats {
            frames_admitted: 1,
            frames_dropped: 2,
            peak_store_msgs: 7,
            ..ResourceStats::default()
        };
        let b = ResourceStats {
            frames_admitted: 3,
            frames_dropped: 4,
            peak_store_msgs: 5,
            peak_missing: 9,
            ..ResourceStats::default()
        };
        a.merge(&b);
        assert_eq!(a.frames_admitted, 4);
        assert_eq!(a.frames_dropped, 6);
        assert_eq!(a.peak_store_msgs, 7);
        assert_eq!(a.peak_missing, 9);
    }
}
