//! The wire format of the Byzantine dissemination protocol.
//!
//! Line 1 of the pseudo-code builds a data message as
//! `msg_id ‖ node_id ‖ msg ‖ sig(msg_id ‖ node_id ‖ msg)` and line 2 a gossip
//! message as `msg_id ‖ node_id ‖ sig(msg_id ‖ node_id)`. Both originator
//! signatures travel with the data message (the paper's footnote 5 notes the
//! first gossip can be piggybacked on the message), so that any receiver can
//! later gossip a *verifiable* entry: gossip receivers can check
//! `sig(msg_id ‖ node_id)` without possessing the message body — which is the
//! whole point of gossiping signatures instead of payloads.
//!
//! Simulation note: application payloads are represented by `(payload_id,
//! payload_len)` rather than real bytes; signatures cover these fields, so a
//! Byzantine node that tampers with either is caught exactly as a real
//! payload tamperer would be.

use byzcast_crypto::{Signature, Signer, SignerId, Verifier};
use byzcast_fd::{MsgHeader, MsgKind};
use byzcast_overlay::OverlayRole;
use byzcast_sim::{Message, NodeId};

/// Uniquely identifies an application message: `(originator, sequence)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MessageId {
    /// The originator of the message.
    pub origin: NodeId,
    /// The originator's sequence number.
    pub seq: u64,
}

impl MessageId {
    /// Builds an id.
    pub const fn new(origin: NodeId, seq: u64) -> Self {
        MessageId { origin, seq }
    }

    /// Canonical bytes signed in the gossip signature (`msg_id ‖ node_id`).
    pub fn id_bytes(&self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[..4].copy_from_slice(&self.origin.0.to_le_bytes());
        out[4..].copy_from_slice(&self.seq.to_le_bytes());
        out
    }
}

/// Canonical bytes signed in the message signature
/// (`msg_id ‖ node_id ‖ msg`): id plus the payload representation.
fn msg_bytes(id: MessageId, payload_id: u64, payload_len: u32) -> [u8; 24] {
    let mut out = [0u8; 24];
    out[..12].copy_from_slice(&id.id_bytes());
    out[12..20].copy_from_slice(&payload_id.to_le_bytes());
    out[20..].copy_from_slice(&payload_len.to_le_bytes());
    out
}

/// A full application data message (`DATA`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DataMsg {
    /// The message identity.
    pub id: MessageId,
    /// Workload-assigned payload id (stands in for the payload bytes).
    pub payload_id: u64,
    /// Application payload length in bytes (contributes to air time).
    pub payload_len: u32,
    /// Originator signature over the full message.
    pub msg_sig: Signature,
    /// Originator signature over the id alone (piggybacked gossip signature).
    pub id_sig: Signature,
    /// Remaining hops: 1 for normal overlay flooding, 2 for recovery
    /// responses that must cross a possibly-Byzantine hop.
    pub ttl: u8,
}

impl DataMsg {
    /// Builds and signs a fresh data message at the originator.
    pub fn sign(signer: &dyn Signer, seq: u64, payload_id: u64, payload_len: u32) -> Self {
        let origin = NodeId(signer.id().0);
        let id = MessageId::new(origin, seq);
        DataMsg {
            id,
            payload_id,
            payload_len,
            msg_sig: signer.sign(&msg_bytes(id, payload_id, payload_len)),
            id_sig: signer.sign(&id.id_bytes()),
            ttl: 1,
        }
    }

    /// Verifies the originator's full-message signature.
    pub fn verify(&self, verifier: &dyn Verifier) -> bool {
        verifier.verify(
            SignerId(self.id.origin.0),
            &msg_bytes(self.id, self.payload_id, self.payload_len),
            &self.msg_sig,
        )
    }

    /// The FD-visible header.
    pub fn header(&self) -> MsgHeader {
        MsgHeader::new(MsgKind::Data, self.id.origin, self.id.seq)
    }

    /// The gossip entry announcing this message.
    pub fn gossip_entry(&self) -> GossipEntry {
        GossipEntry {
            id: self.id,
            payload_id: self.payload_id,
            payload_len: self.payload_len,
            id_sig: self.id_sig,
        }
    }

    /// A copy with the given TTL (used by recovery responses).
    pub fn with_ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    const BASE_WIRE: usize = 1 + 12 + 8 + 4 + Signature::WIRE_SIZE * 2 + 1;

    /// Serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        Self::BASE_WIRE + self.payload_len as usize
    }
}

/// One gossiped signature: `msg_id ‖ node_id ‖ sig(msg_id ‖ node_id)` plus
/// the payload metadata a requester will need to verify the recovered body.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GossipEntry {
    /// The message identity.
    pub id: MessageId,
    /// Payload id of the announced message.
    pub payload_id: u64,
    /// Payload length of the announced message.
    pub payload_len: u32,
    /// Originator signature over the id.
    pub id_sig: Signature,
}

impl GossipEntry {
    /// Serialized size in bytes.
    pub const WIRE_SIZE: usize = 12 + 8 + 4 + Signature::WIRE_SIZE;

    /// Verifies the originator's id signature.
    pub fn verify(&self, verifier: &dyn Verifier) -> bool {
        verifier.verify(
            SignerId(self.id.origin.0),
            &self.id.id_bytes(),
            &self.id_sig,
        )
    }

    /// The FD-visible header of the gossip itself.
    pub fn header(&self) -> MsgHeader {
        MsgHeader::new(MsgKind::Gossip, self.id.origin, self.id.seq)
    }

    /// The FD-visible header of the *data message* this entry announces —
    /// what the MUTE detector is told to expect after hearing the gossip.
    pub fn data_header(&self) -> MsgHeader {
        MsgHeader::new(MsgKind::Data, self.id.origin, self.id.seq)
    }
}

/// An aggregated gossip packet (`GOSSIP`). "As gossips are sent
/// periodically, multiple gossip messages are aggregated into one packet,
/// thereby greatly reducing the number of messages generated." The paper
/// further notes that "for performance reasons, most overlay maintenance
/// messages can be piggybacked on gossip messages" — hence the optional
/// embedded beacon.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GossipMsg {
    /// The aggregated entries.
    pub entries: Vec<GossipEntry>,
    /// A piggybacked overlay-maintenance beacon, when one is due.
    pub beacon: Option<BeaconMsg>,
}

impl GossipMsg {
    /// A gossip packet with entries only.
    pub fn of_entries(entries: Vec<GossipEntry>) -> Self {
        GossipMsg {
            entries,
            beacon: None,
        }
    }

    /// Serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        1 + 2
            + self.entries.len() * GossipEntry::WIRE_SIZE
            + self.beacon.as_ref().map_or(0, |b| b.wire_size())
    }
}

/// A retransmission request (`REQUEST_MSG`): line 32 of the pseudo-code
/// broadcasts the gossip entry with the gossiper as target.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RequestMsg {
    /// The gossip entry of the missing message (self-authenticating).
    pub entry: GossipEntry,
    /// The node known to have the message (the gossiper), `p_k` in the
    /// pseudo-code's request handler.
    pub target: NodeId,
}

impl RequestMsg {
    /// Serialized size in bytes.
    pub const WIRE_SIZE: usize = 1 + GossipEntry::WIRE_SIZE + 4;

    /// The FD-visible header.
    pub fn header(&self) -> MsgHeader {
        MsgHeader::new(MsgKind::RequestMsg, self.entry.id.origin, self.entry.id.seq)
    }
}

/// An overlay-level search for a missing message (`FIND_MISSING_MSG`),
/// flooded with TTL 2 "in order to bypass a potential neighboring Byzantine
/// node".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FindMissingMsg {
    /// The gossip entry of the missing message.
    pub entry: GossipEntry,
    /// The node known to have the message, relayed from the request.
    pub target: NodeId,
    /// Remaining hops (starts at 2).
    pub ttl: u8,
}

impl FindMissingMsg {
    /// Serialized size in bytes.
    pub const WIRE_SIZE: usize = 1 + GossipEntry::WIRE_SIZE + 4 + 1;

    /// The FD-visible header.
    pub fn header(&self) -> MsgHeader {
        MsgHeader::new(
            MsgKind::FindMissingMsg,
            self.entry.id.origin,
            self.entry.id.seq,
        )
    }
}

/// An overlay-maintenance beacon, signed by its sender ("we assume that
/// overlay maintenance messages are signed as well").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BeaconMsg {
    /// The beaconing node.
    pub sender: NodeId,
    /// Its current overlay role.
    pub role: OverlayRole,
    /// Its Wu–Li *marked* flag (role-independent; CDS pruning compares
    /// against neighbours' marked flags, see `byzcast_overlay::cds`).
    pub marked: bool,
    /// Its one-hop neighbour list.
    pub neighbors: Vec<NodeId>,
    /// Its dominator neighbours (for the MIS+B 3-hop bridge rule).
    pub dominator_neighbors: Vec<NodeId>,
    /// Nodes it currently suspects (second-hand trust reports: "a node that
    /// suspects one of its neighbors should notify its other neighbors").
    pub suspects: Vec<NodeId>,
    /// The sender's signature over all of the above.
    pub sig: Signature,
}

impl BeaconMsg {
    fn canonical_bytes(
        sender: NodeId,
        role: OverlayRole,
        marked: bool,
        neighbors: &[NodeId],
        dominator_neighbors: &[NodeId],
        suspects: &[NodeId],
    ) -> Vec<u8> {
        let mut out = Vec::new();
        Self::canonical_bytes_into(
            &mut out,
            sender,
            role,
            marked,
            neighbors,
            dominator_neighbors,
            suspects,
        );
        out
    }

    fn canonical_bytes_into(
        out: &mut Vec<u8>,
        sender: NodeId,
        role: OverlayRole,
        marked: bool,
        neighbors: &[NodeId],
        dominator_neighbors: &[NodeId],
        suspects: &[NodeId],
    ) {
        out.clear();
        out.reserve(16 + 4 * (neighbors.len() + dominator_neighbors.len() + suspects.len()));
        out.extend_from_slice(&sender.0.to_le_bytes());
        out.push(match role {
            OverlayRole::Passive => 0,
            OverlayRole::Dominator => 1,
            OverlayRole::Bridge => 2,
        });
        out.push(marked as u8);
        for list in [neighbors, dominator_neighbors, suspects] {
            out.extend_from_slice(&(list.len() as u32).to_le_bytes());
            for n in list {
                out.extend_from_slice(&n.0.to_le_bytes());
            }
        }
    }

    /// Builds and signs a beacon. `marked` defaults to the role's activity;
    /// use [`BeaconMsg::sign_marked`] to advertise it independently.
    pub fn sign(
        signer: &dyn Signer,
        role: OverlayRole,
        neighbors: Vec<NodeId>,
        dominator_neighbors: Vec<NodeId>,
        suspects: Vec<NodeId>,
    ) -> Self {
        Self::sign_marked(
            signer,
            role,
            role.is_active(),
            neighbors,
            dominator_neighbors,
            suspects,
        )
    }

    /// Builds and signs a beacon with an explicit marked flag.
    pub fn sign_marked(
        signer: &dyn Signer,
        role: OverlayRole,
        marked: bool,
        neighbors: Vec<NodeId>,
        dominator_neighbors: Vec<NodeId>,
        suspects: Vec<NodeId>,
    ) -> Self {
        let sender = NodeId(signer.id().0);
        let sig = signer.sign(&Self::canonical_bytes(
            sender,
            role,
            marked,
            &neighbors,
            &dominator_neighbors,
            &suspects,
        ));
        BeaconMsg {
            sender,
            role,
            marked,
            neighbors,
            dominator_neighbors,
            suspects,
            sig,
        }
    }

    /// Verifies the sender's signature.
    pub fn verify(&self, verifier: &dyn Verifier) -> bool {
        self.verify_with(verifier, &mut Vec::new())
    }

    /// Verifies the sender's signature, rebuilding the signed preimage into
    /// `scratch` (beacons are the most frequently verified message, and a
    /// caller-owned buffer makes the rebuild allocation-free on the hot
    /// path).
    pub fn verify_with(&self, verifier: &dyn Verifier, scratch: &mut Vec<u8>) -> bool {
        Self::canonical_bytes_into(
            scratch,
            self.sender,
            self.role,
            self.marked,
            &self.neighbors,
            &self.dominator_neighbors,
            &self.suspects,
        );
        verifier.verify(SignerId(self.sender.0), scratch, &self.sig)
    }

    /// The FD-visible header.
    pub fn header(&self) -> MsgHeader {
        MsgHeader::new(MsgKind::Beacon, self.sender, 0)
    }

    /// Serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        1 + 4
            + 1
            + 1
            + 3 * 2
            + 4 * (self.neighbors.len() + self.dominator_neighbors.len() + self.suspects.len())
            + Signature::WIRE_SIZE
    }
}

/// The protocol's wire message: everything a byzcast node puts on the air.
#[derive(Clone, PartialEq, Debug)]
pub enum WireMsg {
    /// An application data message.
    Data(DataMsg),
    /// An aggregated signature gossip.
    Gossip(GossipMsg),
    /// A retransmission request.
    Request(RequestMsg),
    /// A TTL-2 overlay search for a missing message.
    FindMissing(FindMissingMsg),
    /// An overlay-maintenance beacon.
    Beacon(BeaconMsg),
}

impl WireMsg {
    /// The FD-visible header of the message (for gossip packets: of the
    /// first entry, as the observe path walks entries individually).
    pub fn header(&self) -> Option<MsgHeader> {
        match self {
            WireMsg::Data(m) => Some(m.header()),
            WireMsg::Gossip(g) => g
                .entries
                .first()
                .map(|e| e.header())
                .or_else(|| g.beacon.as_ref().map(|b| b.header())),
            WireMsg::Request(r) => Some(r.header()),
            WireMsg::FindMissing(f) => Some(f.header()),
            WireMsg::Beacon(b) => Some(b.header()),
        }
    }
}

impl Message for WireMsg {
    fn wire_size(&self) -> usize {
        match self {
            WireMsg::Data(m) => m.wire_size(),
            WireMsg::Gossip(g) => g.wire_size(),
            WireMsg::Request(_) => RequestMsg::WIRE_SIZE,
            WireMsg::FindMissing(_) => FindMissingMsg::WIRE_SIZE,
            WireMsg::Beacon(b) => b.wire_size(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            WireMsg::Data(_) => MsgKind::Data.label(),
            WireMsg::Gossip(_) => MsgKind::Gossip.label(),
            WireMsg::Request(_) => MsgKind::RequestMsg.label(),
            WireMsg::FindMissing(_) => MsgKind::FindMissingMsg.label(),
            WireMsg::Beacon(_) => MsgKind::Beacon.label(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_crypto::{KeyRegistry, SimScheme};

    fn keys() -> KeyRegistry<SimScheme> {
        KeyRegistry::generate(5, 4)
    }

    #[test]
    fn data_message_signs_and_verifies() {
        let reg = keys();
        let signer = reg.signer(SignerId(1));
        let v = reg.verifier();
        let m = DataMsg::sign(&signer, 7, 100, 512);
        assert_eq!(m.id, MessageId::new(NodeId(1), 7));
        assert!(m.verify(&v));
        assert!(m.gossip_entry().verify(&v));
        assert_eq!(m.ttl, 1);
        assert_eq!(m.with_ttl(2).ttl, 2);
    }

    #[test]
    fn tampering_any_signed_field_breaks_verification() {
        let reg = keys();
        let signer = reg.signer(SignerId(1));
        let v = reg.verifier();
        let m = DataMsg::sign(&signer, 7, 100, 512);
        let mut bad = m;
        bad.payload_id = 101;
        assert!(!bad.verify(&v));
        let mut bad = m;
        bad.payload_len = 513;
        assert!(!bad.verify(&v));
        let mut bad = m;
        bad.id.seq = 8;
        assert!(!bad.verify(&v));
        let mut bad = m;
        bad.id.origin = NodeId(2); // impersonation
        assert!(!bad.verify(&v));
        // TTL is NOT signed (it legitimately changes in flight).
        let bad = m.with_ttl(2);
        assert!(bad.verify(&v));
    }

    #[test]
    fn gossip_entry_tamper_detection() {
        let reg = keys();
        let m = DataMsg::sign(&reg.signer(SignerId(2)), 1, 5, 10);
        let v = reg.verifier();
        let e = m.gossip_entry();
        assert!(e.verify(&v));
        let mut bad = e;
        bad.id.origin = NodeId(3);
        assert!(!bad.verify(&v));
        let mut bad = e;
        bad.id_sig = Signature::zero();
        assert!(!bad.verify(&v));
    }

    #[test]
    fn beacon_signs_lists_and_detects_tampering() {
        let reg = keys();
        let signer = reg.signer(SignerId(0));
        let v = reg.verifier();
        let b = BeaconMsg::sign(
            &signer,
            OverlayRole::Dominator,
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(2)],
            vec![NodeId(3)],
        );
        assert!(b.verify(&v));
        let mut bad = b.clone();
        bad.suspects = vec![NodeId(1)]; // framing a different node
        assert!(!bad.verify(&v));
        let mut bad = b.clone();
        bad.role = OverlayRole::Passive;
        assert!(!bad.verify(&v));
        let mut bad = b.clone();
        bad.sender = NodeId(1);
        assert!(!bad.verify(&v));
    }

    #[test]
    fn wire_sizes_track_contents() {
        let reg = keys();
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 512);
        assert_eq!(WireMsg::Data(m).wire_size(), 106 + 512);
        let g = GossipMsg::of_entries(vec![m.gossip_entry(); 3]);
        assert_eq!(WireMsg::Gossip(g.clone()).wire_size(), 3 + 3 * 64);
        // Aggregation is the win: 3 entries in one packet vs 3 packets.
        let single = WireMsg::Gossip(GossipMsg::of_entries(vec![m.gossip_entry()]));
        assert!(g.wire_size() < 3 * single.wire_size());
        // Piggybacked beacons add their own wire size.
        let signer = reg.signer(SignerId(0));
        let b = BeaconMsg::sign(&signer, OverlayRole::Passive, vec![], vec![], vec![]);
        let with_beacon = GossipMsg {
            entries: vec![m.gossip_entry()],
            beacon: Some(b.clone()),
        };
        assert_eq!(with_beacon.wire_size(), 3 + 64 + b.wire_size());
        // A gossip entry is much smaller than the message it announces.
        assert!(GossipEntry::WIRE_SIZE * 4 < WireMsg::Data(m).wire_size());
    }

    #[test]
    fn headers_expose_the_anticipatable_fields() {
        let reg = keys();
        let m = DataMsg::sign(&reg.signer(SignerId(3)), 9, 5, 10);
        let h = m.header();
        assert_eq!(h.kind, MsgKind::Data);
        assert_eq!(h.origin, NodeId(3));
        assert_eq!(h.seq, 9);
        let e = m.gossip_entry();
        assert_eq!(e.header().kind, MsgKind::Gossip);
        assert_eq!(e.data_header().kind, MsgKind::Data);
        let r = RequestMsg {
            entry: e,
            target: NodeId(1),
        };
        assert_eq!(r.header().kind, MsgKind::RequestMsg);
        let f = FindMissingMsg {
            entry: e,
            target: NodeId(1),
            ttl: 2,
        };
        assert_eq!(f.header().kind, MsgKind::FindMissingMsg);
        assert_eq!(WireMsg::Data(m).kind(), "data");
        assert_eq!(WireMsg::Request(r).kind(), "request");
    }

    #[test]
    fn empty_gossip_has_no_header() {
        let g = WireMsg::Gossip(GossipMsg::of_entries(vec![]));
        assert!(g.header().is_none());
        // A beacon-only gossip takes its header from the beacon.
        let reg = keys();
        let b = BeaconMsg::sign(
            &reg.signer(SignerId(2)),
            OverlayRole::Passive,
            vec![],
            vec![],
            vec![],
        );
        let g = WireMsg::Gossip(GossipMsg {
            entries: vec![],
            beacon: Some(b),
        });
        assert_eq!(g.header().unwrap().kind, MsgKind::Beacon);
    }
}
