//! Protocol configuration, including the paper's §3.5 timing quantities.

use byzcast_fd::{MuteConfig, TrustConfig, VerboseConfig};
use byzcast_overlay::OverlayKind;
use byzcast_sim::SimDuration;

use crate::recovery::RecoveryConfig;
use crate::resources::ResourceConfig;
use crate::stability::PurgePolicy;

/// Configuration of a byzcast protocol node.
#[derive(Clone, Debug)]
pub struct ByzcastConfig {
    /// `gossip_timeout` — "the time between two consecutive gossip messages
    /// by a correct node".
    pub gossip_period: SimDuration,
    /// `request_timeout` — "the time between receiving a gossip message and
    /// sending a request message" (requests are batched on this delay).
    pub request_timeout: SimDuration,
    /// `rebroadcast_timeout` — "the time between getting a request message
    /// and sending the message that fits the requested message". Responders
    /// draw a uniform delay in `[0, rebroadcast_timeout)` and suppress their
    /// response if another holder's rebroadcast is overheard first.
    pub rebroadcast_timeout: SimDuration,
    /// How often overlay beacons are sent (and the overlay role recomputed).
    pub beacon_period: SimDuration,
    /// How often the failure detectors are ticked (deadline resolution).
    pub fd_tick: SimDuration,
    /// How long received message bodies are buffered before purging.
    pub purge_after: SimDuration,
    /// Whether bodies are purged by timeout alone (the paper's choice) or
    /// as soon as every neighbour is observed holding them (the paper's
    /// deferred "stability detection mechanism", with the timeout as
    /// backstop).
    pub purge_policy: PurgePolicy,
    /// Which overlay maintenance protocol to run.
    pub overlay: OverlayKind,
    /// MUTE failure detector parameters.
    pub mute: MuteConfig,
    /// VERBOSE failure detector parameters.
    pub verbose: VerboseConfig,
    /// TRUST failure detector parameters.
    pub trust: TrustConfig,
    /// Whether to aggregate gossip entries into one packet per period
    /// (`false` reproduces the unaggregated ablation of experiment R8).
    pub aggregate_gossip: bool,
    /// Maximum gossip entries per packet when aggregating.
    pub max_gossip_entries: usize,
    /// How many gossip rounds each received message is advertised for. The
    /// recovery window per message is roughly `gossip_advertise_rounds ×
    /// gossip_period`; a node re-hearing a gossip for a message it holds
    /// echoes it for one extra round (pseudo-code lines 34–37), so entries
    /// keep circulating where neighbours still miss them.
    pub gossip_advertise_rounds: u32,
    /// Maximum number of REQUEST_MSG retries per missing message.
    pub max_requests_per_msg: u32,
    /// Minimum spacing between retries for the same missing message.
    pub request_retry_spacing: SimDuration,
    /// A holder answers a given message id at most once per this window
    /// (response-implosion suppression). Historically this aliased
    /// `request_retry_spacing`, which silently swallowed legitimate retries:
    /// the responder's window starts at its (jittered) *serve* time, so a
    /// retry spaced exactly `request_retry_spacing` after the original
    /// request landed inside the window and was dropped. Must leave at least
    /// one `rebroadcast_timeout` of slack below `request_retry_spacing` so a
    /// properly spaced retry always clears the window.
    pub response_serve_window: SimDuration,
    /// Capacity (entries per LRU generation) of each node's signature-
    /// verification cache; `0` disables caching so every reception
    /// re-verifies. Caching never changes verdicts — only how often the
    /// underlying verifier runs — so protocol behaviour is identical either
    /// way.
    pub sig_cache_capacity: usize,
    /// Resource-governance envelope: per-neighbour admission and
    /// verification budgets, store caps, per-origin quotas. The default
    /// (every limit `0` = unlimited) reproduces ungoverned behaviour bit for
    /// bit.
    pub resources: ResourceConfig,
    /// Recovery-escalation envelope: widened `REQUEST` retries with capped
    /// exponential backoff, TTL-bumped `FIND_MISSING` floods, and immediate
    /// overlay re-election when a neighbour is indicted or its beacons
    /// expire. The default ([`RecoveryConfig::off`]) reproduces the
    /// pre-escalation protocol bit for bit.
    pub recovery: RecoveryConfig,
}

impl Default for ByzcastConfig {
    fn default() -> Self {
        ByzcastConfig {
            gossip_period: SimDuration::from_millis(1000),
            request_timeout: SimDuration::from_millis(500),
            rebroadcast_timeout: SimDuration::from_millis(50),
            beacon_period: SimDuration::from_millis(1000),
            fd_tick: SimDuration::from_millis(100),
            purge_after: SimDuration::from_secs(12),
            purge_policy: PurgePolicy::Timeout,
            overlay: OverlayKind::Cds,
            mute: MuteConfig::default(),
            verbose: VerboseConfig::default(),
            trust: TrustConfig::default(),
            aggregate_gossip: true,
            max_gossip_entries: 40,
            gossip_advertise_rounds: 3,
            max_requests_per_msg: 5,
            request_retry_spacing: SimDuration::from_millis(1000),
            response_serve_window: SimDuration::from_millis(500),
            sig_cache_capacity: 512,
            resources: ResourceConfig::unlimited(),
            recovery: RecoveryConfig::off(),
        }
    }
}

impl ByzcastConfig {
    /// The paper's `max_timeout = gossip_timeout + request_timeout +
    /// rebroadcast_timeout + 3β`, where β is the transmission latency.
    pub fn max_timeout(&self, beta: SimDuration) -> SimDuration {
        self.gossip_period
            + self.request_timeout
            + self.rebroadcast_timeout
            + beta.saturating_mul(3)
    }

    /// Validates cross-field constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.gossip_period == SimDuration::ZERO {
            return Err("gossip_period must be positive".into());
        }
        if self.beacon_period == SimDuration::ZERO {
            return Err("beacon_period must be positive".into());
        }
        if self.fd_tick == SimDuration::ZERO {
            return Err("fd_tick must be positive".into());
        }
        if self.max_gossip_entries == 0 {
            return Err("max_gossip_entries must be positive".into());
        }
        if self.gossip_advertise_rounds == 0 {
            return Err("gossip_advertise_rounds must be positive".into());
        }
        if self.purge_after < self.gossip_period {
            return Err("purge_after must be at least one gossip period".into());
        }
        if self.response_serve_window == SimDuration::ZERO {
            return Err("response_serve_window must be positive".into());
        }
        if self.response_serve_window + self.rebroadcast_timeout > self.request_retry_spacing {
            return Err(
                "response_serve_window + rebroadcast_timeout must not exceed \
                 request_retry_spacing, or properly spaced retries are \
                 swallowed by the responder's serve window"
                    .into(),
            );
        }
        if self.recovery.escalation_enabled() {
            if self.recovery.backoff_base == SimDuration::ZERO {
                return Err("recovery.backoff_base must be positive when escalating".into());
            }
            if self.recovery.backoff_cap < self.recovery.backoff_base {
                return Err("recovery.backoff_cap must be at least backoff_base".into());
            }
            if self.recovery.widen_fanout == 0 {
                return Err("recovery.widen_fanout must be positive when escalating".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ByzcastConfig::default().validate().is_ok());
    }

    #[test]
    fn max_timeout_formula() {
        let c = ByzcastConfig {
            gossip_period: SimDuration::from_millis(1000),
            request_timeout: SimDuration::from_millis(500),
            rebroadcast_timeout: SimDuration::from_millis(50),
            ..ByzcastConfig::default()
        };
        let beta = SimDuration::from_millis(10);
        assert_eq!(c.max_timeout(beta), SimDuration::from_millis(1580));
    }

    #[test]
    fn validation_catches_degenerate_values() {
        let base = ByzcastConfig::default();
        let bad = ByzcastConfig {
            gossip_period: SimDuration::ZERO,
            ..base.clone()
        };
        assert!(bad.validate().is_err());
        let bad = ByzcastConfig {
            max_gossip_entries: 0,
            ..base.clone()
        };
        assert!(bad.validate().is_err());
        let bad = ByzcastConfig {
            purge_after: SimDuration::from_millis(1),
            ..base.clone()
        };
        assert!(bad.validate().is_err());
        let bad = ByzcastConfig {
            fd_tick: SimDuration::ZERO,
            ..base
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_keeps_serve_window_clear_of_retry_spacing() {
        let base = ByzcastConfig::default();
        let bad = ByzcastConfig {
            response_serve_window: SimDuration::ZERO,
            ..base.clone()
        };
        assert!(bad.validate().is_err());
        // The historical aliasing — serve window == retry spacing — no
        // longer validates: it leaves no slack for the responder's jitter.
        let bad = ByzcastConfig {
            response_serve_window: base.request_retry_spacing,
            ..base.clone()
        };
        assert!(bad.validate().is_err());
        let ok = ByzcastConfig {
            response_serve_window: base.request_retry_spacing
                - base.rebroadcast_timeout
                - SimDuration::from_millis(1),
            ..base
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validation_checks_escalation_fields() {
        use crate::recovery::RecoveryConfig;
        let base = ByzcastConfig::default();
        let ok = ByzcastConfig {
            recovery: RecoveryConfig::standard(),
            ..base.clone()
        };
        assert!(ok.validate().is_ok());
        let bad = ByzcastConfig {
            recovery: RecoveryConfig {
                backoff_base: SimDuration::ZERO,
                ..RecoveryConfig::standard()
            },
            ..base.clone()
        };
        assert!(bad.validate().is_err());
        let bad = ByzcastConfig {
            recovery: RecoveryConfig {
                widen_fanout: 0,
                ..RecoveryConfig::standard()
            },
            ..base
        };
        assert!(bad.validate().is_err());
    }
}
