//! Recovery escalation and liveness-driven overlay repair.
//!
//! The paper's recovery chain (gossip digest → `REQUEST_MSG` →
//! `FIND_MISSING_MSG`) assumes a live dominator overlay: requests unicast to
//! the most recent gossiper and searches travel exactly two hops. On a
//! thin-chain topology — a cluster whose only surviving path is a single
//! marginal link — a crash next to the chain leaves both assumptions false:
//! the remembered gossiper may be the crashed node itself, and a two-hop
//! search along a stale overlay never crosses the chain.
//!
//! [`RecoveryConfig`] is the escalation envelope that repairs both legs:
//! after `escalate_after` unanswered unicast retries the originator widens
//! its requests to all trusted neighbours (non-dominators included, rotated
//! round-robin) and floods a TTL-bumped `FIND_MISSING`, under capped
//! exponential backoff; and on a fresh MUTE/TRUST indictment or beacon
//! expiry the node purges the dead neighbour from its table and re-runs the
//! overlay decision immediately instead of waiting out the beacon round.
//!
//! The default envelope ([`RecoveryConfig::off`]) disables every mechanism
//! and is byte-identical to the pre-escalation protocol —
//! `tests/perf_equivalence.rs` pins this. Escalated traffic is *not* exempt
//! from resource governance: every widened request and TTL-bumped search
//! still passes the receiving node's admission buckets and verification
//! budget (`crate::resources`), so a flooder cannot use the escalation path
//! to amplify itself.

use byzcast_sim::SimDuration;

/// The recovery-escalation envelope. All-off by default; see
/// [`RecoveryConfig::standard`] for the profile the chaos harness uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Unanswered unicast retries before requests widen beyond the
    /// remembered gossiper. `0` disables escalation entirely.
    pub escalate_after: u32,
    /// Widened retry rounds attempted past `escalate_after` (the total
    /// request budget per missing message becomes `escalate_after +
    /// max_escalations` when escalation is enabled).
    pub max_escalations: u32,
    /// Spacing before the first widened retry; doubles every round.
    pub backoff_base: SimDuration,
    /// Upper bound on the widened retry spacing.
    pub backoff_cap: SimDuration,
    /// Trusted neighbours targeted per widened round, rotated round-robin
    /// across rounds so successive retries try different neighbours.
    pub widen_fanout: usize,
    /// TTL of the escalated `FIND_MISSING` flood (the plain protocol always
    /// searches with TTL 2; values below 2 are treated as 2).
    pub find_ttl: u8,
    /// Purge freshly indicted or beacon-expired neighbours from the
    /// neighbour table and re-run the overlay decision immediately (at
    /// `fd_tick` granularity) instead of at the next beacon.
    pub reelect_on_indictment: bool,
}

impl RecoveryConfig {
    /// The disabled envelope: no escalation, no liveness-driven repair.
    /// Byte-identical to the protocol before this layer existed.
    pub fn off() -> Self {
        RecoveryConfig {
            escalate_after: 0,
            max_escalations: 0,
            backoff_base: SimDuration::ZERO,
            backoff_cap: SimDuration::ZERO,
            widen_fanout: 0,
            find_ttl: 0,
            reelect_on_indictment: false,
        }
    }

    /// The standard escalation profile: widen after 2 unanswered unicast
    /// retries, 4 widened rounds at 3 neighbours each with 1 s → 4 s
    /// backoff, TTL-3 searches, and immediate re-election on indictment.
    pub fn standard() -> Self {
        RecoveryConfig {
            escalate_after: 2,
            max_escalations: 4,
            backoff_base: SimDuration::from_millis(1000),
            backoff_cap: SimDuration::from_millis(4000),
            widen_fanout: 3,
            find_ttl: 3,
            reelect_on_indictment: true,
        }
    }

    /// Whether request escalation is active.
    pub fn escalation_enabled(&self) -> bool {
        self.escalate_after > 0 && self.max_escalations > 0
    }

    /// Whether any part of the envelope is active (drives whether a run
    /// reports [`RecoveryStats`]).
    pub fn enabled(&self) -> bool {
        self.escalation_enabled() || self.reelect_on_indictment
    }

    /// Spacing before widened round `level` (0-based): `backoff_base ×
    /// 2^level`, saturating, capped at `backoff_cap`.
    pub fn backoff(&self, level: u32) -> SimDuration {
        let micros = self
            .backoff_base
            .as_micros()
            .saturating_mul(1u64.checked_shl(level).unwrap_or(u64::MAX));
        SimDuration::from_micros(micros.min(self.backoff_cap.as_micros().max(1)))
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::off()
    }
}

/// Per-node recovery-escalation statistics, merged across correct nodes by
/// the harness (counters summed, peaks maxed) into the per-run JSONL.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Recovery requests originated on the normal unicast path.
    pub requests_originated: u64,
    /// Widened request frames sent to non-preferred neighbours.
    pub requests_widened: u64,
    /// TTL-bumped `FIND_MISSING` floods originated by escalation.
    pub finds_escalated: u64,
    /// Highest escalation level any missing message reached (1-based; 0
    /// means no message ever escalated).
    pub peak_escalation: u64,
    /// Immediate overlay re-elections triggered outside the beacon cycle.
    pub reelections: u64,
    /// Neighbour-table entries purged on indictment or beacon expiry.
    pub neighbors_purged: u64,
}

impl RecoveryStats {
    /// Adds `other`: counters sum, the escalation high-water takes the max.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.requests_originated += other.requests_originated;
        self.requests_widened += other.requests_widened;
        self.finds_escalated += other.finds_escalated;
        self.peak_escalation = self.peak_escalation.max(other.peak_escalation);
        self.reelections += other.reelections;
        self.neighbors_purged += other.neighbors_purged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let c = RecoveryConfig::default();
        assert_eq!(c, RecoveryConfig::off());
        assert!(!c.enabled());
        assert!(!c.escalation_enabled());
    }

    #[test]
    fn standard_is_enabled() {
        let c = RecoveryConfig::standard();
        assert!(c.enabled());
        assert!(c.escalation_enabled());
        assert!(c.find_ttl >= 2);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let c = RecoveryConfig::standard();
        assert_eq!(c.backoff(0), SimDuration::from_millis(1000));
        assert_eq!(c.backoff(1), SimDuration::from_millis(2000));
        assert_eq!(c.backoff(2), SimDuration::from_millis(4000));
        assert_eq!(c.backoff(3), SimDuration::from_millis(4000));
        assert_eq!(c.backoff(63), SimDuration::from_millis(4000));
        assert_eq!(c.backoff(64), SimDuration::from_millis(4000));
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_peak() {
        let mut a = RecoveryStats {
            requests_originated: 1,
            requests_widened: 2,
            finds_escalated: 3,
            peak_escalation: 2,
            reelections: 4,
            neighbors_purged: 5,
        };
        let b = RecoveryStats {
            requests_originated: 10,
            requests_widened: 20,
            finds_escalated: 30,
            peak_escalation: 1,
            reelections: 40,
            neighbors_purged: 50,
        };
        a.merge(&b);
        assert_eq!(a.requests_originated, 11);
        assert_eq!(a.requests_widened, 22);
        assert_eq!(a.finds_escalated, 33);
        assert_eq!(a.peak_escalation, 2);
        assert_eq!(a.reelections, 44);
        assert_eq!(a.neighbors_purged, 55);
    }
}
