//! The neighbour table: each node's two-hop view of the network, built from
//! periodic signed beacons.
//!
//! "Every correct overlay node periodically publishes this fact to its
//! neighbors, so in particular, each overlay node eventually knows about all
//! its correct overlay neighbors." Beacons carry the sender's overlay role,
//! its one-hop neighbour list (giving receivers a two-hop view, which the
//! Wu–Li rules need), the list of its active neighbours (the paper: "p
//! records for each neighbor the list of its active neighbors"), and its
//! current suspicions (consumed by the TRUST detector, not stored here).
//! Entries expire when beacons stop arriving, which is how departed or mute
//! neighbours fall out of the view.

use byzcast_sim::{NodeId, SimDuration, SimTime};

use crate::OverlayRole;

/// What one beacon told us about a neighbour.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NeighborInfo {
    /// When the most recent beacon from this neighbour arrived.
    pub last_heard: SimTime,
    /// The neighbour's advertised overlay role.
    pub role: OverlayRole,
    /// The neighbour's advertised Wu–Li *marked* flag (role-independent;
    /// what CDS pruning rules compare against).
    pub marked: bool,
    /// The neighbour's advertised one-hop neighbour set, sorted ascending
    /// and deduplicated (so membership is a binary search and iteration
    /// order matches the former `BTreeSet` representation exactly).
    pub neighbors: Vec<NodeId>,
    /// The neighbour's advertised *dominator* neighbours (used by the MIS+B
    /// bridge rule to find dominators two hops away). Sorted ascending and
    /// deduplicated.
    pub dominator_neighbors: Vec<NodeId>,
}

/// A node's view of its one-hop neighbourhood (and, through advertised
/// lists, its two-hop neighbourhood).
///
/// ```
/// use byzcast_overlay::{NeighborTable, OverlayRole};
/// use byzcast_sim::{NodeId, SimDuration, SimTime};
///
/// let mut table = NeighborTable::new(SimDuration::from_secs(3));
/// table.record_beacon(
///     SimTime::from_secs(1),
///     NodeId(2),
///     OverlayRole::Dominator,
///     [NodeId(1), NodeId(3)],
///     [NodeId(3)],
/// );
/// assert!(table.contains(NodeId(2)));
/// assert!(table.are_adjacent(NodeId(2), NodeId(3)));
/// table.prune(SimTime::from_secs(10)); // beacons stopped: entry expires
/// assert!(table.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct NeighborTable {
    timeout: SimDuration,
    /// Entries sorted by id (the former `BTreeMap` iteration order).
    /// Neighbourhoods are a few dozen entries, where a sorted vector's
    /// binary-search lookups and contiguous scans (`prune` runs once per
    /// beacon made) outpace a tree.
    entries: Vec<(NodeId, NeighborInfo)>,
}

impl NeighborTable {
    /// Creates a table whose entries expire `timeout` after their last
    /// beacon.
    pub fn new(timeout: SimDuration) -> Self {
        NeighborTable {
            timeout,
            entries: Vec::new(),
        }
    }

    /// The expiry timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Records a beacon heard from `from`.
    pub fn record_beacon(
        &mut self,
        now: SimTime,
        from: NodeId,
        role: OverlayRole,
        neighbors: impl IntoIterator<Item = NodeId>,
        dominator_neighbors: impl IntoIterator<Item = NodeId>,
    ) {
        self.record_beacon_marked(
            now,
            from,
            role,
            role.is_active(),
            neighbors,
            dominator_neighbors,
        );
    }

    /// Records a beacon carrying an explicit marked flag.
    pub fn record_beacon_marked(
        &mut self,
        now: SimTime,
        from: NodeId,
        role: OverlayRole,
        marked: bool,
        neighbors: impl IntoIterator<Item = NodeId>,
        dominator_neighbors: impl IntoIterator<Item = NodeId>,
    ) {
        let fill = |list: &mut Vec<NodeId>, items: &mut dyn Iterator<Item = NodeId>| {
            list.clear();
            list.extend(items);
            list.sort_unstable();
            list.dedup();
        };
        // Re-fill in place on refresh: a periodic beacon then costs no
        // allocation once the entry's lists have grown to their working size.
        let pos = match self.entries.binary_search_by_key(&from, |&(id, _)| id) {
            Ok(pos) => pos,
            Err(pos) => {
                self.entries.insert(
                    pos,
                    (
                        from,
                        NeighborInfo {
                            last_heard: now,
                            role,
                            marked,
                            neighbors: Vec::new(),
                            dominator_neighbors: Vec::new(),
                        },
                    ),
                );
                pos
            }
        };
        let info = &mut self.entries[pos].1;
        info.last_heard = now;
        info.role = role;
        info.marked = marked;
        fill(&mut info.neighbors, &mut neighbors.into_iter());
        fill(
            &mut info.dominator_neighbors,
            &mut dominator_neighbors.into_iter(),
        );
    }

    /// Drops entries whose last beacon is older than the timeout.
    pub fn prune(&mut self, now: SimTime) {
        let timeout = self.timeout;
        self.entries
            .retain(|(_, info)| now.saturating_since(info.last_heard) <= timeout);
    }

    /// Removes a neighbour outright (e.g. on conclusive misbehaviour).
    pub fn remove(&mut self, node: NodeId) {
        if let Ok(pos) = self.entries.binary_search_by_key(&node, |&(id, _)| id) {
            self.entries.remove(pos);
        }
    }

    /// The live neighbour ids, in increasing order.
    pub fn neighbor_ids(&self) -> Vec<NodeId> {
        self.entries.iter().map(|&(id, _)| id).collect()
    }

    /// Info for a specific neighbour.
    pub fn info(&self, node: NodeId) -> Option<&NeighborInfo> {
        self.entries
            .binary_search_by_key(&node, |&(id, _)| id)
            .ok()
            .map(|pos| &self.entries[pos].1)
    }

    /// Iterates `(id, info)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NeighborInfo)> {
        self.entries.iter().map(|(id, info)| (*id, info))
    }

    /// Whether `node` is currently a live neighbour.
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries
            .binary_search_by_key(&node, |&(id, _)| id)
            .is_ok()
    }

    /// Number of live neighbours.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether, according to advertised lists, `a` and `b` are adjacent.
    /// Falls back to `false` when neither endpoint's list is known.
    pub fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        if let Some(ia) = self.info(a) {
            if ia.neighbors.binary_search(&b).is_ok() {
                return true;
            }
        }
        if let Some(ib) = self.info(b) {
            if ib.neighbors.binary_search(&a).is_ok() {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> NeighborTable {
        NeighborTable::new(SimDuration::from_secs(3))
    }

    #[test]
    fn record_and_query() {
        let mut t = table();
        let now = SimTime::from_secs(1);
        t.record_beacon(
            now,
            NodeId(2),
            OverlayRole::Dominator,
            [NodeId(1), NodeId(3)],
            [NodeId(3)],
        );
        assert!(t.contains(NodeId(2)));
        assert_eq!(t.len(), 1);
        let info = t.info(NodeId(2)).unwrap();
        assert_eq!(info.role, OverlayRole::Dominator);
        assert!(info.neighbors.contains(&NodeId(3)));
        assert!(info.dominator_neighbors.contains(&NodeId(3)));
    }

    #[test]
    fn prune_evicts_stale_entries() {
        let mut t = table();
        t.record_beacon(
            SimTime::from_secs(1),
            NodeId(2),
            OverlayRole::Passive,
            [],
            [],
        );
        t.record_beacon(
            SimTime::from_secs(5),
            NodeId(3),
            OverlayRole::Passive,
            [],
            [],
        );
        t.prune(SimTime::from_secs(5));
        assert!(!t.contains(NodeId(2)), "stale entry survived");
        assert!(t.contains(NodeId(3)));
    }

    #[test]
    fn newer_beacon_replaces_older() {
        let mut t = table();
        t.record_beacon(
            SimTime::from_secs(1),
            NodeId(2),
            OverlayRole::Passive,
            [],
            [],
        );
        t.record_beacon(
            SimTime::from_secs(2),
            NodeId(2),
            OverlayRole::Bridge,
            [NodeId(9)],
            [],
        );
        let info = t.info(NodeId(2)).unwrap();
        assert_eq!(info.role, OverlayRole::Bridge);
        assert_eq!(info.last_heard, SimTime::from_secs(2));
        assert!(info.neighbors.contains(&NodeId(9)));
    }

    #[test]
    fn adjacency_uses_either_endpoints_list() {
        let mut t = table();
        let now = SimTime::from_secs(1);
        t.record_beacon(now, NodeId(2), OverlayRole::Passive, [NodeId(3)], []);
        t.record_beacon(now, NodeId(3), OverlayRole::Passive, [], []);
        assert!(t.are_adjacent(NodeId(2), NodeId(3)));
        assert!(t.are_adjacent(NodeId(3), NodeId(2)));
        assert!(!t.are_adjacent(NodeId(3), NodeId(4)));
    }

    #[test]
    fn neighbor_ids_are_sorted() {
        let mut t = table();
        let now = SimTime::from_secs(1);
        for id in [5u32, 1, 3] {
            t.record_beacon(now, NodeId(id), OverlayRole::Passive, [], []);
        }
        assert_eq!(t.neighbor_ids(), vec![NodeId(1), NodeId(3), NodeId(5)]);
    }

    #[test]
    fn remove_is_immediate() {
        let mut t = table();
        t.record_beacon(
            SimTime::from_secs(1),
            NodeId(2),
            OverlayRole::Passive,
            [],
            [],
        );
        t.remove(NodeId(2));
        assert!(t.is_empty());
    }
}
