//! # byzcast-overlay — trust-augmented overlay maintenance
//!
//! The broadcast protocol disseminates data messages along an *overlay* — "a
//! logical topology superimposed over the physical one" — so that "broadcast
//! messages are flooded only along the arcs of the overlay, thereby reducing
//! the number of messages sent as well as the number of collisions".
//!
//! The paper adapts the two self-stabilizing overlay maintenance protocols of
//! its reference \[21\] (generalizations of Wu & Li): the **Connected
//! Dominating Set** (CDS) and the **Maximal Independent Set with Bridges**
//! (MIS+B), with two Byzantine-specific changes:
//!
//! 1. the *goodness number* is replaced by the unforgeable node id ("since in
//!    a Byzantine environment nodes can lie about their goodness number"),
//!    and
//! 2. each node keeps an `overlay_trust` level per neighbour (from the TRUST
//!    failure detector plus second-hand reports), and untrusted nodes are
//!    never relied upon as overlay relays.
//!
//! "There is no global knowledge and each node must decide whether it
//! considers itself an overlay node or not": both protocols here are pure
//! local rules over a [`NeighborTable`] built from periodic signed beacons.
//! "In each computation step, each node makes a local computation about
//! whether it thinks it should be in the overlay or not, and then exchanges
//! its local information with its neighbors."
//!
//! [`analysis`] provides the graph checks used by tests and experiments R5/R6
//! (domination, connected cover of correct nodes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cds;
pub mod mis_bridges;
pub mod neighbors;

pub use cds::Cds;
pub use mis_bridges::MisBridges;
pub use neighbors::{NeighborInfo, NeighborTable};

use byzcast_fd::TrustLevel;
use byzcast_sim::NodeId;

/// A node's advertised overlay role, carried in beacons.
///
/// The paper's local state is active/passive; MIS+B additionally needs to
/// distinguish dominators from the bridges that connect them, so the active
/// state is split in two. [`OverlayRole::is_active`] recovers the paper's
/// binary view.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum OverlayRole {
    /// Not in the overlay.
    #[default]
    Passive,
    /// In the overlay as a dominating node (CDS member / MIS member).
    Dominator,
    /// In the overlay as a bridge connecting dominators (MIS+B only).
    Bridge,
}

impl OverlayRole {
    /// Whether the role means "in the overlay" (the paper's `active`).
    pub const fn is_active(self) -> bool {
        !matches!(self, OverlayRole::Passive)
    }
}

/// Read-only view of the local trust levels, as supplied by the TRUST
/// failure detector.
pub trait TrustView {
    /// The current trust level of `node`.
    fn level(&self, node: NodeId) -> TrustLevel;
}

/// A map-backed [`TrustView`] for tests and analyses; nodes absent from the
/// map are `Trusted`.
#[derive(Clone, Debug, Default)]
pub struct MapTrust(pub std::collections::HashMap<NodeId, TrustLevel>);

impl TrustView for MapTrust {
    fn level(&self, node: NodeId) -> TrustLevel {
        self.0.get(&node).copied().unwrap_or(TrustLevel::Trusted)
    }
}

/// The outcome of one overlay computation step.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OverlayDecision {
    /// The role this node now takes.
    pub role: OverlayRole,
    /// Whether the node satisfies the *marking* predicate (Wu–Li: two
    /// neighbours not adjacent to each other). Marking depends only on the
    /// topology — never on other nodes' roles — so neighbours can safely
    /// prune against advertised marked flags without the oscillation that
    /// pruning against (concurrently changing) roles causes.
    pub marked: bool,
}

impl OverlayDecision {
    /// A passive, unmarked decision.
    pub const fn passive() -> Self {
        OverlayDecision {
            role: OverlayRole::Passive,
            marked: false,
        }
    }
}

/// An overlay maintenance protocol: a deterministic local rule deciding this
/// node's [`OverlayRole`] from its neighbour table and trust levels.
pub trait OverlayProtocol {
    /// Recomputes this node's role. Pure with respect to its inputs; called
    /// periodically ("computation steps that are taken periodically and
    /// repeatedly by each node").
    fn decide(&self, me: NodeId, table: &NeighborTable, trust: &dyn TrustView) -> OverlayDecision;

    /// Short protocol name for reports ("cds" / "mis+b").
    fn name(&self) -> &'static str;
}

/// Which overlay maintenance protocol a run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverlayKind {
    /// Connected Dominating Set (Wu–Li marking + id-pruning).
    #[default]
    Cds,
    /// Maximal Independent Set plus bridges.
    MisBridges,
}

impl OverlayKind {
    /// Instantiates the protocol.
    pub fn build(self) -> Box<dyn OverlayProtocol + Send> {
        match self {
            OverlayKind::Cds => Box::new(Cds),
            OverlayKind::MisBridges => Box::new(MisBridges),
        }
    }

    /// Short name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            OverlayKind::Cds => "cds",
            OverlayKind::MisBridges => "mis+b",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_activity() {
        assert!(!OverlayRole::Passive.is_active());
        assert!(OverlayRole::Dominator.is_active());
        assert!(OverlayRole::Bridge.is_active());
    }

    #[test]
    fn kind_builds_named_protocols() {
        assert_eq!(OverlayKind::Cds.build().name(), "cds");
        assert_eq!(OverlayKind::MisBridges.build().name(), "mis+b");
        assert_eq!(OverlayKind::Cds.name(), "cds");
    }

    #[test]
    fn map_trust_defaults_to_trusted() {
        let mut m = MapTrust::default();
        assert_eq!(m.level(NodeId(1)), TrustLevel::Trusted);
        m.0.insert(NodeId(1), TrustLevel::Untrusted);
        assert_eq!(m.level(NodeId(1)), TrustLevel::Untrusted);
    }
}
