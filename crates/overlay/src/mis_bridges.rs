//! The trust-augmented Maximal Independent Set with Bridges protocol.
//!
//! The second overlay of the paper's reference \[21\]:
//!
//! * **MIS rule** — a node is a *dominator* iff no trusted neighbour with a
//!   higher id is a dominator (the id replaces the goodness number). Applied
//!   periodically this self-stabilizes to a maximal independent set, which
//!   dominates the graph but is not connected.
//! * **Bridge rules** — non-dominators connect the dominators:
//!   - *2-hop*: if two of my dominator neighbours are not adjacent, I am a
//!     candidate bridge between them; the highest-id common neighbour wins.
//!   - *3-hop*: if I have a dominator neighbour `a` and a trusted neighbour
//!     `q` that advertises a dominator neighbour `b` with `b ∉ N(a) ∪ {a}`
//!     and `b` not my own neighbour, then `(me, q)` form a two-bridge
//!     between `a` and `b`; I volunteer if I am the highest-id neighbour of
//!     `a` that can reach `q`.
//!
//! Trust filtering follows the CDS conventions: untrusted neighbours are
//! invisible; unknown neighbours cannot serve as dominators over us.

use std::collections::BTreeSet;

use byzcast_fd::TrustLevel;
use byzcast_sim::NodeId;

use crate::neighbors::NeighborTable;
use crate::{OverlayDecision, OverlayProtocol, OverlayRole, TrustView};

/// The MIS+B overlay rule (stateless local rule).
#[derive(Clone, Copy, Debug, Default)]
pub struct MisBridges;

impl MisBridges {
    fn trusted_neighbors(table: &NeighborTable, trust: &dyn TrustView) -> BTreeSet<NodeId> {
        table
            .iter()
            .filter(|(id, _)| trust.level(*id) == TrustLevel::Trusted)
            .map(|(id, _)| id)
            .collect()
    }

    fn dominator_neighbors(table: &NeighborTable, trusted: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
        trusted
            .iter()
            .copied()
            .filter(|&q| {
                table
                    .info(q)
                    .is_some_and(|i| i.role == OverlayRole::Dominator)
            })
            .collect()
    }
}

impl OverlayProtocol for MisBridges {
    fn decide(&self, me: NodeId, table: &NeighborTable, trust: &dyn TrustView) -> OverlayDecision {
        let trusted = Self::trusted_neighbors(table, trust);
        let dominators = Self::dominator_neighbors(table, &trusted);
        let decided = |role: OverlayRole| OverlayDecision {
            role,
            marked: role.is_active(),
        };

        // MIS rule: dominator iff no higher-id trusted dominator neighbour.
        if !dominators.iter().any(|&q| q > me) {
            return decided(OverlayRole::Dominator);
        }

        // Bridge rule, 2-hop: two non-adjacent dominator neighbours; the
        // highest-id common neighbour (as far as I can tell from advertised
        // lists) volunteers. I always know myself to be a common neighbour.
        let doms: Vec<NodeId> = dominators.iter().copied().collect();
        for (i, &a) in doms.iter().enumerate() {
            for &b in &doms[i + 1..] {
                if table.are_adjacent(a, b) {
                    continue;
                }
                // Defer only to a higher-id common neighbour that has
                // *actually volunteered* (is advertised active) — deferring
                // to a candidate that might itself defer leaves gaps.
                let better_candidate = trusted.iter().copied().any(|c| {
                    c > me
                        && table.info(c).is_some_and(|ic| {
                            ic.role.is_active()
                                && ic.neighbors.contains(&a)
                                && ic.neighbors.contains(&b)
                        })
                });
                if !better_candidate {
                    return decided(OverlayRole::Bridge);
                }
            }
        }

        // Bridge rule, 3-hop: dominator a —— me —— q —— dominator b.
        let my_nbrs: BTreeSet<NodeId> = table.neighbor_ids().into_iter().collect();
        for &a in &doms {
            let a_closed: BTreeSet<NodeId> = {
                let mut s: BTreeSet<NodeId> = table
                    .info(a)
                    .map(|i| i.neighbors.iter().copied().collect())
                    .unwrap_or_default();
                s.insert(a);
                s
            };
            for &q in &trusted {
                if q == a || dominators.contains(&q) {
                    continue;
                }
                let Some(iq) = table.info(q) else { continue };
                let far_dominator = iq
                    .dominator_neighbors
                    .iter()
                    .any(|&b| b != me && !a_closed.contains(&b) && !my_nbrs.contains(&b));
                if !far_dominator {
                    continue;
                }
                // Volunteer unless a higher-id trusted neighbour of mine,
                // already active, also neighbours both a and q (it bridges
                // instead).
                let better_candidate = trusted.iter().copied().any(|c| {
                    c > me
                        && c != q
                        && table.info(c).is_some_and(|ic| {
                            ic.role.is_active()
                                && ic.neighbors.contains(&a)
                                && ic.neighbors.contains(&q)
                        })
                });
                if !better_candidate {
                    return decided(OverlayRole::Bridge);
                }
            }
        }

        decided(OverlayRole::Passive)
    }

    fn name(&self) -> &'static str {
        "mis+b"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MapTrust;
    use byzcast_sim::{SimDuration, SimTime};

    /// Builds `me`'s table from an edge list, advertised roles, and
    /// advertised dominator-neighbour lists (derived from roles).
    fn view(me: u32, edges: &[(u32, u32)], roles: &[(u32, OverlayRole)]) -> NeighborTable {
        let now = SimTime::from_secs(1);
        let mut t = NeighborTable::new(SimDuration::from_secs(60));
        let role_of = |x: u32| {
            roles
                .iter()
                .find(|(id, _)| *id == x)
                .map(|(_, r)| *r)
                .unwrap_or(OverlayRole::Passive)
        };
        let neighbors_of = |x: u32| -> Vec<NodeId> {
            edges
                .iter()
                .filter_map(|&(a, b)| {
                    if a == x {
                        Some(NodeId(b))
                    } else if b == x {
                        Some(NodeId(a))
                    } else {
                        None
                    }
                })
                .collect()
        };
        for q in neighbors_of(me) {
            let dom_nbrs: Vec<NodeId> = neighbors_of(q.0)
                .into_iter()
                .filter(|n| role_of(n.0) == OverlayRole::Dominator)
                .collect();
            t.record_beacon(now, q, role_of(q.0), neighbors_of(q.0), dom_nbrs);
        }
        t
    }

    #[test]
    fn isolated_node_is_a_dominator() {
        let t = NeighborTable::new(SimDuration::from_secs(60));
        assert_eq!(
            MisBridges.decide(NodeId(0), &t, &MapTrust::default()).role,
            OverlayRole::Dominator
        );
    }

    #[test]
    fn highest_id_wins_the_mis() {
        // Edge 0-1, node 1 a dominator: node 0 yields.
        let t = view(0, &[(0, 1)], &[(1, OverlayRole::Dominator)]);
        assert_ne!(
            MisBridges.decide(NodeId(0), &t, &MapTrust::default()).role,
            OverlayRole::Dominator
        );
        // Node 1 sees passive node 0: it dominates.
        let t = view(1, &[(0, 1)], &[]);
        assert_eq!(
            MisBridges.decide(NodeId(1), &t, &MapTrust::default()).role,
            OverlayRole::Dominator
        );
    }

    #[test]
    fn lower_id_dominator_neighbor_does_not_demote() {
        // Node 5 with dominator neighbour 3 (lower id): 5 stays dominator.
        let t = view(5, &[(5, 3)], &[(3, OverlayRole::Dominator)]);
        assert_eq!(
            MisBridges.decide(NodeId(5), &t, &MapTrust::default()).role,
            OverlayRole::Dominator
        );
    }

    #[test]
    fn two_hop_bridge_between_nonadjacent_dominators() {
        // 7 --- 1 --- 9, dominators 7 and 9 not adjacent: 1 bridges.
        let edges = [(1, 7), (1, 9)];
        let roles = [(7, OverlayRole::Dominator), (9, OverlayRole::Dominator)];
        let t = view(1, &edges, &roles);
        assert_eq!(
            MisBridges.decide(NodeId(1), &t, &MapTrust::default()).role,
            OverlayRole::Bridge
        );
    }

    #[test]
    fn two_hop_bridge_defers_to_higher_id_active_common_neighbor() {
        // Both 1 and 2 connect dominators 7 and 9; 2 has the higher id.
        let edges = [(1, 7), (1, 9), (2, 7), (2, 9), (1, 2)];
        let roles = [(7, OverlayRole::Dominator), (9, OverlayRole::Dominator)];
        // Before 2 has volunteered, 1 must not defer to it (a candidate that
        // might itself defer leaves the dominators unbridged).
        let t1 = view(1, &edges, &roles);
        assert_eq!(
            MisBridges.decide(NodeId(1), &t1, &MapTrust::default()).role,
            OverlayRole::Bridge
        );
        // Once 2 advertises its bridge role, 1 withdraws.
        let roles_with_2 = [
            (7, OverlayRole::Dominator),
            (9, OverlayRole::Dominator),
            (2, OverlayRole::Bridge),
        ];
        let t1 = view(1, &edges, &roles_with_2);
        assert_eq!(
            MisBridges.decide(NodeId(1), &t1, &MapTrust::default()).role,
            OverlayRole::Passive
        );
        // And 2 itself keeps volunteering (no higher-id candidate).
        let t2 = view(2, &edges, &roles_with_2);
        assert_eq!(
            MisBridges.decide(NodeId(2), &t2, &MapTrust::default()).role,
            OverlayRole::Bridge
        );
    }

    #[test]
    fn three_hop_bridge_via_advertised_dominator_neighbors() {
        // 9(dom) --- 1 --- 2 --- 8(dom): 1 and 2 should both bridge.
        let edges = [(9, 1), (1, 2), (2, 8)];
        let roles = [(9, OverlayRole::Dominator), (8, OverlayRole::Dominator)];
        let t1 = view(1, &edges, &roles);
        assert_eq!(
            MisBridges.decide(NodeId(1), &t1, &MapTrust::default()).role,
            OverlayRole::Bridge
        );
        let t2 = view(2, &edges, &roles);
        assert_eq!(
            MisBridges.decide(NodeId(2), &t2, &MapTrust::default()).role,
            OverlayRole::Bridge
        );
    }

    #[test]
    fn adjacent_dominators_need_no_bridge() {
        // 7(dom) --- 1 --- 9(dom), and 7-9 adjacent: 1 stays passive.
        let edges = [(1, 7), (1, 9), (7, 9)];
        let roles = [(7, OverlayRole::Dominator), (9, OverlayRole::Dominator)];
        let t = view(1, &edges, &roles);
        assert_eq!(
            MisBridges.decide(NodeId(1), &t, &MapTrust::default()).role,
            OverlayRole::Passive
        );
    }

    #[test]
    fn untrusted_dominator_does_not_demote_us() {
        // 0's only higher-id dominator neighbour is untrusted: 0 dominates.
        let t = view(0, &[(0, 9)], &[(9, OverlayRole::Dominator)]);
        let mut trust = MapTrust::default();
        trust.0.insert(NodeId(9), TrustLevel::Untrusted);
        assert_eq!(
            MisBridges.decide(NodeId(0), &t, &trust).role,
            OverlayRole::Dominator
        );
    }

    #[test]
    fn unknown_dominator_does_not_demote_us() {
        let t = view(0, &[(0, 9)], &[(9, OverlayRole::Dominator)]);
        let mut trust = MapTrust::default();
        trust.0.insert(NodeId(9), TrustLevel::Unknown);
        assert_eq!(
            MisBridges.decide(NodeId(0), &t, &trust).role,
            OverlayRole::Dominator
        );
    }
}
