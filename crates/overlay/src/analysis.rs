//! Graph analyses for overlay quality.
//!
//! The overlay maintenance goal (paper §3.3): "eventually between every pair
//! of correct nodes p and q there will be a path consisting of overlay nodes
//! that do not exhibit externally visible Byzantine behavior", while "for
//! efficiency reasons, the overlay should consist of as few nodes as
//! possible". These functions measure exactly that on ground-truth
//! adjacency — used by overlay tests, experiment R5 (overlay quality) and R6
//! (self-healing after suspicion).

use std::collections::VecDeque;

use byzcast_sim::NodeId;

/// Whether the subgraph induced by `include` is connected (vacuously true
/// when fewer than two nodes are included).
pub fn induced_connected(adj: &[Vec<NodeId>], include: &[bool]) -> bool {
    let n = adj.len();
    assert_eq!(include.len(), n, "include mask length mismatch");
    let members: Vec<usize> = (0..n).filter(|&i| include[i]).collect();
    if members.len() < 2 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[members[0]] = true;
    queue.push_back(members[0]);
    let mut reached = 1;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            let vi = v.index();
            if include[vi] && !seen[vi] {
                seen[vi] = true;
                reached += 1;
                queue.push_back(vi);
            }
        }
    }
    reached == members.len()
}

/// Whether every node in `universe` is in `overlay` or adjacent to an
/// overlay member (the domination property).
pub fn dominates(adj: &[Vec<NodeId>], overlay: &[bool], universe: &[bool]) -> bool {
    let n = adj.len();
    assert_eq!(overlay.len(), n);
    assert_eq!(universe.len(), n);
    (0..n)
        .filter(|&i| universe[i])
        .all(|i| overlay[i] || adj[i].iter().any(|v| overlay[v.index()]))
}

/// The paper's combined overlay goal restricted to correct nodes: the
/// correct overlay members form a connected subgraph, and every correct node
/// is an overlay member or adjacent to a *correct* overlay member.
pub fn connected_correct_cover(adj: &[Vec<NodeId>], overlay: &[bool], correct: &[bool]) -> bool {
    let n = adj.len();
    let correct_overlay: Vec<bool> = (0..n).map(|i| overlay[i] && correct[i]).collect();
    if !induced_connected(adj, &correct_overlay) {
        return false;
    }
    (0..n)
        .filter(|&i| correct[i])
        .all(|i| correct_overlay[i] || adj[i].iter().any(|v| correct_overlay[v.index()]))
}

/// Hop distances from `source` in the full graph (`None` = unreachable).
pub fn bfs_distances(adj: &[Vec<NodeId>], source: NodeId) -> Vec<Option<u32>> {
    let n = adj.len();
    let mut dist = vec![None; n];
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source.index());
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for &v in &adj[u] {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v.index());
            }
        }
    }
    dist
}

/// Whether the subgraph induced by `include` is an independent set (no two
/// included nodes adjacent) — sanity check for the MIS core.
pub fn is_independent_set(adj: &[Vec<NodeId>], include: &[bool]) -> bool {
    (0..adj.len())
        .filter(|&i| include[i])
        .all(|i| adj[i].iter().all(|v| !include[v.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3.
    fn path4() -> Vec<Vec<NodeId>> {
        vec![
            vec![NodeId(1)],
            vec![NodeId(0), NodeId(2)],
            vec![NodeId(1), NodeId(3)],
            vec![NodeId(2)],
        ]
    }

    #[test]
    fn connectivity_of_induced_subgraphs() {
        let adj = path4();
        assert!(induced_connected(&adj, &[true, true, true, true]));
        assert!(!induced_connected(&adj, &[true, false, true, false]));
        assert!(induced_connected(&adj, &[true, false, false, false]));
        assert!(induced_connected(&adj, &[false, false, false, false]));
    }

    #[test]
    fn domination_checks() {
        let adj = path4();
        let all = [true; 4];
        // {1, 2} dominates the path.
        assert!(dominates(&adj, &[false, true, true, false], &all));
        // {0} does not reach 2 or 3.
        assert!(!dominates(&adj, &[true, false, false, false], &all));
        // Restricting the universe can make it pass.
        assert!(dominates(
            &adj,
            &[true, false, false, false],
            &[true, true, false, false]
        ));
    }

    #[test]
    fn connected_correct_cover_requires_both_properties() {
        let adj = path4();
        let correct = [true; 4];
        // {1, 2}: connected and dominating.
        assert!(connected_correct_cover(
            &adj,
            &[false, true, true, false],
            &correct
        ));
        // {0, 3}: dominating-ish but not connected.
        assert!(!connected_correct_cover(
            &adj,
            &[true, false, false, true],
            &correct
        ));
        // {1, 2} with node 2 Byzantine: correct overlay {1} no longer covers 3.
        assert!(!connected_correct_cover(
            &adj,
            &[false, true, true, false],
            &[true, true, false, true]
        ));
    }

    #[test]
    fn bfs_distances_on_path() {
        let adj = path4();
        let d = bfs_distances(&adj, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        // Disconnected graph.
        let adj2 = vec![vec![], vec![]];
        let d2 = bfs_distances(&adj2, NodeId(0));
        assert_eq!(d2, vec![Some(0), None]);
    }

    #[test]
    fn independence_check() {
        let adj = path4();
        assert!(is_independent_set(&adj, &[true, false, true, false]));
        assert!(!is_independent_set(&adj, &[true, true, false, false]));
        assert!(is_independent_set(&adj, &[false; 4]));
    }
}
