//! The trust-augmented Connected Dominating Set protocol.
//!
//! The classic Wu–Li construction, as self-stabilized in the paper's
//! reference \[21\], with ids as the (unforgeable) goodness number and trust
//! filtering:
//!
//! * **Marking rule** — a node marks itself if it has two neighbours that are
//!   not adjacent to each other (it may be needed to relay between them).
//! * **Pruning rule 1** — step out of the overlay if a single *trusted*,
//!   *marked* neighbour with a higher id covers the whole neighbourhood.
//! * **Pruning rule 2** — step out if two adjacent *trusted*, *marked*
//!   neighbours, both with higher ids, jointly cover the neighbourhood.
//!
//! Pruning compares against neighbours' advertised **marked** flags, not
//! their roles: marking depends only on the topology, so the comparison set
//! is stable and concurrent pruning rounds cannot disconnect the cover — the
//! original Wu–Li correctness argument. (Pruning against *roles* oscillates:
//! two nodes can each step out relying on the other's stale active state.)
//!
//! Trust filtering (the paper's `overlay_trust`): *untrusted* neighbours are
//! excluded entirely — we neither cover them nor let them cover us.
//! Neighbours of *unknown* trust must still be covered but are not accepted
//! as coverers; this is how "a Byzantine node can cause correct nodes to
//! unnecessarily join the overlay, but it cannot destroy the connectivity of
//! the overlay w.r.t. correct nodes".

use byzcast_fd::TrustLevel;
use byzcast_sim::NodeId;

use crate::neighbors::NeighborTable;
use crate::{OverlayDecision, OverlayProtocol, OverlayRole, TrustView};

/// The CDS overlay rule (stateless: a pure function of the local view).
#[derive(Clone, Copy, Debug, Default)]
pub struct Cds;

impl OverlayProtocol for Cds {
    fn decide(&self, me: NodeId, table: &NeighborTable, trust: &dyn TrustView) -> OverlayDecision {
        // Neighbour sets by trust level (sorted: table iteration is
        // id-ordered). Untrusted nodes do not exist for us.
        let mut must_cover: Vec<NodeId> = Vec::new(); // trusted + unknown
        let mut coverers: Vec<NodeId> = Vec::new(); // trusted only
        for (id, _info) in table.iter() {
            match trust.level(id) {
                TrustLevel::Untrusted => {}
                TrustLevel::Unknown => {
                    must_cover.push(id);
                }
                TrustLevel::Trusted => {
                    must_cover.push(id);
                    coverers.push(id);
                }
            }
        }
        if must_cover.len() < 2 {
            return OverlayDecision::passive(); // nothing to relay between
        }

        // Whether n is in the closed advertised neighbourhood N(q) ∪ {q} —
        // advertised lists are sorted, so membership is a binary search.
        let in_closed = |q: NodeId, nq: &[NodeId], n: NodeId| -> bool {
            n == q || nq.binary_search(&n).is_ok()
        };
        let advertised = |q: NodeId| -> &[NodeId] {
            table.info(q).map(|i| i.neighbors.as_slice()).unwrap_or(&[])
        };

        // Marking rule: two considered neighbours not adjacent to each other,
        // where adjacency (as in `NeighborTable::are_adjacent`) holds if
        // either endpoint advertises the other. Instead of probing all
        // d²/2 pairs, walk each neighbour u's sorted advertised list once
        // against the sorted `must_cover` to find the members u does *not*
        // advertise, and only those few candidates fall back to a reverse
        // lookup. In the dense (unmarked) case — the common one, and the one
        // with no early exit — this is O(Σ(d + |N(u)|)) instead of
        // O(d² log d).
        let marked = 'outer: {
            for &u in &must_cover {
                let nu = advertised(u);
                let mut i = 0;
                for &v in &must_cover {
                    if v == u {
                        continue;
                    }
                    while i < nu.len() && nu[i] < v {
                        i += 1;
                    }
                    let u_advertises_v = i < nu.len() && nu[i] == v;
                    if !u_advertises_v && advertised(v).binary_search(&u).is_err() {
                        break 'outer true; // the pair (u, v) is not adjacent
                    }
                }
            }
            false
        };
        // `decide` must stay a pure function of the table: debug-check the
        // walk against the naive pairwise rule.
        debug_assert_eq!(marked, {
            let mut naive = false;
            'naive: for (i, &u) in must_cover.iter().enumerate() {
                for &v in &must_cover[i + 1..] {
                    if !table.are_adjacent(u, v) {
                        naive = true;
                        break 'naive;
                    }
                }
            }
            naive
        });
        if !marked {
            return OverlayDecision::passive();
        }
        let pruned = OverlayDecision {
            role: OverlayRole::Passive,
            marked: true,
        };
        // Candidate coverers: trusted, advertised-*marked*, higher id.
        let marked_higher: Vec<NodeId> = coverers
            .iter()
            .copied()
            .filter(|&q| q > me)
            .filter(|&q| table.info(q).is_some_and(|i| i.marked))
            .collect();

        // Pruning rule 1.
        for &q in &marked_higher {
            let nq = advertised(q);
            if must_cover.iter().all(|&n| in_closed(q, nq, n)) {
                return pruned;
            }
        }
        // Pruning rule 2.
        for (i, &q) in marked_higher.iter().enumerate() {
            let nq = advertised(q);
            for &r in &marked_higher[i + 1..] {
                if !table.are_adjacent(q, r) {
                    continue;
                }
                let nr = advertised(r);
                if must_cover
                    .iter()
                    .all(|&n| in_closed(q, nq, n) || in_closed(r, nr, n))
                {
                    return pruned;
                }
            }
        }
        OverlayDecision {
            role: OverlayRole::Dominator,
            marked: true,
        }
    }

    fn name(&self) -> &'static str {
        "cds"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MapTrust;
    use byzcast_sim::{SimDuration, SimTime};

    /// Builds a table for node `me` in a given undirected edge list: `me`'s
    /// entry contains each neighbour with its own full adjacency advertised.
    fn view(me: u32, edges: &[(u32, u32)], roles: &[(u32, OverlayRole)]) -> NeighborTable {
        let now = SimTime::from_secs(1);
        let mut t = NeighborTable::new(SimDuration::from_secs(60));
        let neighbors_of = |x: u32| -> Vec<NodeId> {
            edges
                .iter()
                .filter_map(|&(a, b)| {
                    if a == x {
                        Some(NodeId(b))
                    } else if b == x {
                        Some(NodeId(a))
                    } else {
                        None
                    }
                })
                .collect()
        };
        for q in neighbors_of(me) {
            let role = roles
                .iter()
                .find(|(id, _)| *id == q.0)
                .map(|(_, r)| *r)
                .unwrap_or(OverlayRole::Dominator); // assume active by default
            t.record_beacon(now, q, role, neighbors_of(q.0), []);
        }
        t
    }

    #[test]
    fn isolated_or_single_neighbor_is_passive() {
        let t = NeighborTable::new(SimDuration::from_secs(60));
        assert_eq!(
            Cds.decide(NodeId(0), &t, &MapTrust::default()).role,
            OverlayRole::Passive
        );
        let t = view(0, &[(0, 1)], &[]);
        assert_eq!(
            Cds.decide(NodeId(0), &t, &MapTrust::default()).role,
            OverlayRole::Passive
        );
    }

    #[test]
    fn middle_of_a_path_marks_itself() {
        // 0 - 1 - 2: node 1 must relay.
        let t = view(1, &[(0, 1), (1, 2)], &[]);
        assert_eq!(
            Cds.decide(NodeId(1), &t, &MapTrust::default()).role,
            OverlayRole::Dominator
        );
    }

    #[test]
    fn triangle_members_are_passive() {
        // Complete triangle: nobody needs to relay.
        let edges = [(0, 1), (1, 2), (0, 2)];
        for me in 0..3 {
            let t = view(me, &edges, &[]);
            assert_eq!(
                Cds.decide(NodeId(me), &t, &MapTrust::default()).role,
                OverlayRole::Passive,
                "node {me}"
            );
        }
    }

    #[test]
    fn pruning_rule_1_yields_to_higher_id() {
        // Nodes 1 and 9 both see {0, 2}; 0-2 not adjacent. 9 has the higher
        // id and covers everything node 1 covers, so 1 prunes itself.
        let edges = [(1, 0), (1, 2), (9, 0), (9, 2), (1, 9)];
        let t1 = view(1, &edges, &[]);
        assert_eq!(
            Cds.decide(NodeId(1), &t1, &MapTrust::default()).role,
            OverlayRole::Passive
        );
        // And 9 stays (1 has a lower id, so it cannot prune 9).
        let t9 = view(9, &edges, &[]);
        assert_eq!(
            Cds.decide(NodeId(9), &t9, &MapTrust::default()).role,
            OverlayRole::Dominator
        );
    }

    #[test]
    fn pruning_rule_1_requires_active_coverer() {
        // Same topology, but 9 advertises passive: 1 must stay in.
        let edges = [(1, 0), (1, 2), (9, 0), (9, 2), (1, 9)];
        let t1 = view(1, &edges, &[(9, OverlayRole::Passive)]);
        assert_eq!(
            Cds.decide(NodeId(1), &t1, &MapTrust::default()).role,
            OverlayRole::Dominator
        );
    }

    #[test]
    fn pruning_rule_2_pair_coverage() {
        // Node 1 sees 0, 2, 8, 9. Higher-id pair (8, 9) is adjacent and
        // together covers {0, 2}: 1 prunes itself.
        let edges = [(1, 0), (1, 2), (1, 8), (1, 9), (8, 0), (9, 2), (8, 9)];
        let t1 = view(1, &edges, &[]);
        assert_eq!(
            Cds.decide(NodeId(1), &t1, &MapTrust::default()).role,
            OverlayRole::Passive
        );
    }

    #[test]
    fn untrusted_coverer_cannot_prune_us() {
        // As in rule-1 test, but 9 is untrusted: 1 must not rely on it.
        let edges = [(1, 0), (1, 2), (9, 0), (9, 2), (1, 9)];
        let t1 = view(1, &edges, &[]);
        let mut trust = MapTrust::default();
        trust.0.insert(NodeId(9), TrustLevel::Untrusted);
        assert_eq!(
            Cds.decide(NodeId(1), &t1, &trust).role,
            OverlayRole::Dominator
        );
    }

    #[test]
    fn unknown_coverer_cannot_prune_us_either() {
        let edges = [(1, 0), (1, 2), (9, 0), (9, 2), (1, 9)];
        let t1 = view(1, &edges, &[]);
        let mut trust = MapTrust::default();
        trust.0.insert(NodeId(9), TrustLevel::Unknown);
        assert_eq!(
            Cds.decide(NodeId(1), &t1, &trust).role,
            OverlayRole::Dominator
        );
    }

    #[test]
    fn untrusted_neighbors_need_no_coverage() {
        // 1's only non-adjacent pair involves untrusted 2: with 2 excluded,
        // remaining neighbours {0, 3} are adjacent, so 1 is passive.
        let edges = [(1, 0), (1, 2), (1, 3), (0, 3)];
        let t1 = view(1, &edges, &[]);
        let mut trust = MapTrust::default();
        trust.0.insert(NodeId(2), TrustLevel::Untrusted);
        assert_eq!(
            Cds.decide(NodeId(1), &t1, &trust).role,
            OverlayRole::Passive
        );
        // Without the distrust, 1 must be a dominator (0-2 and 2-3 gaps).
        assert_eq!(
            Cds.decide(NodeId(1), &t1, &MapTrust::default()).role,
            OverlayRole::Dominator
        );
    }
}
