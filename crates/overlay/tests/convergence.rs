//! Convergence tests for the overlay maintenance rules: iterate the local
//! computation steps — each node deciding from its neighbours' *previous*
//! round's advertisements, exactly like beacon exchange — until a fixpoint,
//! then check the global properties of §3.3 on the ground-truth graph:
//! the overlay dominates, its induced subgraph is connected (per
//! component), and under distrust the *correct* members still form a
//! connected cover.

use std::collections::BTreeSet;

use byzcast_fd::TrustLevel;
use byzcast_overlay::analysis::{bfs_distances, induced_connected};
use byzcast_overlay::{
    MapTrust, NeighborTable, OverlayKind, OverlayProtocol, OverlayRole, TrustView,
};
use byzcast_sim::{Field, NodeId, Position, SimDuration, SimRng, SimTime};

/// A synchronous-round simulator of the overlay maintenance protocol over a
/// known graph: every round, each node rebuilds its table from the others'
/// round-(k−1) state and recomputes its decision.
struct Rig {
    adj: Vec<Vec<NodeId>>,
    roles: Vec<OverlayRole>,
    marked: Vec<bool>,
    protocol: Box<dyn OverlayProtocol + Send>,
    trust: MapTrust,
}

impl Rig {
    fn new(adj: Vec<Vec<NodeId>>, kind: OverlayKind) -> Self {
        let n = adj.len();
        Rig {
            adj,
            roles: vec![OverlayRole::Passive; n],
            marked: vec![false; n],
            protocol: kind.build(),
            trust: MapTrust::default(),
        }
    }

    fn distrust(&mut self, node: NodeId) {
        self.trust.0.insert(node, TrustLevel::Untrusted);
    }

    fn table_for(&self, me: usize) -> NeighborTable {
        let now = SimTime::from_secs(1);
        let mut t = NeighborTable::new(SimDuration::from_secs(60));
        for &q in &self.adj[me] {
            let qi = q.index();
            let dom: Vec<NodeId> = self.adj[qi]
                .iter()
                .copied()
                .filter(|x| self.roles[x.index()] == OverlayRole::Dominator)
                .collect();
            t.record_beacon_marked(
                now,
                q,
                self.roles[qi],
                self.marked[qi],
                self.adj[qi].iter().copied(),
                dom,
            );
        }
        t
    }

    /// Runs one synchronous round; returns whether anything changed.
    fn step(&mut self) -> bool {
        let n = self.adj.len();
        let mut next_roles = self.roles.clone();
        let mut next_marked = self.marked.clone();
        for me in 0..n {
            let table = self.table_for(me);
            let d = self
                .protocol
                .decide(NodeId(me as u32), &table, &self.trust as &dyn TrustView);
            next_roles[me] = d.role;
            next_marked[me] = d.marked;
        }
        let changed = next_roles != self.roles || next_marked != self.marked;
        self.roles = next_roles;
        self.marked = next_marked;
        changed
    }

    /// Iterates to a fixpoint (or the round limit). Returns rounds used.
    fn converge(&mut self, max_rounds: usize) -> usize {
        for round in 1..=max_rounds {
            if !self.step() {
                return round;
            }
        }
        max_rounds
    }

    fn overlay_mask(&self) -> Vec<bool> {
        self.roles.iter().map(|r| r.is_active()).collect()
    }
}

fn disk_adjacency(positions: &[Position], range: f64) -> Vec<Vec<NodeId>> {
    (0..positions.len())
        .map(|i| {
            (0..positions.len())
                .filter(|&j| j != i && positions[i].distance(&positions[j]) <= range)
                .map(|j| NodeId(j as u32))
                .collect()
        })
        .collect()
}

fn random_connected(seed: u64, n: usize, side: f64, range: f64) -> Vec<Vec<NodeId>> {
    let mut rng = SimRng::new(seed);
    let field = Field::new(side, side);
    loop {
        let ps: Vec<Position> = (0..n).map(|_| field.random_position(&mut rng)).collect();
        let adj = disk_adjacency(&ps, range);
        if bfs_distances(&adj, NodeId(0)).iter().all(Option::is_some) {
            return adj;
        }
    }
}

/// Every node not in the overlay must have an overlay neighbour — except
/// nodes whose whole component needs no relay at all (their closed
/// neighbourhood covers the component, e.g. cliques).
fn assert_covered(adj: &[Vec<NodeId>], overlay: &[bool], exempt: &dyn Fn(usize) -> bool) {
    for (i, nbrs) in adj.iter().enumerate() {
        if overlay[i] || exempt(i) {
            continue;
        }
        assert!(
            nbrs.iter().any(|v| overlay[v.index()]),
            "node {i} has no overlay neighbour (overlay: {overlay:?})"
        );
    }
}

/// In a clique, no node needs a relay: everyone hears the originator.
fn in_clique(adj: &[Vec<NodeId>], i: usize) -> bool {
    let mut group: BTreeSet<usize> = adj[i].iter().map(|v| v.index()).collect();
    group.insert(i);
    group.iter().all(|&u| {
        let mut closed: BTreeSet<usize> = adj[u].iter().map(|v| v.index()).collect();
        closed.insert(u);
        group.is_subset(&closed)
    })
}

#[test]
fn cds_converges_on_random_graphs_and_covers() {
    for seed in [1u64, 2, 3, 4, 5] {
        let adj = random_connected(seed, 40, 1000.0, 250.0);
        let mut rig = Rig::new(adj.clone(), OverlayKind::Cds);
        let rounds = rig.converge(60);
        assert!(rounds < 60, "seed {seed}: CDS did not converge");
        let overlay = rig.overlay_mask();
        assert_covered(&adj, &overlay, &|i| in_clique(&adj, i));
        assert!(
            induced_connected(&adj, &overlay),
            "seed {seed}: CDS disconnected"
        );
        // Efficiency sanity: the overlay is a strict subset of the nodes.
        let size = overlay.iter().filter(|&&b| b).count();
        assert!(size < 40, "seed {seed}: everyone joined the overlay");
    }
}

#[test]
fn mis_bridges_converges_on_random_graphs_and_covers() {
    for seed in [1u64, 2, 3, 4, 5] {
        let adj = random_connected(seed, 40, 1000.0, 250.0);
        let mut rig = Rig::new(adj.clone(), OverlayKind::MisBridges);
        let rounds = rig.converge(80);
        assert!(rounds < 80, "seed {seed}: MIS+B did not converge");
        let overlay = rig.overlay_mask();
        // MIS dominates by construction: every node is a dominator or has a
        // dominator neighbour (no clique exemption needed).
        let dominators: Vec<bool> = rig
            .roles
            .iter()
            .map(|r| *r == OverlayRole::Dominator)
            .collect();
        for (i, nbrs) in adj.iter().enumerate() {
            assert!(
                dominators[i] || nbrs.iter().any(|v| dominators[v.index()]),
                "seed {seed}: node {i} undominated"
            );
        }
        // The dominator core is an independent set.
        for (i, nbrs) in adj.iter().enumerate() {
            if dominators[i] {
                assert!(
                    nbrs.iter().all(|v| !dominators[v.index()]),
                    "seed {seed}: adjacent dominators at {i}"
                );
            }
        }
        assert!(
            induced_connected(&adj, &overlay),
            "seed {seed}: MIS+B overlay disconnected"
        );
    }
}

#[test]
fn cds_routes_around_distrusted_high_id_node() {
    // Path 0-1-2-3-4 plus a "shortcut" node 9 adjacent to 1,2,3. With 9
    // trusted it wins the election around the middle; once node 2 distrusts
    // it... every node distrusts it here (simulating propagated suspicion):
    // the overlay must re-form from correct nodes only.
    let mut adj: Vec<Vec<NodeId>> = vec![
        vec![NodeId(1)],
        vec![NodeId(0), NodeId(2), NodeId(5)],
        vec![NodeId(1), NodeId(3), NodeId(5)],
        vec![NodeId(2), NodeId(4), NodeId(5)],
        vec![NodeId(3)],
        vec![NodeId(1), NodeId(2), NodeId(3)], // the high-id shortcut (index 5)
    ];
    // Rename 5 to keep ids contiguous in the rig: index 5 plays "node 9".
    let mut rig = Rig::new(adj.clone(), OverlayKind::Cds);
    let rounds = rig.converge(40);
    assert!(rounds < 40);
    let overlay_with = rig.overlay_mask();
    assert!(
        induced_connected(&adj, &overlay_with),
        "baseline overlay disconnected"
    );

    // Now everyone distrusts the shortcut node.
    let mut rig = Rig::new(adj.clone(), OverlayKind::Cds);
    rig.distrust(NodeId(5));
    let rounds = rig.converge(40);
    assert!(rounds < 40);
    let overlay = rig.overlay_mask();
    // The correct overlay (excluding node 5) must still connect and cover
    // the path: 1, 2, 3 must all be back in.
    let correct_overlay: Vec<bool> = overlay
        .iter()
        .enumerate()
        .map(|(i, &b)| b && i != 5)
        .collect();
    adj[5].clear(); // node 5's links do not count for correct connectivity
    for row in adj.iter_mut() {
        row.retain(|v| v.index() != 5);
    }
    assert!(correct_overlay[1] && correct_overlay[2] && correct_overlay[3]);
    assert!(induced_connected(&adj, &correct_overlay));
}

#[test]
fn fixpoints_are_stable_under_reordering() {
    // Determinism sanity: two different convergence runs over the same
    // graph reach the same fixpoint (the rules are functions of the view).
    let adj = random_connected(7, 30, 800.0, 250.0);
    let mut a = Rig::new(adj.clone(), OverlayKind::Cds);
    let mut b = Rig::new(adj, OverlayKind::Cds);
    a.converge(60);
    // b converges through a different path: pre-run two extra steps.
    b.step();
    b.converge(60);
    assert_eq!(a.roles, b.roles);
}

#[test]
fn cds_size_stays_reasonable_at_density() {
    // Ground-truth view, no trust filtering: the overlay fraction should
    // fall as density rises (more coverage alternatives → more pruning).
    for (n, expect_max_frac) in [(40usize, 0.70), (80, 0.60), (120, 0.55)] {
        let adj = random_connected(42, n, 1000.0, 250.0);
        let mut rig = Rig::new(adj.clone(), OverlayKind::Cds);
        rig.converge(80);
        let size = rig.overlay_mask().iter().filter(|&&b| b).count();
        let frac = size as f64 / n as f64;
        println!("n={n}: CDS size {size} ({frac:.2})");
        assert!(
            frac <= expect_max_frac,
            "n={n}: CDS fraction {frac:.2} too fat"
        );
    }
}
