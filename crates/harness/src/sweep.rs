//! Replication over seeds and aggregation of summaries.

use crate::scenario::ScenarioConfig;
use crate::summary::RunSummary;
use crate::workload::Workload;

/// Runs the scenario once per seed, returning all summaries.
pub fn replicate(config: &ScenarioConfig, workload: &Workload, seeds: &[u64]) -> Vec<RunSummary> {
    seeds
        .iter()
        .map(|&seed| {
            ScenarioConfig {
                seed,
                ..config.clone()
            }
            .run(workload)
        })
        .collect()
}

/// Averages a set of summaries (same scenario, different seeds) field-wise.
/// Counters become means; `overlay_ok` becomes "all replicas ok".
///
/// # Panics
///
/// Panics if `summaries` is empty.
pub fn aggregate(summaries: &[RunSummary]) -> RunSummary {
    assert!(!summaries.is_empty(), "cannot aggregate zero summaries");
    let k = summaries.len() as f64;
    let mean_f = |f: fn(&RunSummary) -> f64| summaries.iter().map(f).sum::<f64>() / k;
    let mean_u = |f: fn(&RunSummary) -> u64| {
        (summaries.iter().map(f).sum::<u64>() as f64 / k).round() as u64
    };
    RunSummary {
        protocol: summaries[0].protocol.clone(),
        n: summaries[0].n,
        correct: summaries[0].correct,
        messages: summaries[0].messages,
        delivery_ratio: mean_f(|s| s.delivery_ratio),
        min_delivery_ratio: summaries
            .iter()
            .map(|s| s.min_delivery_ratio)
            .fold(f64::INFINITY, f64::min),
        frames_sent: mean_u(|s| s.frames_sent),
        bytes_sent: mean_u(|s| s.bytes_sent),
        data_frames: mean_u(|s| s.data_frames),
        control_frames: mean_u(|s| s.control_frames),
        frames_per_delivery: mean_f(|s| {
            if s.frames_per_delivery.is_finite() {
                s.frames_per_delivery
            } else {
                0.0
            }
        }),
        mean_latency_s: mean_f(|s| s.mean_latency_s),
        p99_latency_s: mean_f(|s| s.p99_latency_s),
        max_latency_s: summaries
            .iter()
            .map(|s| s.max_latency_s)
            .fold(0.0, f64::max),
        collisions: mean_u(|s| s.collisions),
        noise_losses: mean_u(|s| s.noise_losses),
        overlay_size: summaries[0].overlay_size.map(|_| {
            (summaries
                .iter()
                .filter_map(|s| s.overlay_size)
                .sum::<usize>() as f64
                / k)
                .round() as usize
        }),
        overlay_ok: summaries[0]
            .overlay_ok
            .map(|_| summaries.iter().all(|s| s.overlay_ok.unwrap_or(false))),
        requests: mean_u(|s| s.requests),
        finds: mean_u(|s| s.finds),
        recoveries_served: mean_u(|s| s.recoveries_served),
        recovered: mean_u(|s| s.recovered),
        store_high_water: summaries
            .iter()
            .map(|s| s.store_high_water)
            .max()
            .unwrap_or(0),
        true_suspicions: mean_u(|s| s.true_suspicions),
        false_suspicions: mean_u(|s| s.false_suspicions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(ratio: f64, frames: u64) -> RunSummary {
        RunSummary {
            protocol: "x".into(),
            n: 10,
            correct: 10,
            messages: 5,
            delivery_ratio: ratio,
            min_delivery_ratio: ratio,
            frames_sent: frames,
            overlay_size: Some(4),
            overlay_ok: Some(true),
            ..RunSummary::default()
        }
    }

    #[test]
    fn aggregate_means_fields() {
        let agg = aggregate(&[summary(0.8, 100), summary(1.0, 200)]);
        assert!((agg.delivery_ratio - 0.9).abs() < 1e-9);
        assert_eq!(agg.frames_sent, 150);
        assert_eq!(agg.overlay_size, Some(4));
        assert_eq!(agg.overlay_ok, Some(true));
        assert!((agg.min_delivery_ratio - 0.8).abs() < 1e-9);
    }

    #[test]
    fn overlay_ok_requires_all_replicas() {
        let mut bad = summary(1.0, 100);
        bad.overlay_ok = Some(false);
        let agg = aggregate(&[summary(1.0, 100), bad]);
        assert_eq!(agg.overlay_ok, Some(false));
    }

    #[test]
    #[should_panic(expected = "zero summaries")]
    fn empty_aggregate_panics() {
        aggregate(&[]);
    }
}

#[cfg(test)]
mod replicate_tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use byzcast_sim::{Field, SimConfig};

    #[test]
    fn replicate_varies_only_the_seed() {
        let config = ScenarioConfig {
            n: 20,
            sim: SimConfig {
                field: Field::new(450.0, 450.0),
                ..SimConfig::default()
            },
            ..ScenarioConfig::default()
        };
        let w = Workload {
            count: 3,
            ..Workload::default()
        };
        let summaries = replicate(&config, &w, &[4, 5]);
        assert_eq!(summaries.len(), 2);
        // Different seeds almost surely differ in frame counts…
        assert_ne!(summaries[0].frames_sent, summaries[1].frames_sent);
        // …while replicating one seed reproduces exactly.
        let again = replicate(&config, &w, &[4]);
        assert_eq!(again[0].frames_sent, summaries[0].frames_sent);
        assert_eq!(again[0].delivery_ratio, summaries[0].delivery_ratio);
    }
}
