//! Replication over seeds and aggregation of summaries.

use byzcast_core::ProtocolCounters;

use crate::par::par_map;
use crate::scenario::ScenarioConfig;
use crate::summary::{mean, percentile, RunSummary};
use crate::workload::Workload;

/// Runs the scenario once per seed, returning all summaries.
pub fn replicate(config: &ScenarioConfig, workload: &Workload, seeds: &[u64]) -> Vec<RunSummary> {
    replicate_par(config, workload, seeds, 1)
}

/// Like [`replicate`], fanned out over up to `threads` worker threads.
///
/// Each seed gets its own scenario clone and simulator and results come
/// back in seed order, so the output is identical to [`replicate`] for any
/// thread count.
pub fn replicate_par(
    config: &ScenarioConfig,
    workload: &Workload,
    seeds: &[u64],
    threads: usize,
) -> Vec<RunSummary> {
    par_map(seeds, threads, |_, &seed| {
        ScenarioConfig {
            seed,
            ..config.clone()
        }
        .run(workload)
    })
}

/// Averages a set of summaries (same scenario, different seeds) field-wise.
/// Counters become means; `overlay_ok` becomes "all replicas ok".
///
/// Latency statistics are **pooled**: the per-run latency samples are
/// concatenated and the mean/p99 computed over the pool, which weights each
/// delivery equally (a mean of per-run p99s is biased when run sizes
/// differ). When no run carries samples (synthetic summaries), the mean of
/// the per-run fields is used as an approximation. `frames_per_delivery`
/// averages the *finite* replicas only — a run with zero deliveries has no
/// defined cost per delivery and must not drag the mean toward zero; the
/// aggregate is infinite only if every replica is.
///
/// # Panics
///
/// Panics if `summaries` is empty.
pub fn aggregate(summaries: &[RunSummary]) -> RunSummary {
    assert!(!summaries.is_empty(), "cannot aggregate zero summaries");
    let k = summaries.len() as f64;
    let mean_f = |f: fn(&RunSummary) -> f64| summaries.iter().map(f).sum::<f64>() / k;
    let mean_u = |f: fn(&RunSummary) -> u64| {
        (summaries.iter().map(f).sum::<u64>() as f64 / k).round() as u64
    };

    let finite_fpd: Vec<f64> = summaries
        .iter()
        .map(|s| s.frames_per_delivery)
        .filter(|v| v.is_finite())
        .collect();

    let mut pooled: Vec<f64> = summaries
        .iter()
        .flat_map(|s| s.latencies_s.iter().copied())
        .collect();
    pooled.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let (mean_latency_s, p99_latency_s) = if pooled.is_empty() {
        (mean_f(|s| s.mean_latency_s), mean_f(|s| s.p99_latency_s))
    } else {
        (mean(&pooled), percentile(&pooled, 0.99))
    };

    RunSummary {
        protocol: summaries[0].protocol.clone(),
        n: summaries[0].n,
        correct: summaries[0].correct,
        messages: summaries[0].messages,
        delivery_ratio: mean_f(|s| s.delivery_ratio),
        min_delivery_ratio: summaries
            .iter()
            .map(|s| s.min_delivery_ratio)
            .fold(f64::INFINITY, f64::min),
        frames_sent: mean_u(|s| s.frames_sent),
        bytes_sent: mean_u(|s| s.bytes_sent),
        data_frames: mean_u(|s| s.data_frames),
        control_frames: mean_u(|s| s.control_frames),
        frames_per_delivery: if finite_fpd.is_empty() {
            f64::INFINITY
        } else {
            finite_fpd.iter().sum::<f64>() / finite_fpd.len() as f64
        },
        mean_latency_s,
        p99_latency_s,
        max_latency_s: summaries
            .iter()
            .map(|s| s.max_latency_s)
            .fold(0.0, f64::max),
        collisions: mean_u(|s| s.collisions),
        noise_losses: mean_u(|s| s.noise_losses),
        overlay_size: summaries[0].overlay_size.map(|_| {
            (summaries
                .iter()
                .filter_map(|s| s.overlay_size)
                .sum::<usize>() as f64
                / k)
                .round() as usize
        }),
        overlay_ok: summaries[0]
            .overlay_ok
            .map(|_| summaries.iter().all(|s| s.overlay_ok.unwrap_or(false))),
        requests: mean_u(|s| s.requests),
        finds: mean_u(|s| s.finds),
        recoveries_served: mean_u(|s| s.recoveries_served),
        recovered: mean_u(|s| s.recovered),
        store_high_water: summaries
            .iter()
            .map(|s| s.store_high_water)
            .max()
            .unwrap_or(0),
        true_suspicions: mean_u(|s| s.true_suspicions),
        false_suspicions: mean_u(|s| s.false_suspicions),
        latencies_s: pooled,
        counters: mean_counters(summaries),
        frame_kinds: mean_frame_kinds(summaries),
        faults: sum_faults(summaries),
        oracle_outcomes: sum_oracle_outcomes(summaries),
        resources: merge_resources(summaries),
        recovery: merge_recovery(summaries),
    }
}

/// Recovery stats over the replicas — counters summed, the escalation
/// high-water maxed — present only when every replica ran with the
/// recovery envelope on.
fn merge_recovery(summaries: &[RunSummary]) -> Option<byzcast_core::RecoveryStats> {
    let mut total = byzcast_core::RecoveryStats::default();
    for s in summaries {
        total.merge(s.recovery.as_ref()?);
    }
    Some(total)
}

/// Resource stats over the replicas — counters summed, peaks maxed ("how
/// bad did it get across any replica") — present only when every replica
/// was governed.
fn merge_resources(summaries: &[RunSummary]) -> Option<byzcast_core::ResourceStats> {
    let mut total = byzcast_core::ResourceStats::default();
    for s in summaries {
        total.merge(s.resources.as_ref()?);
    }
    Some(total)
}

/// Total fault-event counts over the replicas, present only when every
/// replica ran a fault plan (totals, not means: "how many crashes did this
/// point survive" is the meaningful aggregate).
fn sum_faults(summaries: &[RunSummary]) -> Option<byzcast_sim::FaultStats> {
    let mut total = byzcast_sim::FaultStats::default();
    for s in summaries {
        let f = s.faults.as_ref()?;
        total.crashes += f.crashes;
        total.restarts += f.restarts;
        total.byz_activations += f.byz_activations;
        total.byz_deactivations += f.byz_deactivations;
        total.jam_starts += f.jam_starts;
        total.jam_ends += f.jam_ends;
        total.jam_losses += f.jam_losses;
        total.injections_dropped += f.injections_dropped;
    }
    Some(total)
}

/// Per-oracle violation totals, present only when every replica ran the
/// same oracle suite (in the same order).
fn sum_oracle_outcomes(summaries: &[RunSummary]) -> Vec<(String, u64)> {
    let first = &summaries[0].oracle_outcomes;
    if first.is_empty()
        || !summaries.iter().all(|s| {
            s.oracle_outcomes.len() == first.len()
                && s.oracle_outcomes
                    .iter()
                    .zip(first)
                    .all(|((a, _), (b, _))| a == b)
        })
    {
        return Vec::new();
    }
    first
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            (
                name.clone(),
                summaries.iter().map(|s| s.oracle_outcomes[i].1).sum(),
            )
        })
        .collect()
}

/// Field-wise mean of the protocol counters, present only when every
/// replica reported them.
fn mean_counters(summaries: &[RunSummary]) -> Option<ProtocolCounters> {
    let k = summaries.len() as f64;
    let mut total = ProtocolCounters::default();
    for s in summaries {
        total.merge(s.counters.as_ref()?);
    }
    let avg = |v: u64| (v as f64 / k).round() as u64;
    Some(ProtocolCounters {
        data_originated: avg(total.data_originated),
        data_forwards: avg(total.data_forwards),
        gossip_packets: avg(total.gossip_packets),
        gossip_entries: avg(total.gossip_entries),
        requests_sent: avg(total.requests_sent),
        finds_sent: avg(total.finds_sent),
        recoveries_served: avg(total.recoveries_served),
        recovered_via_request: avg(total.recovered_via_request),
        bad_signatures_seen: avg(total.bad_signatures_seen),
        beacons_sent: avg(total.beacons_sent),
        sig_cache_hits: avg(total.sig_cache_hits),
        sig_cache_misses: avg(total.sig_cache_misses),
    })
}

/// Per-kind mean of frames and bytes, over the replicas that saw the kind.
fn mean_frame_kinds(summaries: &[RunSummary]) -> Vec<(String, u64, u64)> {
    let k = summaries.len() as f64;
    let mut totals: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    for s in summaries {
        for (kind, frames, bytes) in &s.frame_kinds {
            let e = totals.entry(kind).or_insert((0, 0));
            e.0 += frames;
            e.1 += bytes;
        }
    }
    totals
        .into_iter()
        .map(|(kind, (frames, bytes))| {
            (
                kind.to_owned(),
                (frames as f64 / k).round() as u64,
                (bytes as f64 / k).round() as u64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(ratio: f64, frames: u64) -> RunSummary {
        RunSummary {
            protocol: "x".into(),
            n: 10,
            correct: 10,
            messages: 5,
            delivery_ratio: ratio,
            min_delivery_ratio: ratio,
            frames_sent: frames,
            overlay_size: Some(4),
            overlay_ok: Some(true),
            ..RunSummary::default()
        }
    }

    #[test]
    fn aggregate_means_fields() {
        let agg = aggregate(&[summary(0.8, 100), summary(1.0, 200)]);
        assert!((agg.delivery_ratio - 0.9).abs() < 1e-9);
        assert_eq!(agg.frames_sent, 150);
        assert_eq!(agg.overlay_size, Some(4));
        assert_eq!(agg.overlay_ok, Some(true));
        assert!((agg.min_delivery_ratio - 0.8).abs() < 1e-9);
    }

    #[test]
    fn overlay_ok_requires_all_replicas() {
        let mut bad = summary(1.0, 100);
        bad.overlay_ok = Some(false);
        let agg = aggregate(&[summary(1.0, 100), bad]);
        assert_eq!(agg.overlay_ok, Some(false));
    }

    #[test]
    fn infinite_frames_per_delivery_is_excluded_not_zeroed() {
        let mut dead = summary(0.0, 100);
        dead.frames_per_delivery = f64::INFINITY;
        let mut live = summary(1.0, 100);
        live.frames_per_delivery = 12.0;
        // One dead replica must not halve the cost estimate.
        let agg = aggregate(&[dead.clone(), live]);
        assert!((agg.frames_per_delivery - 12.0).abs() < 1e-9);
        // All-dead stays infinite (no deliveries ever happened).
        let agg = aggregate(&[dead.clone(), dead]);
        assert!(agg.frames_per_delivery.is_infinite());
    }

    #[test]
    fn latency_percentiles_are_pooled() {
        let mut a = summary(1.0, 100);
        a.latencies_s = vec![0.1, 0.2];
        a.p99_latency_s = 0.2;
        let mut b = summary(1.0, 100);
        b.latencies_s = (1..=98).map(|i| i as f64).collect();
        b.p99_latency_s = 98.0;
        let agg = aggregate(&[a, b]);
        // Mean of per-run p99s would be 49.1; the pooled p99 over all 100
        // samples is the 99th-ranked one.
        assert!((agg.p99_latency_s - 97.0).abs() < 1e-9);
        assert_eq!(agg.latencies_s.len(), 100);
        // Pooled mean weights every delivery equally.
        let expected = (0.1 + 0.2 + (1..=98).map(|i| i as f64).sum::<f64>()) / 100.0;
        assert!((agg.mean_latency_s - expected).abs() < 1e-9);
    }

    #[test]
    fn counters_require_every_replica() {
        let mut with = summary(1.0, 100);
        with.counters = Some(ProtocolCounters {
            gossip_packets: 10,
            ..ProtocolCounters::default()
        });
        let agg = aggregate(&[with.clone(), with.clone()]);
        assert_eq!(agg.counters.unwrap().gossip_packets, 10);
        let agg = aggregate(&[with, summary(1.0, 100)]);
        assert!(agg.counters.is_none());
    }

    #[test]
    #[should_panic(expected = "zero summaries")]
    fn empty_aggregate_panics() {
        aggregate(&[]);
    }
}

#[cfg(test)]
mod replicate_tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use byzcast_sim::{Field, SimConfig};

    fn config() -> ScenarioConfig {
        ScenarioConfig {
            n: 20,
            sim: SimConfig {
                field: Field::new(450.0, 450.0),
                ..SimConfig::default()
            },
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn replicate_varies_only_the_seed() {
        let config = config();
        let w = Workload {
            count: 3,
            ..Workload::default()
        };
        let summaries = replicate(&config, &w, &[4, 5]);
        assert_eq!(summaries.len(), 2);
        // Different seeds almost surely differ in frame counts…
        assert_ne!(summaries[0].frames_sent, summaries[1].frames_sent);
        // …while replicating one seed reproduces exactly.
        let again = replicate(&config, &w, &[4]);
        assert_eq!(again[0].frames_sent, summaries[0].frames_sent);
        assert_eq!(again[0].delivery_ratio, summaries[0].delivery_ratio);
    }

    #[test]
    fn parallel_replication_matches_serial() {
        let config = config();
        let w = Workload {
            count: 2,
            ..Workload::default()
        };
        let seeds = [4u64, 5, 6, 7];
        let serial = replicate(&config, &w, &seeds);
        for threads in [2, 4] {
            let parallel = replicate_par(&config, &w, &seeds, threads);
            assert_eq!(serial, parallel);
        }
    }
}
