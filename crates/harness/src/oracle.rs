//! Invariant oracles: machine-checked end-of-run properties of a broadcast
//! run.
//!
//! Each [`Oracle`] inspects a finished run (its metrics, its suspicion
//! history, the scenario that produced it) and reports [`Violation`]s of one
//! protocol property. The five standard oracles encode the guarantees the
//! paper claims:
//!
//! * **validity** — every payload delivered at a correct node was actually
//!   originated (signatures make fabrication impossible, §2.1's "a node
//!   cannot impersonate another node"), and not before its injection;
//! * **no-duplication** — no correct node accepts the same `(origin,
//!   payload)` twice;
//! * **semi-reliability** — on a static topology, every correct, up,
//!   connected node eventually accepts every message a correct node sent
//!   (the paper's semi-reliability property, modulo partitions);
//! * **fd-accuracy** — no correct node ends the run permanently suspecting
//!   another correct node (suspicions of correct nodes must be transient);
//! * **bounded-resources** — on governed runs, no correct node's observed
//!   peaks (store bodies/bytes, seen-ids, per-second verifications, request
//!   bookkeeping) ever exceed the configured [`ResourceConfig`] envelope,
//!   regardless of what the adversaries inject.
//!
//! Nodes that the fault plan crashes or flips Byzantine are excluded from
//! the obligations ("eligible" below means correct, never crashed, never
//! inside a Byzantine window); a deliberately sabotaged node ([`crate::
//! scenario::ScenarioConfig::sabotage`]) stays eligible on purpose — its
//! buggy deliveries are exactly what the oracles exist to catch.

use std::collections::{BTreeMap, BTreeSet};

use byzcast_core::{ResourceConfig, ResourceStats};
use byzcast_fd::interval::SuspicionEpisode;
use byzcast_sim::{FaultKind, Metrics, NodeId, Position, SimDuration, SimTime};

use crate::scenario::{byz_view, AdversaryKind, MobilityChoice, ProtocolChoice, ScenarioConfig};
use crate::summary::RunSummary;
use crate::workload::Workload;

/// One invariant violation, with enough detail to debug the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The violated oracle's name.
    pub oracle: &'static str,
    /// Human-readable description of the specific failure.
    pub detail: String,
}

/// Everything an oracle may inspect about a finished run.
pub struct OracleCtx<'a> {
    /// The scenario that produced the run.
    pub scenario: &'a ScenarioConfig,
    /// The workload driven through it.
    pub workload: &'a Workload,
    /// The simulator's end-of-run metrics.
    pub metrics: &'a Metrics,
    /// The run horizon (when the simulation stopped).
    pub horizon: SimTime,
    /// `eligible[i]` iff node `i` is correct, never crashed, and never
    /// Byzantine-flipped — the nodes the protocol's guarantees cover.
    pub eligible: Vec<bool>,
    /// All suspicion episodes observed by byzcast nodes (`None` when the
    /// protocol under test has no failure detector to audit).
    pub episodes: Option<Vec<SuspicionEpisode>>,
    /// Per-node resource-governance stats (`None` when the protocol under
    /// test has no governance layer to audit).
    pub resources: Option<Vec<(NodeId, ResourceStats)>>,
}

/// An end-of-run invariant check.
pub trait Oracle {
    /// Stable name, used in JSONL records and corpus `expect` lines.
    fn name(&self) -> &'static str;
    /// Checks the invariant, returning every violation found.
    fn check(&self, ctx: &OracleCtx<'_>) -> Vec<Violation>;
}

/// Nodes covered by the protocol's guarantees: correct per the scenario and
/// untouched by crash or Byzantine-window fault events.
pub fn eligible_mask(scenario: &ScenarioConfig) -> Vec<bool> {
    let mut eligible = scenario.correct_mask();
    for ev in scenario.fault_plan.events() {
        match ev.kind {
            FaultKind::Crash { node, .. } | FaultKind::SetByzantine { node, .. }
                if node.index() < eligible.len() =>
            {
                eligible[node.index()] = false;
            }
            _ => {}
        }
    }
    eligible
}

/// Validity: every delivery at an eligible node corresponds to a recorded
/// broadcast of the same `(origin, payload)`, no earlier than its injection.
///
/// Deliveries whose *origin* is adversarial are exempt: a Byzantine node
/// with a registered key can genuinely originate signed messages (the
/// flooder does exactly that), and accepting an authentic message is not a
/// validity violation — the paper's validity clause only promises that a
/// delivered message was really sent by its named sender, which signatures
/// enforce. Fabrications naming *correct* origins remain fully checked.
pub struct Validity;

impl Oracle for Validity {
    fn name(&self) -> &'static str {
        "validity"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Vec<Violation> {
        let origins: BTreeMap<(NodeId, u64), SimTime> = ctx
            .metrics
            .broadcasts
            .iter()
            .map(|b| ((b.origin, b.payload_id), b.time))
            .collect();
        let correct = ctx.scenario.correct_mask();
        let mut out = Vec::new();
        for d in &ctx.metrics.deliveries {
            if !ctx.eligible[d.node.index()] {
                continue;
            }
            if d.origin.index() < correct.len() && !correct[d.origin.index()] {
                continue;
            }
            match origins.get(&(d.origin, d.payload_id)) {
                None => out.push(Violation {
                    oracle: self.name(),
                    detail: format!(
                        "node {} delivered payload {} from {} that was never broadcast",
                        d.node.0, d.payload_id, d.origin.0
                    ),
                }),
                Some(&injected) if d.time < injected => out.push(Violation {
                    oracle: self.name(),
                    detail: format!(
                        "node {} delivered payload {} before its injection",
                        d.node.0, d.payload_id
                    ),
                }),
                Some(_) => {}
            }
        }
        out
    }
}

/// No-duplication: no eligible node delivers the same `(origin, payload)`
/// more than once.
pub struct NoDuplication;

impl Oracle for NoDuplication {
    fn name(&self) -> &'static str {
        "no-duplication"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Vec<Violation> {
        let mut counts: BTreeMap<(NodeId, NodeId, u64), u64> = BTreeMap::new();
        for d in &ctx.metrics.deliveries {
            if ctx.eligible[d.node.index()] {
                *counts.entry((d.node, d.origin, d.payload_id)).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .filter(|&(_, c)| c > 1)
            .map(|((node, origin, payload_id), c)| Violation {
                oracle: self.name(),
                detail: format!(
                    "node {} delivered payload {} from {} {c} times",
                    node.0, payload_id, origin.0
                ),
            })
            .collect()
    }
}

/// Semi-reliability: on a static topology, every eligible node reachable
/// from an eligible origin through eligible nodes accepts the origin's
/// messages, given enough drain time.
///
/// Obligations are skipped when they cannot be sound: mobile runs (the
/// ground graph changes), broadcasts injected before the last jam window
/// closed, runs whose jam never closes, broadcasts too close to the
/// horizon for the gossip-request recovery machinery to finish — and any
/// run with Byzantine adversaries. The paper's delivery guarantee presumes
/// enough correct coverage in the dominating set; a mute node that wins the
/// id-based dominator election legitimately black-holes its neighborhood's
/// recovery requests (the R4 worst case), so adversary-induced loss is
/// measured by the experiments, not asserted away here. Crash/restart and
/// jam fault plans, and sabotaged (locally buggy but non-adversarial)
/// nodes, remain fully checked.
///
/// Obligations run over *certain* links only (within the fading band's
/// inner radius, where reception is deterministic): a node whose only path
/// crosses the probabilistic fringe of the radio range may genuinely never
/// hear a frame, so the nominal disk graph over-approximates reachability.
pub struct SemiReliability;

/// The radius within which reception is certain (modulo collisions and
/// background noise): the fading band's inner edge. Connectivity claims
/// built on longer links are not sound obligations.
fn certain_radius(scenario: &ScenarioConfig) -> f64 {
    scenario.sim.radio.range_m * (1.0 - scenario.sim.radio.fading_fraction)
}

/// Adjacency restricted to certain links.
fn certain_adjacency(scenario: &ScenarioConfig, positions: &[Position]) -> Vec<Vec<NodeId>> {
    let r = certain_radius(scenario);
    (0..positions.len())
        .map(|i| {
            (0..positions.len())
                .filter(|&j| j != i && positions[i].distance(&positions[j]) <= r)
                .map(|j| NodeId(j as u32))
                .collect()
        })
        .collect()
}

/// Recovery time granted before an undelivered message counts as lost: the
/// recovery path pays a gossip (1 s) + request cycle per hop, so allow the
/// network diameter's worth with slack.
fn recovery_slack() -> SimDuration {
    SimDuration::from_secs(12)
}

impl Oracle for SemiReliability {
    fn name(&self) -> &'static str {
        "semi-reliability"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Vec<Violation> {
        if !matches!(
            ctx.scenario.mobility,
            MobilityChoice::Static
                | MobilityChoice::Grid
                | MobilityChoice::Line { .. }
                | MobilityChoice::Explicit(_)
        ) {
            return Vec::new();
        }
        if !ctx.scenario.adversary_set().is_empty() {
            return Vec::new();
        }
        // Jam windows suppress receptions arbitrarily; only obligations
        // injected after the last jam lifted are checkable. An unclosed jam
        // makes every obligation void.
        let mut jam_starts = BTreeSet::new();
        let mut jam_ends = BTreeSet::new();
        let mut last_jam_end = SimTime::ZERO;
        for ev in ctx.scenario.fault_plan.events() {
            match ev.kind {
                FaultKind::JamStart { id, .. } => {
                    jam_starts.insert(id);
                }
                FaultKind::JamEnd { id } => {
                    jam_ends.insert(id);
                    last_jam_end = last_jam_end.max(SimTime::ZERO + ev.at);
                }
                _ => {}
            }
        }
        if jam_starts.iter().any(|id| !jam_ends.contains(id)) {
            return Vec::new();
        }

        let positions = ctx.scenario.initial_positions();
        let adj = certain_adjacency(ctx.scenario, &positions);
        let mut out = Vec::new();
        for b in &ctx.metrics.broadcasts {
            if !ctx.eligible[b.origin.index()]
                || b.time < last_jam_end
                || ctx.horizon.saturating_since(b.time) < recovery_slack()
            {
                continue;
            }
            let reachable = reachable_from(b.origin, &adj, &ctx.eligible);
            let delivered: BTreeSet<NodeId> = ctx
                .metrics
                .deliveries_of(b.payload_id)
                .filter(|d| d.origin == b.origin)
                .map(|d| d.node)
                .collect();
            for node in reachable {
                if !delivered.contains(&node) {
                    out.push(Violation {
                        oracle: self.name(),
                        detail: format!(
                            "node {} never delivered payload {} from {} despite being \
                             connected and up",
                            node.0, b.payload_id, b.origin.0
                        ),
                    });
                }
            }
        }
        out
    }
}

/// BFS over the adjacency restricted to eligible nodes.
fn reachable_from(origin: NodeId, adj: &[Vec<NodeId>], eligible: &[bool]) -> Vec<NodeId> {
    if !eligible[origin.index()] {
        return Vec::new();
    }
    let mut seen = vec![false; adj.len()];
    seen[origin.index()] = true;
    let mut queue = vec![origin];
    let mut order = vec![origin];
    while let Some(u) = queue.pop() {
        for &v in &adj[u.index()] {
            if eligible[v.index()] && !seen[v.index()] {
                seen[v.index()] = true;
                queue.push(v);
                order.push(v);
            }
        }
    }
    order.sort_by_key(|id| id.0);
    order
}

/// FD accuracy: no eligible observer ends the run *permanently* suspecting
/// an eligible node. Transient suspicions (collision-induced, later
/// retracted) are the detectors working as designed; an episode still open
/// at the horizon after a grace period is a permanent false accusation.
///
/// Only static runs are checked, and only pairs within the certain radius:
/// a mobile node that wanders out of range — or a static pair whose link
/// sits in the probabilistic fading fringe — is *correctly* suspected, and
/// the retraction can only arrive once a beacon gets through again. Runs
/// with air-congesting adversaries (flooders, signature grinders) are
/// skipped entirely: a saturated medium destroys beacons for everyone, so
/// sustained suspicion of correct nodes is the detectors reporting the
/// truth about an unusable channel, not a mistake.
pub struct FdAccuracy;

/// Suspicions opened this close to the horizon have not had time to be
/// retracted and are not counted as permanent.
fn accuracy_grace() -> SimDuration {
    SimDuration::from_secs(10)
}

impl Oracle for FdAccuracy {
    fn name(&self) -> &'static str {
        "fd-accuracy"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Vec<Violation> {
        let Some(episodes) = &ctx.episodes else {
            return Vec::new();
        };
        if !matches!(
            ctx.scenario.mobility,
            MobilityChoice::Static
                | MobilityChoice::Grid
                | MobilityChoice::Line { .. }
                | MobilityChoice::Explicit(_)
        ) {
            return Vec::new();
        }
        let congested = ctx.scenario.adversary_set().iter().any(|&id| {
            ctx.scenario
                .adversary_kind_of(id)
                .is_some_and(AdversaryKind::congests_air)
        });
        if congested {
            return Vec::new();
        }
        let positions = ctx.scenario.initial_positions();
        let certain = certain_radius(ctx.scenario);
        episodes
            .iter()
            .filter(|ep| {
                ep.end == SimTime::MAX
                    && ctx.eligible[ep.observer.index()]
                    && ep.suspect.index() < ctx.eligible.len()
                    && ctx.eligible[ep.suspect.index()]
                    && positions[ep.observer.index()].distance(&positions[ep.suspect.index()])
                        <= certain
                    && ctx.horizon.saturating_since(ep.start) >= accuracy_grace()
            })
            .map(|ep| Violation {
                oracle: self.name(),
                detail: format!(
                    "correct node {} still suspects correct node {} at the horizon \
                     (since {:.1}s)",
                    ep.observer.0,
                    ep.suspect.0,
                    ep.start.saturating_since(SimTime::ZERO).as_secs_f64()
                ),
            })
            .collect()
    }
}

/// Bounded resources: on governed runs, no correct node's observed peaks
/// exceed the configured [`ResourceConfig`] envelope — the tentpole safety
/// property of the resource-governance layer. Each bound is checked only
/// when its limit is configured (non-zero); the oracle is vacuous on
/// ungoverned runs, so adding it changes nothing for existing scenarios.
///
/// The derived ceilings: store bodies/bytes and seen-ids are per-node hard
/// caps; the active-gossip and missing maps hold at most
/// `quota × n` entries (one quota per possible origin); and one calendar
/// second can see at most `rate + burst` admitted verifications *per
/// sender*, i.e. `(rate + burst) × (n − 1)` per node.
pub struct BoundedResources;

impl Oracle for BoundedResources {
    fn name(&self) -> &'static str {
        "bounded-resources"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Vec<Violation> {
        let cfg = &ctx.scenario.byzcast.resources;
        if cfg.is_unlimited() {
            return Vec::new();
        }
        let Some(resources) = &ctx.resources else {
            return Vec::new();
        };
        let correct = ctx.scenario.correct_mask();
        let n = ctx.scenario.n as u64;
        let mut out = Vec::new();
        let mut check = |node: NodeId, what: &str, peak: u64, limit: u64| {
            if limit != 0 && peak > limit {
                out.push(Violation {
                    oracle: "bounded-resources",
                    detail: format!("node {} {what} peaked at {peak} > {limit}", node.0),
                });
            }
        };
        for &(node, ref stats) in resources {
            if !correct[node.index()] {
                continue;
            }
            check(
                node,
                "store bodies",
                stats.peak_store_msgs,
                cfg.max_store_msgs as u64,
            );
            check(
                node,
                "store bytes",
                stats.peak_store_bytes,
                cfg.max_store_bytes as u64,
            );
            check(
                node,
                "seen ids",
                stats.peak_seen_ids,
                cfg.max_seen_ids as u64,
            );
            check(
                node,
                "active gossip",
                stats.peak_active_gossip,
                cfg.max_gossip_per_origin as u64 * n,
            );
            check(
                node,
                "missing entries",
                stats.peak_missing,
                cfg.max_missing_per_origin as u64 * n,
            );
            let verif_ceiling = if cfg.verifs_per_sec == 0 {
                0
            } else {
                let burst = if cfg.verif_burst == 0 {
                    cfg.verifs_per_sec
                } else {
                    cfg.verif_burst
                };
                u64::from(cfg.verifs_per_sec + burst) * n.saturating_sub(1)
            };
            check(
                node,
                "verifications/sec",
                stats.peak_verifs_per_sec,
                verif_ceiling,
            );
        }
        out
    }
}

/// A paper-derived resource envelope for chaos and DoS runs. Each bound is
/// a §3.5-style worst case for *correct* traffic with generous slack — a
/// correct neighbour sends a beacon and a gossip per second plus a handful
/// of data forwards and recovery frames, far under 50 frames/s — so
/// governance never drops legitimate traffic (the validity and
/// semi-reliability oracles stay binding) while sustained floods hit the
/// ceiling. `max_seen_ids` is sized so a run-length flood cannot evict a
/// legitimate delivered id (which would re-open the no-duplication hole).
pub fn paper_envelope() -> ResourceConfig {
    ResourceConfig {
        frames_per_sec: 50,
        frame_burst: 100,
        verifs_per_sec: 200,
        verif_burst: 400,
        max_store_msgs: 4096,
        max_store_bytes: 4 << 20,
        max_seen_ids: 32768,
        max_gossip_per_origin: 64,
        max_missing_per_origin: 64,
    }
}

/// The five standard oracles, in stable order.
pub fn standard_oracles() -> Vec<Box<dyn Oracle + Send + Sync>> {
    vec![
        Box::new(Validity),
        Box::new(NoDuplication),
        Box::new(SemiReliability),
        Box::new(FdAccuracy),
        Box::new(BoundedResources),
    ]
}

/// A finished, invariant-checked run.
#[derive(Clone, Debug)]
pub struct CheckedRun {
    /// The usual distilled summary, with [`RunSummary::oracle_outcomes`]
    /// filled in (and [`RunSummary::faults`] when a fault plan ran).
    pub summary: RunSummary,
    /// Every violation, in oracle order.
    pub violations: Vec<Violation>,
}

/// Builds the scenario's simulator, drives the workload through it, and
/// checks every oracle against the finished run.
///
/// # Panics
///
/// Panics if the scenario selects the multi-overlay baseline (oracles audit
/// the `WireMsg` protocols).
pub fn check_run(
    scenario: &ScenarioConfig,
    workload: &Workload,
    oracles: &[Box<dyn Oracle + Send + Sync>],
) -> CheckedRun {
    let mut sim = scenario.build_wire_sim();
    scenario.drive(&mut sim, workload);

    let (episodes, resources) = if scenario.protocol == ProtocolChoice::Byzcast {
        let mut all = Vec::new();
        let mut res = Vec::new();
        for i in 0..scenario.n as u32 {
            if let Some(node) = byz_view(&sim, NodeId(i)) {
                all.extend_from_slice(node.suspicion_log().episodes());
                res.push((NodeId(i), node.resource_stats()));
            }
        }
        (Some(all), Some(res))
    } else {
        (None, None)
    };

    let ctx = OracleCtx {
        scenario,
        workload,
        metrics: sim.metrics(),
        horizon: SimTime::ZERO + workload.horizon(),
        eligible: eligible_mask(scenario),
        episodes,
        resources,
    };
    let mut violations = Vec::new();
    let mut outcomes = Vec::new();
    for oracle in oracles {
        let found = oracle.check(&ctx);
        outcomes.push((oracle.name().to_owned(), found.len() as u64));
        violations.extend(found);
    }

    let mut summary = scenario.summarize_wire(&sim);
    summary.oracle_outcomes = outcomes;
    CheckedRun {
        summary,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_adversary::SabotageKind;
    use byzcast_sim::{Field, SimConfig};

    fn scenario(n: usize) -> ScenarioConfig {
        ScenarioConfig {
            seed: 11,
            n,
            sim: SimConfig {
                field: Field::new(500.0, 500.0),
                ..SimConfig::default()
            },
            ..ScenarioConfig::default()
        }
    }

    fn workload() -> Workload {
        Workload {
            count: 3,
            start: SimDuration::from_secs(4),
            interval: SimDuration::from_secs(1),
            drain: SimDuration::from_secs(15),
            ..Workload::default()
        }
    }

    #[test]
    fn clean_run_passes_every_oracle() {
        let checked = check_run(&scenario(25), &workload(), &standard_oracles());
        assert!(
            checked.violations.is_empty(),
            "unexpected violations: {:?}",
            checked.violations
        );
        assert_eq!(checked.summary.oracle_outcomes.len(), 5);
        assert!(checked.summary.oracle_outcomes.iter().all(|(_, c)| *c == 0));
    }

    #[test]
    fn double_deliver_sabotage_trips_no_duplication() {
        let s = ScenarioConfig {
            sabotage: Some((NodeId(3), SabotageKind::DoubleDeliver)),
            ..scenario(25)
        };
        let checked = check_run(&s, &workload(), &standard_oracles());
        assert!(
            checked
                .violations
                .iter()
                .any(|v| v.oracle == "no-duplication"),
            "sabotage went undetected: {:?}",
            checked.violations
        );
    }

    #[test]
    fn phantom_deliver_sabotage_trips_validity() {
        let s = ScenarioConfig {
            sabotage: Some((NodeId(3), SabotageKind::PhantomDeliver)),
            ..scenario(25)
        };
        let checked = check_run(&s, &workload(), &standard_oracles());
        assert!(
            checked.violations.iter().any(|v| v.oracle == "validity"),
            "phantom delivery went undetected: {:?}",
            checked.violations
        );
    }

    #[test]
    fn drop_deliver_sabotage_trips_semi_reliability() {
        let s = ScenarioConfig {
            sabotage: Some((NodeId(3), SabotageKind::DropDeliver)),
            ..scenario(25)
        };
        let checked = check_run(&s, &workload(), &standard_oracles());
        assert!(
            checked
                .violations
                .iter()
                .any(|v| v.oracle == "semi-reliability"),
            "dropped deliveries went undetected: {:?}",
            checked.violations
        );
    }

    #[test]
    fn governed_flooded_run_stays_inside_the_envelope() {
        use crate::scenario::AdversaryKind;
        let mut s = scenario(20);
        s.byzcast.resources = paper_envelope();
        s.adversary = Some(AdversaryKind::Flooder {
            period: SimDuration::from_millis(200),
            per_tick: 4,
            payload_bytes: 256,
        });
        s.adversary_count = 2;
        let checked = check_run(&s, &workload(), &standard_oracles());
        assert!(
            checked.violations.is_empty(),
            "governed flood violated an oracle: {:?}",
            checked.violations
        );
        let res = checked
            .summary
            .resources
            .expect("governed runs report resource stats");
        assert!(res.frames_admitted > 0);
        assert!(
            res.peak_store_msgs <= paper_envelope().max_store_msgs as u64,
            "store peak {} above the cap",
            res.peak_store_msgs
        );
    }

    #[test]
    fn ungoverned_runs_report_no_resource_stats() {
        let checked = check_run(&scenario(25), &workload(), &standard_oracles());
        assert!(checked.summary.resources.is_none());
        assert!(checked
            .summary
            .oracle_outcomes
            .iter()
            .any(|(name, count)| name == "bounded-resources" && *count == 0));
    }

    #[test]
    fn crashed_nodes_are_not_obligated() {
        let mut s = scenario(25);
        s.fault_plan.push(
            SimDuration::from_secs(2),
            FaultKind::Crash {
                node: NodeId(5),
                retain_state: false,
            },
        );
        let eligible = eligible_mask(&s);
        assert!(!eligible[5]);
        assert!(eligible[4]);
    }
}
