//! Invariant oracles: machine-checked end-of-run properties of a broadcast
//! run.
//!
//! Each [`Oracle`] inspects a finished run (its metrics, its suspicion
//! history, the scenario that produced it) and reports [`Violation`]s of one
//! protocol property. The four standard oracles encode the guarantees the
//! paper claims:
//!
//! * **validity** — every payload delivered at a correct node was actually
//!   originated (signatures make fabrication impossible, §2.1's "a node
//!   cannot impersonate another node"), and not before its injection;
//! * **no-duplication** — no correct node accepts the same `(origin,
//!   payload)` twice;
//! * **semi-reliability** — on a static topology, every correct, up,
//!   connected node eventually accepts every message a correct node sent
//!   (the paper's semi-reliability property, modulo partitions);
//! * **fd-accuracy** — no correct node ends the run permanently suspecting
//!   another correct node (suspicions of correct nodes must be transient).
//!
//! Nodes that the fault plan crashes or flips Byzantine are excluded from
//! the obligations ("eligible" below means correct, never crashed, never
//! inside a Byzantine window); a deliberately sabotaged node ([`crate::
//! scenario::ScenarioConfig::sabotage`]) stays eligible on purpose — its
//! buggy deliveries are exactly what the oracles exist to catch.

use std::collections::{BTreeMap, BTreeSet};

use byzcast_fd::interval::SuspicionEpisode;
use byzcast_sim::{FaultKind, Metrics, NodeId, Position, SimDuration, SimTime};

use crate::scenario::{byz_view, MobilityChoice, ProtocolChoice, ScenarioConfig};
use crate::summary::RunSummary;
use crate::workload::Workload;

/// One invariant violation, with enough detail to debug the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The violated oracle's name.
    pub oracle: &'static str,
    /// Human-readable description of the specific failure.
    pub detail: String,
}

/// Everything an oracle may inspect about a finished run.
pub struct OracleCtx<'a> {
    /// The scenario that produced the run.
    pub scenario: &'a ScenarioConfig,
    /// The workload driven through it.
    pub workload: &'a Workload,
    /// The simulator's end-of-run metrics.
    pub metrics: &'a Metrics,
    /// The run horizon (when the simulation stopped).
    pub horizon: SimTime,
    /// `eligible[i]` iff node `i` is correct, never crashed, and never
    /// Byzantine-flipped — the nodes the protocol's guarantees cover.
    pub eligible: Vec<bool>,
    /// All suspicion episodes observed by byzcast nodes (`None` when the
    /// protocol under test has no failure detector to audit).
    pub episodes: Option<Vec<SuspicionEpisode>>,
}

/// An end-of-run invariant check.
pub trait Oracle {
    /// Stable name, used in JSONL records and corpus `expect` lines.
    fn name(&self) -> &'static str;
    /// Checks the invariant, returning every violation found.
    fn check(&self, ctx: &OracleCtx<'_>) -> Vec<Violation>;
}

/// Nodes covered by the protocol's guarantees: correct per the scenario and
/// untouched by crash or Byzantine-window fault events.
pub fn eligible_mask(scenario: &ScenarioConfig) -> Vec<bool> {
    let mut eligible = scenario.correct_mask();
    for ev in scenario.fault_plan.events() {
        match ev.kind {
            FaultKind::Crash { node, .. } | FaultKind::SetByzantine { node, .. }
                if node.index() < eligible.len() =>
            {
                eligible[node.index()] = false;
            }
            _ => {}
        }
    }
    eligible
}

/// Validity: every delivery at an eligible node corresponds to a recorded
/// broadcast of the same `(origin, payload)`, no earlier than its injection.
pub struct Validity;

impl Oracle for Validity {
    fn name(&self) -> &'static str {
        "validity"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Vec<Violation> {
        let origins: BTreeMap<(NodeId, u64), SimTime> = ctx
            .metrics
            .broadcasts
            .iter()
            .map(|b| ((b.origin, b.payload_id), b.time))
            .collect();
        let mut out = Vec::new();
        for d in &ctx.metrics.deliveries {
            if !ctx.eligible[d.node.index()] {
                continue;
            }
            match origins.get(&(d.origin, d.payload_id)) {
                None => out.push(Violation {
                    oracle: self.name(),
                    detail: format!(
                        "node {} delivered payload {} from {} that was never broadcast",
                        d.node.0, d.payload_id, d.origin.0
                    ),
                }),
                Some(&injected) if d.time < injected => out.push(Violation {
                    oracle: self.name(),
                    detail: format!(
                        "node {} delivered payload {} before its injection",
                        d.node.0, d.payload_id
                    ),
                }),
                Some(_) => {}
            }
        }
        out
    }
}

/// No-duplication: no eligible node delivers the same `(origin, payload)`
/// more than once.
pub struct NoDuplication;

impl Oracle for NoDuplication {
    fn name(&self) -> &'static str {
        "no-duplication"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Vec<Violation> {
        let mut counts: BTreeMap<(NodeId, NodeId, u64), u64> = BTreeMap::new();
        for d in &ctx.metrics.deliveries {
            if ctx.eligible[d.node.index()] {
                *counts.entry((d.node, d.origin, d.payload_id)).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .filter(|&(_, c)| c > 1)
            .map(|((node, origin, payload_id), c)| Violation {
                oracle: self.name(),
                detail: format!(
                    "node {} delivered payload {} from {} {c} times",
                    node.0, payload_id, origin.0
                ),
            })
            .collect()
    }
}

/// Semi-reliability: on a static topology, every eligible node reachable
/// from an eligible origin through eligible nodes accepts the origin's
/// messages, given enough drain time.
///
/// Obligations are skipped when they cannot be sound: mobile runs (the
/// ground graph changes), broadcasts injected before the last jam window
/// closed, runs whose jam never closes, broadcasts too close to the
/// horizon for the gossip-request recovery machinery to finish — and any
/// run with Byzantine adversaries. The paper's delivery guarantee presumes
/// enough correct coverage in the dominating set; a mute node that wins the
/// id-based dominator election legitimately black-holes its neighborhood's
/// recovery requests (the R4 worst case), so adversary-induced loss is
/// measured by the experiments, not asserted away here. Crash/restart and
/// jam fault plans, and sabotaged (locally buggy but non-adversarial)
/// nodes, remain fully checked.
///
/// Obligations run over *certain* links only (within the fading band's
/// inner radius, where reception is deterministic): a node whose only path
/// crosses the probabilistic fringe of the radio range may genuinely never
/// hear a frame, so the nominal disk graph over-approximates reachability.
pub struct SemiReliability;

/// The radius within which reception is certain (modulo collisions and
/// background noise): the fading band's inner edge. Connectivity claims
/// built on longer links are not sound obligations.
fn certain_radius(scenario: &ScenarioConfig) -> f64 {
    scenario.sim.radio.range_m * (1.0 - scenario.sim.radio.fading_fraction)
}

/// Adjacency restricted to certain links.
fn certain_adjacency(scenario: &ScenarioConfig, positions: &[Position]) -> Vec<Vec<NodeId>> {
    let r = certain_radius(scenario);
    (0..positions.len())
        .map(|i| {
            (0..positions.len())
                .filter(|&j| j != i && positions[i].distance(&positions[j]) <= r)
                .map(|j| NodeId(j as u32))
                .collect()
        })
        .collect()
}

/// Recovery time granted before an undelivered message counts as lost: the
/// recovery path pays a gossip (1 s) + request cycle per hop, so allow the
/// network diameter's worth with slack.
fn recovery_slack() -> SimDuration {
    SimDuration::from_secs(12)
}

impl Oracle for SemiReliability {
    fn name(&self) -> &'static str {
        "semi-reliability"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Vec<Violation> {
        if !matches!(
            ctx.scenario.mobility,
            MobilityChoice::Static
                | MobilityChoice::Grid
                | MobilityChoice::Line { .. }
                | MobilityChoice::Explicit(_)
        ) {
            return Vec::new();
        }
        if !ctx.scenario.adversary_set().is_empty() {
            return Vec::new();
        }
        // Jam windows suppress receptions arbitrarily; only obligations
        // injected after the last jam lifted are checkable. An unclosed jam
        // makes every obligation void.
        let mut jam_starts = BTreeSet::new();
        let mut jam_ends = BTreeSet::new();
        let mut last_jam_end = SimTime::ZERO;
        for ev in ctx.scenario.fault_plan.events() {
            match ev.kind {
                FaultKind::JamStart { id, .. } => {
                    jam_starts.insert(id);
                }
                FaultKind::JamEnd { id } => {
                    jam_ends.insert(id);
                    last_jam_end = last_jam_end.max(SimTime::ZERO + ev.at);
                }
                _ => {}
            }
        }
        if jam_starts.iter().any(|id| !jam_ends.contains(id)) {
            return Vec::new();
        }

        let positions = ctx.scenario.initial_positions();
        let adj = certain_adjacency(ctx.scenario, &positions);
        let mut out = Vec::new();
        for b in &ctx.metrics.broadcasts {
            if !ctx.eligible[b.origin.index()]
                || b.time < last_jam_end
                || ctx.horizon.saturating_since(b.time) < recovery_slack()
            {
                continue;
            }
            let reachable = reachable_from(b.origin, &adj, &ctx.eligible);
            let delivered: BTreeSet<NodeId> = ctx
                .metrics
                .deliveries_of(b.payload_id)
                .filter(|d| d.origin == b.origin)
                .map(|d| d.node)
                .collect();
            for node in reachable {
                if !delivered.contains(&node) {
                    out.push(Violation {
                        oracle: self.name(),
                        detail: format!(
                            "node {} never delivered payload {} from {} despite being \
                             connected and up",
                            node.0, b.payload_id, b.origin.0
                        ),
                    });
                }
            }
        }
        out
    }
}

/// BFS over the adjacency restricted to eligible nodes.
fn reachable_from(origin: NodeId, adj: &[Vec<NodeId>], eligible: &[bool]) -> Vec<NodeId> {
    if !eligible[origin.index()] {
        return Vec::new();
    }
    let mut seen = vec![false; adj.len()];
    seen[origin.index()] = true;
    let mut queue = vec![origin];
    let mut order = vec![origin];
    while let Some(u) = queue.pop() {
        for &v in &adj[u.index()] {
            if eligible[v.index()] && !seen[v.index()] {
                seen[v.index()] = true;
                queue.push(v);
                order.push(v);
            }
        }
    }
    order.sort_by_key(|id| id.0);
    order
}

/// FD accuracy: no eligible observer ends the run *permanently* suspecting
/// an eligible node. Transient suspicions (collision-induced, later
/// retracted) are the detectors working as designed; an episode still open
/// at the horizon after a grace period is a permanent false accusation.
///
/// Only static runs are checked, and only pairs within the certain radius:
/// a mobile node that wanders out of range — or a static pair whose link
/// sits in the probabilistic fading fringe — is *correctly* suspected, and
/// the retraction can only arrive once a beacon gets through again.
pub struct FdAccuracy;

/// Suspicions opened this close to the horizon have not had time to be
/// retracted and are not counted as permanent.
fn accuracy_grace() -> SimDuration {
    SimDuration::from_secs(10)
}

impl Oracle for FdAccuracy {
    fn name(&self) -> &'static str {
        "fd-accuracy"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Vec<Violation> {
        let Some(episodes) = &ctx.episodes else {
            return Vec::new();
        };
        if !matches!(
            ctx.scenario.mobility,
            MobilityChoice::Static
                | MobilityChoice::Grid
                | MobilityChoice::Line { .. }
                | MobilityChoice::Explicit(_)
        ) {
            return Vec::new();
        }
        let positions = ctx.scenario.initial_positions();
        let certain = certain_radius(ctx.scenario);
        episodes
            .iter()
            .filter(|ep| {
                ep.end == SimTime::MAX
                    && ctx.eligible[ep.observer.index()]
                    && ep.suspect.index() < ctx.eligible.len()
                    && ctx.eligible[ep.suspect.index()]
                    && positions[ep.observer.index()].distance(&positions[ep.suspect.index()])
                        <= certain
                    && ctx.horizon.saturating_since(ep.start) >= accuracy_grace()
            })
            .map(|ep| Violation {
                oracle: self.name(),
                detail: format!(
                    "correct node {} still suspects correct node {} at the horizon \
                     (since {:.1}s)",
                    ep.observer.0,
                    ep.suspect.0,
                    ep.start.saturating_since(SimTime::ZERO).as_secs_f64()
                ),
            })
            .collect()
    }
}

/// The four standard oracles, in stable order.
pub fn standard_oracles() -> Vec<Box<dyn Oracle + Send + Sync>> {
    vec![
        Box::new(Validity),
        Box::new(NoDuplication),
        Box::new(SemiReliability),
        Box::new(FdAccuracy),
    ]
}

/// A finished, invariant-checked run.
#[derive(Clone, Debug)]
pub struct CheckedRun {
    /// The usual distilled summary, with [`RunSummary::oracle_outcomes`]
    /// filled in (and [`RunSummary::faults`] when a fault plan ran).
    pub summary: RunSummary,
    /// Every violation, in oracle order.
    pub violations: Vec<Violation>,
}

/// Builds the scenario's simulator, drives the workload through it, and
/// checks every oracle against the finished run.
///
/// # Panics
///
/// Panics if the scenario selects the multi-overlay baseline (oracles audit
/// the `WireMsg` protocols).
pub fn check_run(
    scenario: &ScenarioConfig,
    workload: &Workload,
    oracles: &[Box<dyn Oracle + Send + Sync>],
) -> CheckedRun {
    let mut sim = scenario.build_wire_sim();
    scenario.drive(&mut sim, workload);

    let episodes = if scenario.protocol == ProtocolChoice::Byzcast {
        let mut all = Vec::new();
        for i in 0..scenario.n as u32 {
            if let Some(node) = byz_view(&sim, NodeId(i)) {
                all.extend_from_slice(node.suspicion_log().episodes());
            }
        }
        Some(all)
    } else {
        None
    };

    let ctx = OracleCtx {
        scenario,
        workload,
        metrics: sim.metrics(),
        horizon: SimTime::ZERO + workload.horizon(),
        eligible: eligible_mask(scenario),
        episodes,
    };
    let mut violations = Vec::new();
    let mut outcomes = Vec::new();
    for oracle in oracles {
        let found = oracle.check(&ctx);
        outcomes.push((oracle.name().to_owned(), found.len() as u64));
        violations.extend(found);
    }

    let mut summary = scenario.summarize_wire(&sim);
    summary.oracle_outcomes = outcomes;
    CheckedRun {
        summary,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_adversary::SabotageKind;
    use byzcast_sim::{Field, SimConfig};

    fn scenario(n: usize) -> ScenarioConfig {
        ScenarioConfig {
            seed: 11,
            n,
            sim: SimConfig {
                field: Field::new(500.0, 500.0),
                ..SimConfig::default()
            },
            ..ScenarioConfig::default()
        }
    }

    fn workload() -> Workload {
        Workload {
            count: 3,
            start: SimDuration::from_secs(4),
            interval: SimDuration::from_secs(1),
            drain: SimDuration::from_secs(15),
            ..Workload::default()
        }
    }

    #[test]
    fn clean_run_passes_every_oracle() {
        let checked = check_run(&scenario(25), &workload(), &standard_oracles());
        assert!(
            checked.violations.is_empty(),
            "unexpected violations: {:?}",
            checked.violations
        );
        assert_eq!(checked.summary.oracle_outcomes.len(), 4);
        assert!(checked.summary.oracle_outcomes.iter().all(|(_, c)| *c == 0));
    }

    #[test]
    fn double_deliver_sabotage_trips_no_duplication() {
        let s = ScenarioConfig {
            sabotage: Some((NodeId(3), SabotageKind::DoubleDeliver)),
            ..scenario(25)
        };
        let checked = check_run(&s, &workload(), &standard_oracles());
        assert!(
            checked
                .violations
                .iter()
                .any(|v| v.oracle == "no-duplication"),
            "sabotage went undetected: {:?}",
            checked.violations
        );
    }

    #[test]
    fn phantom_deliver_sabotage_trips_validity() {
        let s = ScenarioConfig {
            sabotage: Some((NodeId(3), SabotageKind::PhantomDeliver)),
            ..scenario(25)
        };
        let checked = check_run(&s, &workload(), &standard_oracles());
        assert!(
            checked.violations.iter().any(|v| v.oracle == "validity"),
            "phantom delivery went undetected: {:?}",
            checked.violations
        );
    }

    #[test]
    fn drop_deliver_sabotage_trips_semi_reliability() {
        let s = ScenarioConfig {
            sabotage: Some((NodeId(3), SabotageKind::DropDeliver)),
            ..scenario(25)
        };
        let checked = check_run(&s, &workload(), &standard_oracles());
        assert!(
            checked
                .violations
                .iter()
                .any(|v| v.oracle == "semi-reliability"),
            "dropped deliveries went undetected: {:?}",
            checked.violations
        );
    }

    #[test]
    fn crashed_nodes_are_not_obligated() {
        let mut s = scenario(25);
        s.fault_plan.push(
            SimDuration::from_secs(2),
            FaultKind::Crash {
                node: NodeId(5),
                retain_state: false,
            },
        );
        let eligible = eligible_mask(&s);
        assert!(!eligible[5]);
        assert!(eligible[4]);
    }
}
