//! # byzcast-harness — scenarios, workloads and reporting for experiments
//!
//! The experiment layer that regenerates the paper's evaluation: it builds a
//! full simulation from a declarative [`ScenarioConfig`] (topology, radio,
//! protocol choice, adversary mix), injects a [`Workload`], runs it, and
//! distils the simulator's metrics into a [`RunSummary`] — delivery ratio,
//! frames/bytes by kind, latency distribution, overlay quality, recovery and
//! suspicion statistics. [`report`] renders aligned text tables for the
//! `exp_*` binaries; [`sweep`] replicates runs over seeds and aggregates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod scenario;
pub mod summary;
pub mod sweep;
pub mod workload;

pub use report::Table;
pub use scenario::{
    byz_view, figure5_worst_case, AdversaryKind, MobilityChoice, ProtocolChoice, ScenarioConfig,
};
pub use summary::RunSummary;
pub use sweep::{aggregate, replicate};
pub use workload::Workload;
