//! # byzcast-harness — scenarios, workloads and reporting for experiments
//!
//! The experiment layer that regenerates the paper's evaluation: it builds a
//! full simulation from a declarative [`ScenarioConfig`] (topology, radio,
//! protocol choice, adversary mix), injects a [`Workload`], runs it, and
//! distils the simulator's metrics into a [`RunSummary`] — delivery ratio,
//! frames/bytes by kind, latency distribution, overlay quality, recovery and
//! suspicion statistics. [`report`] renders aligned text tables for the
//! `exp_*` binaries; [`sweep`] replicates runs over seeds and aggregates.
//!
//! [`runner`] is the shared experiment driver: it fans a grid of
//! [`SweepPoint`]s × seeds out over worker threads ([`par`]) with results
//! bit-identical to serial order, and emits one JSONL record per run
//! ([`record`]) plus a progress line as runs complete.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod oracle;
pub mod par;
pub mod record;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod summary;
pub mod sweep;
pub mod workload;

pub use chaos::{generate_case, parse_case, run_case, shrink, ChaosCase, ShrinkResult};
pub use oracle::{
    check_run, eligible_mask, paper_envelope, standard_oracles, CheckedRun, Oracle, Violation,
};
pub use par::{default_threads, par_map};
pub use report::Table;
pub use runner::{run_sweep, PointResult, RunFn, RunOutcome, RunnerConfig, SweepPoint};
pub use scenario::{
    byz_view, figure5_worst_case, AdversaryKind, MobilityChoice, ProtocolChoice, ScenarioConfig,
};
pub use summary::RunSummary;
pub use sweep::{aggregate, replicate, replicate_par};
pub use workload::Workload;
