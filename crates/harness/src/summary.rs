//! Distilling simulator metrics into per-run summaries.

use std::collections::BTreeSet;

use byzcast_core::{ProtocolCounters, RecoveryStats, ResourceStats};
use byzcast_sim::{FaultStats, Metrics, NodeId};

/// The distilled result of one simulation run — the quantities the paper's
/// evaluation plots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunSummary {
    /// Protocol label ("byzcast/cds", "flooding", "2-overlays", …).
    pub protocol: String,
    /// Total node count.
    pub n: usize,
    /// Number of correct (non-adversarial) nodes.
    pub correct: usize,
    /// Application messages injected by correct senders.
    pub messages: usize,
    /// Mean over messages of (correct nodes accepting) / (correct nodes).
    pub delivery_ratio: f64,
    /// The worst per-message delivery ratio.
    pub min_delivery_ratio: f64,
    /// Total frames put on the air.
    pub frames_sent: u64,
    /// Total bytes put on the air.
    pub bytes_sent: u64,
    /// Data frames (payload-bearing).
    pub data_frames: u64,
    /// Control frames (gossip, requests, finds, beacons).
    pub control_frames: u64,
    /// Frames per successful correct-node delivery (the efficiency metric).
    pub frames_per_delivery: f64,
    /// Mean accept latency in seconds.
    pub mean_latency_s: f64,
    /// 99th-percentile accept latency in seconds.
    pub p99_latency_s: f64,
    /// Maximum accept latency in seconds.
    pub max_latency_s: f64,
    /// Receptions destroyed by collisions.
    pub collisions: u64,
    /// Receptions destroyed by fading/noise.
    pub noise_losses: u64,
    /// Overlay size at the end of the run (byzcast only).
    pub overlay_size: Option<usize>,
    /// Whether correct overlay members form a connected cover of the correct
    /// nodes at the end of the run (byzcast only).
    pub overlay_ok: Option<bool>,
    /// `REQUEST_MSG`s sent by correct nodes.
    pub requests: u64,
    /// `FIND_MISSING_MSG`s originated by correct nodes.
    pub finds: u64,
    /// Recovery responses served by correct nodes.
    pub recoveries_served: u64,
    /// Messages recovered via the request path at correct nodes.
    pub recovered: u64,
    /// Largest message-buffer occupancy across correct nodes.
    pub store_high_water: usize,
    /// Suspicions by correct nodes of adversarial nodes (good catches).
    pub true_suspicions: u64,
    /// Suspicions by correct nodes of correct nodes (FD mistakes).
    pub false_suspicions: u64,
    /// Sorted per-delivery accept latencies in seconds. Kept so replicated
    /// runs can be aggregated with *pooled* percentiles instead of the
    /// biased mean-of-percentiles.
    pub latencies_s: Vec<f64>,
    /// Protocol counters summed over correct nodes (byzcast only).
    pub counters: Option<ProtocolCounters>,
    /// Frames and bytes sent per wire-message kind, sorted by kind.
    pub frame_kinds: Vec<(String, u64, u64)>,
    /// Executed fault-plan counters (`None` when the run had no fault plan,
    /// keeping fault-free records byte-identical to before the layer
    /// existed).
    pub faults: Option<FaultStats>,
    /// Per-oracle violation counts from an invariant-checked run, in oracle
    /// order (empty when no oracles ran).
    pub oracle_outcomes: Vec<(String, u64)>,
    /// Resource-governance stats merged over correct nodes (counters summed,
    /// peaks maxed). `None` when the run is ungoverned, keeping ungoverned
    /// records byte-identical to before the governance layer existed.
    pub resources: Option<ResourceStats>,
    /// Recovery-escalation stats merged over correct nodes (counters summed,
    /// the escalation high-water maxed). `None` when the recovery envelope is
    /// off, keeping pre-escalation records byte-identical to before the
    /// layer existed.
    pub recovery: Option<RecoveryStats>,
}

impl RunSummary {
    /// Computes the protocol-independent part of the summary from simulator
    /// metrics. `correct[i]` marks node `i` as non-adversarial.
    pub fn from_metrics(protocol: impl Into<String>, metrics: &Metrics, correct: &[bool]) -> Self {
        let n = correct.len();
        let correct_count = correct.iter().filter(|&&c| c).count();

        // Per-message delivery among correct nodes, for messages from
        // correct senders.
        let mut ratios: Vec<f64> = Vec::new();
        let mut latencies: Vec<f64> = Vec::new();
        let mut total_correct_deliveries: u64 = 0;
        let mut messages = 0usize;
        for b in &metrics.broadcasts {
            if !correct[b.origin.index()] {
                continue;
            }
            messages += 1;
            let deliverers: BTreeSet<NodeId> = metrics
                .deliveries_of(b.payload_id)
                .filter(|d| correct[d.node.index()] && d.origin == b.origin)
                .map(|d| d.node)
                .collect();
            total_correct_deliveries += deliverers.len() as u64;
            ratios.push(if correct_count == 0 {
                0.0
            } else {
                deliverers.len() as f64 / correct_count as f64
            });
            for d in metrics.deliveries_of(b.payload_id) {
                if correct[d.node.index()] && d.origin == b.origin {
                    latencies.push(d.time.saturating_since(b.time).as_secs_f64());
                }
            }
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let mean_latency_s = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let p99_latency_s = percentile(&latencies, 0.99);
        let max_latency_s = latencies.last().copied().unwrap_or(0.0);

        let data_frames = metrics.frames_of_kind("data");
        let control_frames = metrics.frames_sent - data_frames;

        RunSummary {
            protocol: protocol.into(),
            n,
            correct: correct_count,
            messages,
            delivery_ratio: mean(&ratios),
            min_delivery_ratio: ratios
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
                .min(1.0),
            frames_sent: metrics.frames_sent,
            bytes_sent: metrics.bytes_sent,
            data_frames,
            control_frames,
            frames_per_delivery: if total_correct_deliveries == 0 {
                f64::INFINITY
            } else {
                metrics.frames_sent as f64 / total_correct_deliveries as f64
            },
            mean_latency_s,
            p99_latency_s,
            max_latency_s,
            collisions: metrics.collision_losses,
            noise_losses: metrics.noise_losses,
            latencies_s: latencies,
            frame_kinds: metrics
                .kind_breakdown()
                .map(|(kind, frames, bytes)| (kind.to_owned(), frames, bytes))
                .collect(),
            ..RunSummary::default()
        }
    }
}

pub(crate) fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Percentile of a sorted slice (nearest-rank).
pub(crate) fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_sim::metrics::{BroadcastRecord, DeliveryRecord};
    use byzcast_sim::SimTime;

    fn metrics_with_one_broadcast() -> Metrics {
        let mut m = Metrics::new(4);
        m.broadcasts.push(BroadcastRecord {
            origin: NodeId(0),
            payload_id: 1,
            time: SimTime::from_secs(1),
            size_bytes: 100,
        });
        for (node, at) in [(0u32, 1.0f64), (1, 1.5), (2, 2.0)] {
            m.deliveries.push(DeliveryRecord {
                node: NodeId(node),
                origin: NodeId(0),
                payload_id: 1,
                time: SimTime::from_micros((at * 1e6) as u64),
            });
        }
        m.frames_sent = 30;
        m
    }

    #[test]
    fn delivery_ratio_counts_correct_nodes_only() {
        let m = metrics_with_one_broadcast();
        // All four correct: 3 of 4 delivered.
        let s = RunSummary::from_metrics("x", &m, &[true; 4]);
        assert!((s.delivery_ratio - 0.75).abs() < 1e-9);
        assert_eq!(s.messages, 1);
        // Node 3 adversarial: 3 of 3 correct delivered.
        let s = RunSummary::from_metrics("x", &m, &[true, true, true, false]);
        assert!((s.delivery_ratio - 1.0).abs() < 1e-9);
        assert_eq!(s.correct, 3);
    }

    #[test]
    fn broadcasts_from_adversaries_are_not_counted() {
        let mut m = metrics_with_one_broadcast();
        m.broadcasts[0].origin = NodeId(3);
        let s = RunSummary::from_metrics("x", &m, &[true, true, true, false]);
        assert_eq!(s.messages, 0);
        assert_eq!(s.delivery_ratio, 0.0);
    }

    #[test]
    fn latency_statistics() {
        let m = metrics_with_one_broadcast();
        let s = RunSummary::from_metrics("x", &m, &[true; 4]);
        // Latencies: 0, 0.5, 1.0 → mean 0.5, max 1.0.
        assert!((s.mean_latency_s - 0.5).abs() < 1e-9);
        assert!((s.max_latency_s - 1.0).abs() < 1e-9);
        assert!(s.p99_latency_s <= s.max_latency_s);
    }

    #[test]
    fn frames_per_delivery() {
        let m = metrics_with_one_broadcast();
        let s = RunSummary::from_metrics("x", &m, &[true; 4]);
        assert!((s.frames_per_delivery - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let m = Metrics::new(2);
        let s = RunSummary::from_metrics("x", &m, &[true, true]);
        assert_eq!(s.messages, 0);
        assert_eq!(s.delivery_ratio, 0.0);
        assert!(s.frames_per_delivery.is_infinite());
        assert_eq!(s.mean_latency_s, 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
