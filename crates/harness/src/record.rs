//! Per-run JSONL records — the harness's structured observability layer.
//!
//! Every run a sweep executes can be exported as one JSON object on one
//! line: the experiment id, the sweep-point label and parameters, the seed,
//! wall-clock time, every [`RunSummary`] field, the summed protocol
//! counters, and any experiment-specific extras. The writer is hand-rolled
//! (the build environment has no serde); non-finite floats serialize as
//! `null` since JSON has no `Infinity`.

use std::fmt::Write as _;

use crate::summary::RunSummary;

/// An incremental writer for one JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_json_string(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        push_json_string(&mut self.buf, value);
        self
    }

    /// Adds an integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` when non-finite — JSON has no infinity).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn push_json_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Identity of one run within a sweep: which experiment, which point (with
/// its parameters), which seed, and where it fell in execution order.
#[derive(Debug)]
pub struct RecordMeta<'a> {
    /// Experiment id, e.g. `"r1_overhead"`.
    pub experiment: &'a str,
    /// Sweep-point label.
    pub label: &'a str,
    /// Sweep-point parameters as key/value strings.
    pub params: &'a [(String, String)],
    /// The seed this replication ran with.
    pub seed: u64,
    /// Index of this run in the (point-major, then seed) grid.
    pub run_index: usize,
    /// Wall-clock time of the run in milliseconds (observability only).
    pub wall_ms: f64,
}

/// Serializes one completed run as a single JSONL line (no trailing
/// newline).
///
/// `extras` are experiment-specific named measurements.
pub fn run_record(
    meta: &RecordMeta<'_>,
    summary: &RunSummary,
    extras: &[(&'static str, f64)],
) -> String {
    let mut o = JsonObject::new();
    o.str("experiment", meta.experiment)
        .str("point", meta.label)
        .raw("params", &params_json(meta.params))
        .u64("seed", meta.seed)
        .u64("run_index", meta.run_index as u64)
        .f64("wall_ms", meta.wall_ms)
        .str("protocol", &summary.protocol)
        .u64("n", summary.n as u64)
        .u64("correct", summary.correct as u64)
        .u64("messages", summary.messages as u64)
        .f64("delivery_ratio", summary.delivery_ratio)
        .f64("min_delivery_ratio", summary.min_delivery_ratio)
        .u64("frames_sent", summary.frames_sent)
        .u64("bytes_sent", summary.bytes_sent)
        .u64("data_frames", summary.data_frames)
        .u64("control_frames", summary.control_frames)
        .f64("frames_per_delivery", summary.frames_per_delivery)
        .f64("mean_latency_s", summary.mean_latency_s)
        .f64("p99_latency_s", summary.p99_latency_s)
        .f64("max_latency_s", summary.max_latency_s)
        .u64("collisions", summary.collisions)
        .u64("noise_losses", summary.noise_losses)
        .u64("requests", summary.requests)
        .u64("finds", summary.finds)
        .u64("recoveries_served", summary.recoveries_served)
        .u64("recovered", summary.recovered)
        .u64("store_high_water", summary.store_high_water as u64)
        .u64("true_suspicions", summary.true_suspicions)
        .u64("false_suspicions", summary.false_suspicions);
    if let Some(size) = summary.overlay_size {
        o.u64("overlay_size", size as u64);
    }
    if let Some(ok) = summary.overlay_ok {
        o.bool("overlay_ok", ok);
    }
    if let Some(c) = &summary.counters {
        let mut co = JsonObject::new();
        co.u64("data_originated", c.data_originated)
            .u64("data_forwards", c.data_forwards)
            .u64("gossip_packets", c.gossip_packets)
            .u64("gossip_entries", c.gossip_entries)
            .u64("requests_sent", c.requests_sent)
            .u64("finds_sent", c.finds_sent)
            .u64("recoveries_served", c.recoveries_served)
            .u64("recovered_via_request", c.recovered_via_request)
            .u64("bad_signatures_seen", c.bad_signatures_seen)
            .u64("beacons_sent", c.beacons_sent)
            .u64("sig_cache_hits", c.sig_cache_hits)
            .u64("sig_cache_misses", c.sig_cache_misses);
        o.raw("counters", &co.finish());
    }
    if !summary.frame_kinds.is_empty() {
        let mut ko = JsonObject::new();
        for (kind, frames, bytes) in &summary.frame_kinds {
            ko.raw(kind, &format!("[{frames},{bytes}]"));
        }
        o.raw("frames_by_kind", &ko.finish());
    }
    if let Some(f) = &summary.faults {
        let mut fo = JsonObject::new();
        fo.u64("crashes", f.crashes)
            .u64("restarts", f.restarts)
            .u64("byz_activations", f.byz_activations)
            .u64("byz_deactivations", f.byz_deactivations)
            .u64("jam_starts", f.jam_starts)
            .u64("jam_ends", f.jam_ends)
            .u64("jam_losses", f.jam_losses)
            .u64("injections_dropped", f.injections_dropped);
        o.raw("faults", &fo.finish());
    }
    if let Some(r) = &summary.resources {
        let mut ro = JsonObject::new();
        ro.u64("frames_admitted", r.frames_admitted)
            .u64("frames_dropped", r.frames_dropped)
            .u64("verifs_charged", r.verifs_charged)
            .u64("verifs_dropped", r.verifs_dropped)
            .u64("peak_verifs_per_sec", r.peak_verifs_per_sec)
            .u64("store_rejects", r.store_rejects)
            .u64("seen_evictions", r.seen_evictions)
            .u64("quota_drops", r.quota_drops)
            .u64("quota_suspicions", r.quota_suspicions)
            .u64("peak_store_msgs", r.peak_store_msgs)
            .u64("peak_store_bytes", r.peak_store_bytes)
            .u64("peak_seen_ids", r.peak_seen_ids)
            .u64("peak_active_gossip", r.peak_active_gossip)
            .u64("peak_missing", r.peak_missing);
        o.raw("resources", &ro.finish());
    }
    if let Some(r) = &summary.recovery {
        let mut ro = JsonObject::new();
        ro.u64("requests_originated", r.requests_originated)
            .u64("requests_widened", r.requests_widened)
            .u64("finds_escalated", r.finds_escalated)
            .u64("peak_escalation", r.peak_escalation)
            .u64("reelections", r.reelections)
            .u64("neighbors_purged", r.neighbors_purged);
        o.raw("recovery", &ro.finish());
    }
    if !summary.oracle_outcomes.is_empty() {
        let mut oo = JsonObject::new();
        let mut total = 0u64;
        for (oracle, count) in &summary.oracle_outcomes {
            oo.u64(oracle, *count);
            total += count;
        }
        o.raw("oracles", &oo.finish());
        o.u64("violations", total);
    }
    for (name, value) in extras {
        o.f64(name, *value);
    }
    o.finish()
}

fn params_json(params: &[(String, String)]) -> String {
    let mut o = JsonObject::new();
    for (k, v) in params {
        o.str(k, v);
    }
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builds_valid_json() {
        let mut o = JsonObject::new();
        o.str("a", "x\"y\n")
            .u64("b", 7)
            .f64("c", 1.5)
            .bool("d", true);
        assert_eq!(o.finish(), r#"{"a":"x\"y\n","b":7,"c":1.5,"d":true}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.f64("inf", f64::INFINITY).f64("nan", f64::NAN);
        assert_eq!(o.finish(), r#"{"inf":null,"nan":null}"#);
    }

    #[test]
    fn run_record_is_one_line_with_core_fields() {
        let summary = RunSummary {
            protocol: "byzcast/cds".into(),
            n: 10,
            correct: 9,
            delivery_ratio: 0.875,
            frames_per_delivery: f64::INFINITY,
            overlay_size: Some(4),
            overlay_ok: Some(true),
            counters: Some(Default::default()),
            frame_kinds: vec![("data".into(), 3, 300)],
            ..RunSummary::default()
        };
        let params = vec![("n".to_owned(), "10".to_owned())];
        let meta = RecordMeta {
            experiment: "r1",
            label: "n=10/byzcast",
            params: &params,
            seed: 42,
            run_index: 0,
            wall_ms: 12.5,
        };
        let line = run_record(&meta, &summary, &[("episodes", 2.0)]);
        assert!(!line.contains('\n'));
        assert!(line.contains(r#""experiment":"r1""#));
        assert!(line.contains(r#""params":{"n":"10"}"#));
        assert!(line.contains(r#""seed":42"#));
        assert!(line.contains(r#""frames_per_delivery":null"#));
        assert!(line.contains(r#""overlay_ok":true"#));
        assert!(line.contains(r#""counters":{"data_originated":0"#));
        assert!(line.contains(r#""frames_by_kind":{"data":[3,300]}"#));
        assert!(line.contains(r#""episodes":2"#));
    }
}
