//! The parallel experiment runner: sweep points × seed replications with
//! deterministic results and per-run observability.
//!
//! Experiments declare their sweep as a list of [`SweepPoint`]s (a labelled
//! scenario + workload, optionally with a custom measurement closure) and
//! hand it to [`run_sweep`]. The runner fans the full `points × seeds` grid
//! out over worker threads via [`crate::par::par_map`]; each run builds its
//! own simulator from its own seed, so results are **bit-identical to the
//! serial order no matter the thread count**. Per run it records wall-clock
//! time and the [`RunSummary`], optionally appends a JSONL record (see
//! [`crate::record`]) to `<results_dir>/<experiment>.jsonl`, and optionally
//! prints a progress line to stderr as runs complete.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::par::par_map;
use crate::record::{run_record, RecordMeta};
use crate::scenario::ScenarioConfig;
use crate::summary::RunSummary;
use crate::sweep::aggregate;
use crate::workload::Workload;

/// What one run of a sweep point produced: the standard summary plus any
/// experiment-specific named measurements (exported to JSONL and available
/// through [`PointResult::extra_mean`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// The distilled run summary.
    pub summary: RunSummary,
    /// Extra named measurements (e.g. suspicion-episode counts).
    pub extras: Vec<(&'static str, f64)>,
}

impl From<RunSummary> for RunOutcome {
    fn from(summary: RunSummary) -> Self {
        RunOutcome {
            summary,
            extras: Vec::new(),
        }
    }
}

/// A custom measurement: receives the seeded scenario and the workload,
/// runs them however it likes (e.g. building the simulator by hand to
/// inspect per-node state), and returns the outcome.
pub type RunFn = dyn Fn(&ScenarioConfig, &Workload) -> RunOutcome + Send + Sync;

/// One labelled point of a sweep.
#[derive(Clone)]
pub struct SweepPoint {
    /// Display label, e.g. `n=80/byzcast-cds`.
    pub label: String,
    /// Parameters exported to the JSONL record.
    pub params: Vec<(String, String)>,
    /// The scenario; its `seed` is overwritten per replication.
    pub config: ScenarioConfig,
    /// The workload driven through the scenario.
    pub workload: Workload,
    /// Custom measurement; `None` means `config.run(&workload)`.
    pub run: Option<Arc<RunFn>>,
}

impl SweepPoint {
    /// A standard point: label, JSONL params, scenario, workload.
    pub fn new(
        label: impl Into<String>,
        params: Vec<(String, String)>,
        config: ScenarioConfig,
        workload: Workload,
    ) -> Self {
        SweepPoint {
            label: label.into(),
            params,
            config,
            workload,
            run: None,
        }
    }

    /// Attaches a custom measurement closure.
    pub fn with_run(mut self, run: Arc<RunFn>) -> Self {
        self.run = Some(run);
        self
    }
}

/// Runner configuration, shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Experiment id, used as the JSONL file stem (e.g. `r1_overhead`).
    pub experiment: String,
    /// Worker threads (1 = serial; results are identical either way).
    pub threads: usize,
    /// Replication seeds applied to every point.
    pub seeds: Vec<u64>,
    /// Where to write `<experiment>.jsonl` (`None` = no records).
    pub results_dir: Option<PathBuf>,
    /// Print a progress line to stderr as each run completes.
    pub progress: bool,
}

/// One completed replication of a sweep point.
#[derive(Clone, Debug)]
pub struct CompletedRun {
    /// The replication seed.
    pub seed: u64,
    /// Wall-clock time of this run in milliseconds (observability only —
    /// never feeds any aggregate).
    pub wall_ms: f64,
    /// What the run measured.
    pub outcome: RunOutcome,
}

/// All replications of one sweep point plus their aggregate.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The point's label.
    pub label: String,
    /// Per-seed runs, in seed order.
    pub runs: Vec<CompletedRun>,
    /// Seed-aggregated summary (see [`crate::sweep::aggregate`]).
    pub aggregate: RunSummary,
}

impl PointResult {
    /// Mean of a named extra across the point's runs, if every run
    /// reported it.
    pub fn extra_mean(&self, name: &str) -> Option<f64> {
        let values: Vec<f64> = self
            .runs
            .iter()
            .filter_map(|r| {
                r.outcome
                    .extras
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|&(_, v)| v)
            })
            .collect();
        if values.len() == self.runs.len() && !values.is_empty() {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        } else {
            None
        }
    }
}

/// Executes the full `points × seeds` grid and returns one [`PointResult`]
/// per point, in point order.
///
/// Determinism: each unit of work clones the point's scenario with one
/// replication seed and builds a fresh simulator, and results are collected
/// by grid index — so for a fixed config the returned results (and any
/// aggregate table printed from them) are byte-identical for any
/// `threads >= 1`. Only the `wall_ms` observability field and the order of
/// progress lines vary between executions.
///
/// # Panics
///
/// Panics if `config.seeds` is empty, or if the results directory or JSONL
/// file cannot be written.
pub fn run_sweep(config: &RunnerConfig, points: &[SweepPoint]) -> Vec<PointResult> {
    assert!(!config.seeds.is_empty(), "need at least one seed");
    let units: Vec<(usize, u64)> = points
        .iter()
        .enumerate()
        .flat_map(|(p, _)| config.seeds.iter().map(move |&s| (p, s)))
        .collect();

    let done = AtomicUsize::new(0);
    let total = units.len();
    let outcomes: Vec<CompletedRun> = par_map(&units, config.threads, |_, &(p, seed)| {
        let point = &points[p];
        let seeded = ScenarioConfig {
            seed,
            ..point.config.clone()
        };
        let start = Instant::now();
        let outcome = match &point.run {
            Some(run) => run(&seeded, &point.workload),
            None => RunOutcome::from(seeded.run(&point.workload)),
        };
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if config.progress {
            let k = done.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!(
                "  [{k}/{total}] {} seed={seed} delivery={:.3} ({wall_ms:.0} ms)",
                point.label, outcome.summary.delivery_ratio
            );
        }
        CompletedRun {
            seed,
            wall_ms,
            outcome,
        }
    });

    if let Some(dir) = &config.results_dir {
        write_records(config, points, &units, &outcomes, dir);
    }

    outcomes
        .chunks(config.seeds.len())
        .zip(points)
        .map(|(runs, point)| {
            let summaries: Vec<RunSummary> =
                runs.iter().map(|r| r.outcome.summary.clone()).collect();
            PointResult {
                label: point.label.clone(),
                runs: runs.to_vec(),
                aggregate: aggregate(&summaries),
            }
        })
        .collect()
}

fn write_records(
    config: &RunnerConfig,
    points: &[SweepPoint],
    units: &[(usize, u64)],
    outcomes: &[CompletedRun],
    dir: &PathBuf,
) {
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{}.jsonl", config.experiment));
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path).expect("create jsonl"));
    for (i, (&(p, seed), run)) in units.iter().zip(outcomes).enumerate() {
        let point = &points[p];
        let meta = RecordMeta {
            experiment: &config.experiment,
            label: &point.label,
            params: &point.params,
            seed,
            run_index: i,
            wall_ms: run.wall_ms,
        };
        let line = run_record(&meta, &run.outcome.summary, &run.outcome.extras);
        writeln!(out, "{line}").expect("write jsonl record");
    }
    out.flush().expect("flush jsonl");
    if config.progress {
        eprintln!("  wrote {} records to {}", outcomes.len(), path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_sim::{Field, SimConfig};

    fn points() -> Vec<SweepPoint> {
        [14usize, 18]
            .into_iter()
            .map(|n| {
                SweepPoint::new(
                    format!("n={n}"),
                    vec![("n".to_owned(), n.to_string())],
                    ScenarioConfig {
                        n,
                        sim: SimConfig {
                            field: Field::new(420.0, 420.0),
                            ..SimConfig::default()
                        },
                        ..ScenarioConfig::default()
                    },
                    Workload {
                        count: 2,
                        ..Workload::default()
                    },
                )
            })
            .collect()
    }

    fn runner(threads: usize, dir: Option<PathBuf>) -> RunnerConfig {
        RunnerConfig {
            experiment: "test_sweep".to_owned(),
            threads,
            seeds: vec![3, 4, 5],
            results_dir: dir,
            progress: false,
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let points = points();
        let serial = run_sweep(&runner(1, None), &points);
        let parallel = run_sweep(&runner(4, None), &points);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.aggregate, p.aggregate);
            for (a, b) in s.runs.iter().zip(&p.runs) {
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.outcome, b.outcome);
            }
        }
    }

    #[test]
    fn one_jsonl_record_per_run() {
        let dir = std::env::temp_dir().join(format!("byzcast-runner-test-{}", std::process::id()));
        let points = points();
        let config = runner(2, Some(dir.clone()));
        let results = run_sweep(&config, &points);
        let text = std::fs::read_to_string(dir.join("test_sweep.jsonl")).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), points.len() * config.seeds.len());
        // Records come in grid order: point-major, then seed.
        assert!(lines[0].contains(r#""point":"n=14""#));
        assert!(lines[0].contains(r#""seed":3"#));
        assert!(lines[3].contains(r#""point":"n=18""#));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        // The runs behind the records really happened.
        assert!(results.iter().all(|p| p.runs.len() == 3));
    }

    #[test]
    fn custom_run_closures_and_extras() {
        let mut points = points();
        points.truncate(1);
        let points: Vec<SweepPoint> = points
            .into_iter()
            .map(|p| {
                p.with_run(Arc::new(|config: &ScenarioConfig, w: &Workload| {
                    RunOutcome {
                        summary: config.run(w),
                        extras: vec![("answer", 21.0)],
                    }
                }))
            })
            .collect();
        let results = run_sweep(&runner(2, None), &points);
        assert_eq!(results[0].extra_mean("answer"), Some(21.0));
        assert_eq!(results[0].extra_mean("missing"), None);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_panic() {
        let config = RunnerConfig {
            seeds: vec![],
            ..runner(1, None)
        };
        run_sweep(&config, &points());
    }
}
