//! Deterministic parallel map over independent work items.
//!
//! The experiment harness replicates runs over seeds and sweep points; each
//! run is sealed (own seeded RNG, own simulator), so runs can execute on any
//! thread in any order. [`par_map`] exploits that: workers pull items off a
//! shared index and send back `(index, result)` pairs, and the caller
//! reassembles results **by item index** — never by completion order — so
//! the output is bit-identical to the serial map regardless of thread count
//! or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The number of worker threads to use by default: the `BYZCAST_THREADS`
/// environment variable when set, otherwise the machine's available
/// parallelism (at least 1).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("BYZCAST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// results in item order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or a single item)
/// the map runs inline on the calling thread; either way the returned
/// vector is identical — ordering is by index, not completion.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins its workers).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                // A send error means the receiver is gone, which only
                // happens when the scope is unwinding from another panic.
                if tx.send((i, f(i, &items[i]))).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = par_map(&items, threads, |i, &x| {
                // Vary per-item work so completion order scrambles.
                let mut acc = x;
                for _ in 0..(x % 13) * 1000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                }
                (i, x, acc)
            });
            for (i, &(idx, x, _)) in out.iter().enumerate() {
                assert_eq!(i, idx);
                assert_eq!(x, items[i]);
            }
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<u32> = (0..57).collect();
        let serial = par_map(&items, 1, |i, &x| x as usize * 3 + i);
        let parallel = par_map(&items, 8, |i, &x| x as usize * 3 + i);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u8> = vec![];
        assert!(par_map(&none, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[9u8], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
