//! Scenario construction: from a declarative config to a running simulation.

use std::collections::BTreeSet;
use std::sync::Arc;

use byzcast_adversary::{
    FlapBehavior, FlappingNode, FlooderNode, ForgerNode, GossipLiarNode, ImpersonatorNode,
    MuteNode, MutePolicy, ReplayerNode, SabotageKind, SabotagedNode, SelectiveForwarder,
    SigGrinderNode, SilentNode, VerboseNode,
};
use byzcast_baselines::{plan_overlays, FloodingNode, MoMsg, MultiOverlayNode};
use byzcast_core::message::WireMsg;
use byzcast_core::{ByzcastConfig, ByzcastNode};
use byzcast_crypto::{CachingVerifier, KeyRegistry, SignerId, SimScheme, Verifier};
use byzcast_overlay::analysis::connected_correct_cover;
use byzcast_sim::{
    BoxedProtocol, FaultPlan, MobilityModel, NodeId, Position, RandomWalk, RandomWaypoint,
    SimBuilder, SimConfig, SimDuration, SimRng, Simulator, StaticPlacement,
};

use crate::summary::RunSummary;
use crate::workload::Workload;

/// How nodes are placed and move.
#[derive(Clone, Debug, Default)]
pub enum MobilityChoice {
    /// Uniform-random static placement.
    #[default]
    Static,
    /// Static grid filling the field.
    Grid,
    /// Static horizontal line with the given spacing in metres.
    Line {
        /// Distance between consecutive nodes.
        spacing: f64,
    },
    /// Exactly these static positions.
    Explicit(Vec<Position>),
    /// Random waypoint with speeds in `[min, max]` m/s and a pause.
    Waypoint {
        /// Minimum speed (must be positive).
        min_mps: f64,
        /// Maximum speed.
        max_mps: f64,
        /// Pause at each waypoint.
        pause: SimDuration,
    },
    /// Random walk at constant speed with exponential leg times.
    Walk {
        /// Walking speed.
        speed_mps: f64,
        /// Mean leg duration.
        mean_leg: SimDuration,
    },
}

impl MobilityChoice {
    /// Instantiates the mobility model.
    pub fn build(&self) -> Box<dyn MobilityModel> {
        match self {
            MobilityChoice::Static => Box::new(StaticPlacement::UniformRandom),
            MobilityChoice::Grid => Box::new(StaticPlacement::Grid),
            MobilityChoice::Line { spacing } => {
                Box::new(StaticPlacement::Line { spacing: *spacing })
            }
            MobilityChoice::Explicit(ps) => Box::new(StaticPlacement::Explicit(ps.clone())),
            MobilityChoice::Waypoint {
                min_mps,
                max_mps,
                pause,
            } => Box::new(RandomWaypoint::new(*min_mps, *max_mps, *pause)),
            MobilityChoice::Walk {
                speed_mps,
                mean_leg,
            } => Box::new(RandomWalk::new(*speed_mps, *mean_leg)),
        }
    }
}

/// Which broadcast protocol the run uses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum ProtocolChoice {
    /// The paper's protocol (configured by [`ScenarioConfig::byzcast`]).
    #[default]
    Byzcast,
    /// The flooding baseline.
    Flooding,
    /// The f+1-overlays baseline with `f` tolerated Byzantine nodes.
    MultiOverlay {
        /// Number of tolerated Byzantine nodes (f+1 overlays are built).
        f: u8,
    },
}

/// The Byzantine behaviour assigned to adversarial nodes.
#[derive(Clone, Debug)]
pub enum AdversaryKind {
    /// Mute byzcast node claiming overlay membership.
    Mute(MutePolicy),
    /// Crash-like silence (works for every protocol).
    Silent,
    /// Tamper with forwarded payloads.
    Forger,
    /// Spam pointless requests.
    Verbose {
        /// Spam period.
        period: SimDuration,
        /// Requests per spam tick.
        per_tick: usize,
    },
    /// Gossip about messages it will not supply.
    GossipLiar,
    /// Censor the given originators, forward everything else.
    SelectiveForwarder(Vec<NodeId>),
    /// Inject forged frames naming `victim`.
    Impersonator {
        /// The framed node.
        victim: NodeId,
    },
    /// Inject unique *validly signed* garbage at a configurable rate
    /// (memory/bandwidth exhaustion).
    Flooder {
        /// Injection period.
        period: SimDuration,
        /// Garbage messages per tick.
        per_tick: u32,
        /// Payload size of each garbage message.
        payload_bytes: u32,
    },
    /// Capture valid frames and re-inject them unchanged after `delay`
    /// (probes the receiver's seen-id memory horizon).
    Replayer {
        /// How long after capture each frame is replayed.
        delay: SimDuration,
    },
    /// Inject unique valid-looking frames with garbage signatures at a
    /// configurable rate (verifier-CPU exhaustion).
    SigGrinder {
        /// Injection period.
        period: SimDuration,
        /// Ill-signed frames per tick.
        per_tick: u32,
    },
    /// Correct until the fault plan's `SetByzantine` windows flip it (the
    /// worst case for the MUTE/TRUST detectors).
    Flapping(FlapBehavior),
}

impl AdversaryKind {
    /// Whether this adversary saturates the shared radio medium by brute
    /// injection rate. Air-time congestion collapses beacon and data
    /// reception for every node in range — resource governance sheds the
    /// *processing* cost, but cannot reclaim the air the frames already
    /// burned — so oracles that presume a usable medium (fd-accuracy) treat
    /// such runs like jammed ones and skip their obligations.
    pub fn congests_air(&self) -> bool {
        matches!(
            self,
            AdversaryKind::Flooder { .. } | AdversaryKind::SigGrinder { .. }
        )
    }
}

/// A full experiment scenario.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Master seed (also used for key generation and placement).
    pub seed: u64,
    /// Node count.
    pub n: usize,
    /// Simulator configuration (field, radio, MAC). Its `seed` field is
    /// overwritten by `self.seed`.
    pub sim: SimConfig,
    /// Placement and mobility.
    pub mobility: MobilityChoice,
    /// Protocol under test.
    pub protocol: ProtocolChoice,
    /// Byzcast configuration (used when `protocol` is `Byzcast`).
    pub byzcast: ByzcastConfig,
    /// Behaviour of the adversarial nodes (none if `None`).
    pub adversary: Option<AdversaryKind>,
    /// How many adversaries (ignored when `adversary_ids` is set).
    pub adversary_count: usize,
    /// Explicit adversary ids (overrides `adversary_count` selection).
    pub adversary_ids: Option<Vec<NodeId>>,
    /// Per-node adversary assignments for mixed-adversary runs, unioned
    /// with the single-kind selection above (assignments win on overlap).
    pub adversary_assignments: Vec<(NodeId, AdversaryKind)>,
    /// Timed fault events (crashes, restarts, Byzantine windows, jamming)
    /// executed through the deterministic event queue. Empty by default; an
    /// empty plan changes nothing, bit for bit.
    pub fault_plan: FaultPlan,
    /// A deliberately broken "correct" node — a test instrument proving the
    /// chaos oracles catch real protocol bugs. The node stays in the
    /// *correct* mask on purpose: its buggy deliveries must trip invariants.
    pub sabotage: Option<(NodeId, SabotageKind)>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0,
            n: 50,
            sim: SimConfig::default(),
            mobility: MobilityChoice::Static,
            protocol: ProtocolChoice::Byzcast,
            byzcast: ByzcastConfig::default(),
            adversary: None,
            adversary_count: 0,
            adversary_ids: None,
            adversary_assignments: Vec::new(),
            fault_plan: FaultPlan::new(),
            sabotage: None,
        }
    }
}

impl ScenarioConfig {
    /// The ids covered by the legacy single-kind selection. When not given
    /// explicitly, the *highest* ids are chosen — these win the id-based
    /// overlay election, which is the worst case for the protocol.
    fn single_kind_set(&self) -> BTreeSet<NodeId> {
        if self.adversary.is_none() {
            return BTreeSet::new();
        }
        match &self.adversary_ids {
            Some(ids) => ids.iter().copied().collect(),
            None => (0..self.n as u32)
                .rev()
                .take(self.adversary_count)
                .map(NodeId)
                .collect(),
        }
    }

    /// The adversarial node ids for this scenario: the single-kind selection
    /// unioned with the per-node assignments.
    pub fn adversary_set(&self) -> BTreeSet<NodeId> {
        let mut set = self.single_kind_set();
        set.extend(self.adversary_assignments.iter().map(|&(id, _)| id));
        set
    }

    /// The behaviour assigned to `id`, if it is adversarial. Per-node
    /// assignments take precedence over the single-kind selection.
    pub fn adversary_kind_of(&self, id: NodeId) -> Option<&AdversaryKind> {
        self.adversary_assignments
            .iter()
            .find(|&&(a, _)| a == id)
            .map(|(_, k)| k)
            .or_else(|| {
                if self.single_kind_set().contains(&id) {
                    self.adversary.as_ref()
                } else {
                    None
                }
            })
    }

    /// The correctness mask: `mask[i]` iff node `i` is correct.
    pub fn correct_mask(&self) -> Vec<bool> {
        let adv = self.adversary_set();
        (0..self.n as u32)
            .map(|i| !adv.contains(&NodeId(i)))
            .collect()
    }

    /// Ground-truth initial positions (deterministic from the seed).
    pub fn initial_positions(&self) -> Vec<Position> {
        let mut rng = SimRng::new(self.seed ^ 0x706f_7300);
        self.mobility
            .build()
            .initial_positions(self.n, &self.sim.field, &mut rng)
    }

    /// Nominal-range adjacency for the given positions.
    pub fn adjacency(&self, positions: &[Position]) -> Vec<Vec<NodeId>> {
        let r = self.sim.radio.range_m;
        (0..positions.len())
            .map(|i| {
                (0..positions.len())
                    .filter(|&j| j != i && positions[i].distance(&positions[j]) <= r)
                    .map(|j| NodeId(j as u32))
                    .collect()
            })
            .collect()
    }

    /// A short protocol label for reports.
    pub fn protocol_label(&self) -> String {
        match &self.protocol {
            ProtocolChoice::Byzcast => format!("byzcast/{}", self.byzcast.overlay.name()),
            ProtocolChoice::Flooding => "flooding".to_owned(),
            ProtocolChoice::MultiOverlay { f } => format!("{}-overlays", *f as u32 + 1),
        }
    }

    /// Builds the simulation, injects the workload, runs to the workload
    /// horizon, and summarizes.
    pub fn run(&self, workload: &Workload) -> RunSummary {
        match self.protocol {
            ProtocolChoice::MultiOverlay { f } => self.run_multi_overlay(workload, f),
            _ => self.run_wire(workload),
        }
    }

    fn sim_config(&self) -> SimConfig {
        SimConfig {
            seed: self.seed,
            ..self.sim.clone()
        }
    }

    /// One verifier instance **per run**, shared by every node: a single
    /// bounded signature-verification cache (sized by
    /// `ByzcastConfig::sig_cache_capacity`; `0` means a bare shared-keyset
    /// verifier). Verification is a pure function of
    /// `(signer, data, signature)`, so sharing the cache across nodes cannot
    /// change any verdict — results stay bit-identical — while a frame heard
    /// by many neighbours is verified once for the whole run instead of once
    /// per receiver.
    fn make_verifier(&self, keys: &KeyRegistry<SimScheme>) -> Arc<dyn Verifier + Send + Sync> {
        let capacity = self.byzcast.sig_cache_capacity;
        if capacity > 0 {
            Arc::new(CachingVerifier::new(keys.verifier(), capacity))
        } else {
            Arc::new(keys.verifier())
        }
    }

    /// Byzcast and flooding (both speak `WireMsg`).
    fn run_wire(&self, workload: &Workload) -> RunSummary {
        let mut sim = self.build_wire_sim();
        self.drive(&mut sim, workload);
        self.summarize_wire(&sim)
    }

    /// Builds (without running) the simulator for a `WireMsg` protocol —
    /// exposed so experiments can inspect per-node state mid-run.
    ///
    /// # Panics
    ///
    /// Panics if the scenario selects the multi-overlay baseline, whose
    /// message type differs.
    pub fn build_wire_sim(&self) -> Simulator<WireMsg> {
        assert!(
            !matches!(self.protocol, ProtocolChoice::MultiOverlay { .. }),
            "multi-overlay runs use MoMsg; use run() instead"
        );
        let positions = self.initial_positions();
        let keys: KeyRegistry<SimScheme> = KeyRegistry::generate(self.seed, self.n as u32);
        let verifier = self.make_verifier(&keys);
        let factory = WireNodeFactory {
            flooding: self.protocol == ProtocolChoice::Flooding,
            byzcast: self.byzcast.clone(),
            keys,
            verifier,
            kinds: (0..self.n as u32)
                .map(|i| self.adversary_kind_of(NodeId(i)).cloned())
                .collect(),
            sabotage: self.sabotage,
        };

        let mut builder = SimBuilder::new(self.sim_config())
            .with_mobility(self.mobility.build())
            .with_positions(positions)
            .with_nodes(self.n, |id| factory.make(id))
            .with_fault_plan(self.fault_plan.clone());
        if !self.fault_plan.is_empty() {
            // The same factory rebuilds nodes after state-losing restarts,
            // so a restarted node is indistinguishable from a fresh one.
            builder = builder.with_restart_factory(Box::new(move |id| factory.make(id)));
        }
        builder.build()
    }

    /// Summarizes a finished `WireMsg` run (byzcast extras included when the
    /// protocol is byzcast).
    pub fn summarize_wire(&self, sim: &Simulator<WireMsg>) -> RunSummary {
        let correct = self.correct_mask();
        let mut summary = RunSummary::from_metrics(self.protocol_label(), sim.metrics(), &correct);
        if self.protocol != ProtocolChoice::Flooding {
            self.fill_byzcast_stats(sim, &correct, &mut summary);
        }
        if !self.fault_plan.is_empty() {
            summary.faults = Some(sim.metrics().faults.clone());
        }
        summary
    }

    fn run_multi_overlay(&self, workload: &Workload, f: u8) -> RunSummary {
        let positions = self.initial_positions();
        let adj = self.adjacency(&positions);
        let memberships = plan_overlays(&adj, f + 1, self.seed);
        let adv = self.adversary_set();
        let keys: KeyRegistry<SimScheme> = KeyRegistry::generate(self.seed, self.n as u32);
        let verifier = self.make_verifier(&keys);

        let make = move |id: NodeId| -> BoxedProtocol<MoMsg> {
            let node = MultiOverlayNode::new(
                id,
                memberships[id.index()].clone(),
                Box::new(keys.signer(SignerId(id.0))),
                Arc::clone(&verifier),
            );
            if adv.contains(&id) {
                // Against the baseline, every adversary model reduces to
                // refusing to relay (the baseline has no gossip to lie
                // about and forged frames are dropped on signature).
                Box::new(SilentNode::new(node))
            } else {
                Box::new(node)
            }
        };

        let mut builder = SimBuilder::new(self.sim_config())
            .with_mobility(self.mobility.build())
            .with_positions(positions)
            .with_nodes(self.n, &make)
            .with_fault_plan(self.fault_plan.clone());
        if !self.fault_plan.is_empty() {
            builder = builder.with_restart_factory(Box::new(make));
        }
        let mut sim = builder.build();

        self.drive(&mut sim, workload);
        let correct = self.correct_mask();
        let mut summary = RunSummary::from_metrics(self.protocol_label(), sim.metrics(), &correct);
        if !self.fault_plan.is_empty() {
            summary.faults = Some(sim.metrics().faults.clone());
        }
        summary
    }

    /// Schedules the workload and runs the simulation to its horizon.
    pub fn drive<M: byzcast_sim::Message + 'static>(
        &self,
        sim: &mut Simulator<M>,
        workload: &Workload,
    ) {
        for (at, sender, payload_id, size) in workload.schedule() {
            sim.schedule_app_broadcast(at, sender, payload_id, size);
        }
        sim.run_until(byzcast_sim::SimTime::ZERO + workload.horizon());
    }

    fn fill_byzcast_stats(
        &self,
        sim: &Simulator<WireMsg>,
        correct: &[bool],
        summary: &mut RunSummary,
    ) {
        let adv = self.adversary_set();
        let mut overlay_mask = vec![false; self.n];
        let mut totals = byzcast_core::ProtocolCounters::default();
        let mut high_water = 0usize;
        let mut true_sus = 0u64;
        let mut false_sus = 0u64;
        let mut cache_stats = None;
        let mut resources = byzcast_core::ResourceStats::default();
        let mut recovery = byzcast_core::RecoveryStats::default();
        for i in 0..self.n as u32 {
            let id = NodeId(i);
            let Some(node) = byz_view(sim, id) else {
                // Standalone adversaries still claim overlay membership.
                overlay_mask[id.index()] = adv.contains(&id);
                continue;
            };
            overlay_mask[id.index()] = node.is_overlay();
            if correct[id.index()] {
                totals.merge(node.counters());
                // The verifier cache is one shared instance per run, so
                // every node reports the same global counters — record them
                // once instead of summing.
                if cache_stats.is_none() {
                    cache_stats = node.sig_cache_stats();
                }
                high_water = high_water.max(node.store().high_water());
                resources.merge(&node.resource_stats());
                recovery.merge(node.recovery_stats());
                for ep in node.suspicion_log().episodes() {
                    if adv.contains(&ep.suspect) {
                        true_sus += 1;
                    } else {
                        false_sus += 1;
                    }
                }
            }
        }
        if let Some(cache) = cache_stats {
            totals.sig_cache_hits = cache.hits;
            totals.sig_cache_misses = cache.misses;
        }
        // Overlay quality on the *final* positions.
        let adj = self.adjacency(sim.positions());
        summary.overlay_size = Some(overlay_mask.iter().filter(|&&b| b).count());
        summary.overlay_ok = Some(connected_correct_cover(&adj, &overlay_mask, correct));
        summary.requests = totals.requests_sent;
        summary.finds = totals.finds_sent;
        summary.recoveries_served = totals.recoveries_served;
        summary.recovered = totals.recovered_via_request;
        summary.counters = Some(totals);
        summary.store_high_water = high_water;
        summary.true_suspicions = true_sus;
        summary.false_suspicions = false_sus;
        // Only governed runs report resource stats: ungoverned records stay
        // byte-identical to before the governance layer existed.
        if !self.byzcast.resources.is_unlimited() {
            summary.resources = Some(resources);
        }
        // Likewise only runs with the recovery envelope on report its stats.
        if self.byzcast.recovery.enabled() {
            summary.recovery = Some(recovery);
        }
    }
}

/// Builds one node's protocol stack for a `WireMsg` run: the correct
/// protocol, an adversary wrapper, or a sabotaged instrument, per the
/// scenario's assignments. Owns everything it needs (`KeyRegistry` is
/// cheaply cloneable, the verifier is shared behind an `Arc`), so the same
/// factory serves both initial construction and post-crash restarts.
struct WireNodeFactory {
    flooding: bool,
    byzcast: ByzcastConfig,
    keys: KeyRegistry<SimScheme>,
    verifier: Arc<dyn Verifier + Send + Sync>,
    kinds: Vec<Option<AdversaryKind>>,
    sabotage: Option<(NodeId, SabotageKind)>,
}

impl WireNodeFactory {
    fn make_byz(&self, id: NodeId) -> ByzcastNode {
        ByzcastNode::new(
            id,
            self.byzcast.clone(),
            Box::new(self.keys.signer(SignerId(id.0))),
            Arc::clone(&self.verifier),
        )
    }

    fn make_silent_flooder(&self, id: NodeId) -> BoxedProtocol<WireMsg> {
        Box::new(SilentNode::new(FloodingNode::new(
            id,
            Box::new(self.keys.signer(SignerId(id.0))),
            Arc::clone(&self.verifier),
        )))
    }

    fn make(&self, id: NodeId) -> BoxedProtocol<WireMsg> {
        let Some(kind) = &self.kinds[id.index()] else {
            if let Some((sab_id, sab_kind)) = self.sabotage {
                if sab_id == id {
                    return Box::new(SabotagedNode::new(self.make_byz(id), sab_kind));
                }
            }
            return if self.flooding {
                Box::new(FloodingNode::new(
                    id,
                    Box::new(self.keys.signer(SignerId(id.0))),
                    Arc::clone(&self.verifier),
                ))
            } else {
                Box::new(self.make_byz(id))
            };
        };
        match kind {
            AdversaryKind::Silent => {
                if self.flooding {
                    self.make_silent_flooder(id)
                } else {
                    Box::new(SilentNode::new(self.make_byz(id)))
                }
            }
            // The remaining adversaries are byzcast-protocol-aware; against
            // flooding they degrade to silence.
            _ if self.flooding => self.make_silent_flooder(id),
            AdversaryKind::Mute(policy) => Box::new(MuteNode::new(self.make_byz(id), *policy)),
            AdversaryKind::Forger => Box::new(ForgerNode::new(self.make_byz(id))),
            AdversaryKind::Verbose { period, per_tick } => {
                Box::new(VerboseNode::new(self.make_byz(id), *period, *per_tick))
            }
            AdversaryKind::GossipLiar => Box::new(GossipLiarNode::new(
                Box::new(self.keys.signer(SignerId(id.0))),
                SimDuration::from_millis(500),
            )),
            AdversaryKind::SelectiveForwarder(victims) => {
                Box::new(SelectiveForwarder::new(self.make_byz(id), victims.clone()))
            }
            AdversaryKind::Impersonator { victim } => Box::new(ImpersonatorNode::new(
                id,
                *victim,
                SimDuration::from_secs(1),
            )),
            AdversaryKind::Flooder {
                period,
                per_tick,
                payload_bytes,
            } => Box::new(FlooderNode::new(
                Box::new(self.keys.signer(SignerId(id.0))),
                *period,
                *per_tick,
                *payload_bytes,
            )),
            AdversaryKind::Replayer { delay } => {
                Box::new(ReplayerNode::new(*delay, SimDuration::from_millis(500)))
            }
            AdversaryKind::SigGrinder { period, per_tick } => {
                Box::new(SigGrinderNode::new(id, *period, *per_tick))
            }
            AdversaryKind::Flapping(behavior) => {
                Box::new(FlappingNode::new(self.make_byz(id), *behavior))
            }
        }
    }
}

/// Builds the paper's Figure-5 worst case — "all nodes that belong to the
/// overlay are Byzantine and therefore all messages will be disseminated
/// using the gossip-request mechanism" — as a concrete scenario:
///
/// * `c` correct nodes (ids `0..c`) on a line at 100 m spacing (radio range
///   250 m, so the correct graph is connected through ±1/±2 links);
/// * `c − 1` mute Byzantine nodes with the **highest ids**, interleaved at
///   the 50 m offsets. Each mute node's closed neighbourhood covers every
///   neighbour of the adjacent correct nodes, so under the id-based election
///   every correct node prunes itself and the overlay is mutes-only — until
///   the MUTE failure detector evicts them.
///
/// Returns a scenario with an ideal-disk radio (the formal model §3.5
/// analyses).
pub fn figure5_worst_case(c: usize, seed: u64) -> ScenarioConfig {
    assert!(c >= 3, "need at least 3 correct nodes");
    let mut positions: Vec<Position> = (0..c)
        .map(|i| Position::new(100.0 * i as f64, 50.0))
        .collect();
    let mutes = c - 1;
    positions.extend((0..mutes).map(|j| Position::new(100.0 * j as f64 + 50.0, 50.0)));
    let n = positions.len();
    let width = 100.0 * c as f64 + 1.0;
    ScenarioConfig {
        seed,
        n,
        sim: SimConfig {
            field: byzcast_sim::Field::new(width, 100.0),
            radio: byzcast_sim::RadioConfig::ideal_disk(250.0),
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Explicit(positions),
        adversary: Some(AdversaryKind::Mute(MutePolicy::DropDataAndGossip)),
        adversary_ids: Some((c as u32..n as u32).map(NodeId).collect()),
        ..ScenarioConfig::default()
    }
}

/// Looks through adversary wrappers to the underlying [`ByzcastNode`], when
/// there is one (standalone adversaries have none).
pub fn byz_view(sim: &Simulator<WireMsg>, id: NodeId) -> Option<&ByzcastNode> {
    if let Some(n) = sim.protocol::<ByzcastNode>(id) {
        return Some(n);
    }
    if let Some(w) = sim.protocol::<MuteNode>(id) {
        return Some(w.inner());
    }
    if let Some(w) = sim.protocol::<ForgerNode>(id) {
        return Some(w.inner());
    }
    if let Some(w) = sim.protocol::<VerboseNode>(id) {
        return Some(w.inner());
    }
    if let Some(w) = sim.protocol::<SelectiveForwarder>(id) {
        return Some(w.inner());
    }
    if let Some(w) = sim.protocol::<SilentNode<ByzcastNode>>(id) {
        return Some(w.inner());
    }
    if let Some(w) = sim.protocol::<FlappingNode>(id) {
        return Some(w.inner());
    }
    if let Some(w) = sim.protocol::<SabotagedNode>(id) {
        return Some(w.inner());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario() -> ScenarioConfig {
        // Dense enough (25 nodes, 250 m range, 500 m × 500 m) that the
        // ground topology is connected with overwhelming probability.
        ScenarioConfig {
            seed: 7,
            n: 25,
            sim: SimConfig {
                field: byzcast_sim::Field::new(500.0, 500.0),
                ..SimConfig::default()
            },
            ..ScenarioConfig::default()
        }
    }

    fn small_workload() -> Workload {
        Workload {
            count: 3,
            start: SimDuration::from_secs(4),
            interval: SimDuration::from_secs(1),
            drain: SimDuration::from_secs(8),
            ..Workload::default()
        }
    }

    #[test]
    fn byzcast_run_delivers_most_messages() {
        let s = small_scenario().run(&small_workload());
        assert_eq!(s.n, 25);
        assert_eq!(s.correct, 25);
        assert_eq!(s.messages, 3);
        assert!(
            s.delivery_ratio > 0.9,
            "delivery ratio {}",
            s.delivery_ratio
        );
        assert!(s.overlay_size.is_some());
        assert!(s.frames_sent > 0);
    }

    #[test]
    fn flooding_run_delivers_and_sends_more_data_frames() {
        let byz = small_scenario().run(&small_workload());
        let flood = ScenarioConfig {
            protocol: ProtocolChoice::Flooding,
            ..small_scenario()
        }
        .run(&small_workload());
        assert!(
            flood.delivery_ratio > 0.9,
            "flooding ratio {}",
            flood.delivery_ratio
        );
        assert!(
            flood.data_frames > byz.data_frames,
            "flooding {} vs byzcast {} data frames",
            flood.data_frames,
            byz.data_frames
        );
        assert_eq!(flood.overlay_size, None);
    }

    #[test]
    fn multi_overlay_run_sends_multiple_copies() {
        let mo = ScenarioConfig {
            protocol: ProtocolChoice::MultiOverlay { f: 1 },
            ..small_scenario()
        }
        .run(&small_workload());
        assert!(mo.delivery_ratio > 0.9, "f+1 ratio {}", mo.delivery_ratio);
        assert_eq!(mo.protocol, "2-overlays");
    }

    #[test]
    fn adversary_selection_prefers_high_ids() {
        let s = ScenarioConfig {
            adversary: Some(AdversaryKind::Mute(MutePolicy::DropData)),
            adversary_count: 3,
            ..small_scenario()
        };
        let adv = s.adversary_set();
        assert_eq!(
            adv.into_iter().collect::<Vec<_>>(),
            vec![NodeId(22), NodeId(23), NodeId(24)]
        );
        let mask = s.correct_mask();
        assert!(mask[0] && !mask[24]);
    }

    #[test]
    fn explicit_adversary_ids_override_count() {
        let s = ScenarioConfig {
            adversary: Some(AdversaryKind::Silent),
            adversary_count: 3,
            adversary_ids: Some(vec![NodeId(1)]),
            ..small_scenario()
        };
        assert_eq!(s.adversary_set().len(), 1);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = small_scenario().run(&small_workload());
        let b = small_scenario().run(&small_workload());
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.delivery_ratio, b.delivery_ratio);
        assert_eq!(a.collisions, b.collisions);
    }

    #[test]
    fn mute_adversaries_reduce_nothing_fatal() {
        let s = ScenarioConfig {
            n: 30,
            adversary: Some(AdversaryKind::Mute(MutePolicy::DropData)),
            adversary_count: 3,
            ..small_scenario()
        }
        .run(&small_workload());
        assert_eq!(s.correct, 27);
        // Gossip+recovery should keep delivery useful even with mute overlay
        // claimants (generous threshold; the experiment measures precisely).
        assert!(s.delivery_ratio > 0.5, "ratio {}", s.delivery_ratio);
    }
}

#[cfg(test)]
mod figure5_tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn figure5_forces_the_gossip_request_path() {
        let config = figure5_worst_case(8, 1);
        let w = Workload {
            senders: vec![NodeId(0)],
            count: 5,
            payload_bytes: 256,
            start: SimDuration::from_secs(8),
            interval: SimDuration::from_secs(2),
            drain: SimDuration::from_secs(60),
        };
        let s = config.run(&w);
        // Every correct node still accepts every message…
        assert_eq!(s.delivery_ratio, 1.0, "delivery {}", s.delivery_ratio);
        // …but only through the recovery machinery: the mute overlay forces
        // requests, and far nodes pay a per-hop gossip/request cycle.
        assert!(
            s.requests > 0,
            "no requests — the overlay was not mute-only"
        );
        assert!(
            s.recoveries_served > 0,
            "no recovery responses — dissemination took the fast path"
        );
        assert!(
            s.max_latency_s > 0.5,
            "far nodes arrived too fast ({}) for the gossip-request chain",
            s.max_latency_s
        );
    }
}
