//! Seeded chaos generation, invariant-checked soak runs, and scenario
//! shrinking.
//!
//! A [`ChaosCase`] is a complete randomized run — topology, mobility,
//! adversary mix, fault plan, workload — generated deterministically from
//! one seed by [`generate_case`]. [`run_case`] executes it under the
//! standard [`crate::oracle`] suite; [`shrink`] greedily minimizes a
//! violating case while preserving the violated-oracle set; and the
//! line-based corpus format ([`ChaosCase::to_text`] / [`parse_case`])
//! persists reproducers under version control for byte-exact replay.

use std::collections::BTreeMap;

use byzcast_adversary::{FlapBehavior, MutePolicy, SabotageKind};
use byzcast_sim::{FaultKind, Field, NodeId, Position, SimConfig, SimDuration, SimRng};

use byzcast_core::{RecoveryConfig, ResourceConfig};

use crate::oracle::{check_run, paper_envelope, standard_oracles, CheckedRun, Violation};
use crate::par::par_map;
use crate::record::{run_record, RecordMeta};
use crate::scenario::{AdversaryKind, MobilityChoice, ScenarioConfig};
use crate::workload::Workload;

/// One self-contained chaos scenario, replayable from its fields alone.
#[derive(Clone, Debug)]
pub struct ChaosCase {
    /// Stable case name (derived from the generating seed, or the corpus
    /// file stem).
    pub name: String,
    /// The full scenario, fault plan and adversary mix included.
    pub scenario: ScenarioConfig,
    /// The workload driven through it.
    pub workload: Workload,
    /// Expected per-oracle violation counts (empty for healthy cases; a
    /// persisted reproducer records what it reproduces).
    pub expect: Vec<(String, u64)>,
}

/// Which generator a soak draws its cases from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosProfile {
    /// The full mixed space: adversaries, flappers, crash/restart pairs,
    /// mobility, jams.
    Standard,
    /// Sparse, static, adversary-free topologies with several crashes —
    /// many of them permanent. This is the space that produced the
    /// thin-chain stranding reproducer: with no adversaries and static
    /// mobility the semi-reliability oracle is binding on *every* case, so
    /// any stranded-but-connected node is a violation, not noise.
    CrashHeavy,
}

impl ChaosProfile {
    /// Parses the CLI spelling (`standard` / `crash-heavy`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "standard" => Some(ChaosProfile::Standard),
            "crash-heavy" => Some(ChaosProfile::CrashHeavy),
            _ => None,
        }
    }
}

/// Deterministically generates one chaos case from a seed. `quick` bounds
/// the node count lower so soak smokes stay fast.
///
/// The generated space composes every fault dimension the harness knows:
/// node count and density, static or waypoint mobility, a mixed adversary
/// assignment (≤ n/8, at the highest — overlay-election-winning — ids),
/// flapping Byzantine windows, crash/restart pairs with and without state
/// retention, and at most one closed jam window. Senders are always low-id
/// eligible nodes, and the workload stays light enough (≥ 500 ms spacing)
/// that queue saturation cannot masquerade as a protocol bug.
pub fn generate_case(seed: u64, quick: bool) -> ChaosCase {
    let mut rng = SimRng::new(seed ^ 0xC4A0_5EED);
    let n = 20 + rng.gen_range_u64(if quick { 21 } else { 41 }) as usize;
    let side = 500.0 + rng.gen_range_u64(701) as f64;
    let mobility = if rng.gen_f64() < 0.7 {
        MobilityChoice::Static
    } else {
        MobilityChoice::Waypoint {
            min_mps: 1.0,
            max_mps: 1.0 + 2.0 * rng.gen_f64(),
            pause: SimDuration::from_secs(1),
        }
    };

    let sender_count = 1 + rng.gen_range_u64(3) as usize;
    let workload = Workload {
        senders: (0..sender_count as u32).map(NodeId).collect(),
        count: 3 + rng.gen_range_u64(4) as usize,
        payload_bytes: 256,
        start: SimDuration::from_secs(5 + rng.gen_range_u64(4)),
        interval: SimDuration::from_millis(500 + rng.gen_range_u64(1001)),
        drain: SimDuration::from_secs(15 + rng.gen_range_u64(6)),
    };
    let horizon = workload.horizon();

    let mut scenario = ScenarioConfig {
        seed,
        n,
        sim: SimConfig {
            field: Field::new(side, side),
            ..SimConfig::default()
        },
        mobility,
        ..ScenarioConfig::default()
    };
    // Every chaos case runs governed under the paper-derived envelope, so
    // the bounded-resources oracle is binding on all of them — and the
    // exhaustion adversaries below cannot blow up correct nodes.
    scenario.byzcast.resources = paper_envelope();
    // And every chaos case runs with recovery escalation on, so crash
    // scenarios exercise the widened-retry and overlay-repair paths the
    // thin-chain reproducer needs.
    scenario.byzcast.recovery = RecoveryConfig::standard();

    // Mixed adversaries at the highest ids (never senders).
    let adv_count = rng.gen_range_u64(n as u64 / 8 + 1) as usize;
    let mut next_high = n as u32;
    for _ in 0..adv_count {
        next_high -= 1;
        let kind = match rng.gen_range_u64(12) {
            0 => AdversaryKind::Mute(MutePolicy::DropData),
            1 => AdversaryKind::Mute(MutePolicy::DropDataAndGossip),
            2 => AdversaryKind::Mute(MutePolicy::DropEverything),
            3 => AdversaryKind::Silent,
            4 => AdversaryKind::Forger,
            5 => AdversaryKind::Verbose {
                period: SimDuration::from_millis(500),
                per_tick: 3,
            },
            6 => AdversaryKind::GossipLiar,
            7 => AdversaryKind::SelectiveForwarder(vec![NodeId(0)]),
            8 => AdversaryKind::Impersonator { victim: NodeId(0) },
            9 => AdversaryKind::Flooder {
                period: SimDuration::from_millis(200),
                per_tick: 4,
                payload_bytes: 256,
            },
            10 => AdversaryKind::Replayer {
                delay: SimDuration::from_secs(6),
            },
            _ => AdversaryKind::SigGrinder {
                period: SimDuration::from_millis(200),
                per_tick: 4,
            },
        };
        scenario
            .adversary_assignments
            .push((NodeId(next_high), kind));
    }

    // Flappers: correct nodes with SetByzantine on/off windows.
    let flap_count = rng.gen_range_u64(3) as usize;
    for _ in 0..flap_count {
        next_high -= 1;
        let id = NodeId(next_high);
        let behavior = if rng.gen_f64() < 0.5 {
            FlapBehavior::Mute(MutePolicy::DropEverything)
        } else {
            FlapBehavior::Forger
        };
        scenario
            .adversary_assignments
            .push((id, AdversaryKind::Flapping(behavior)));
        let on = SimDuration::from_secs(4 + rng.gen_range_u64(5));
        let off = on + SimDuration::from_secs(2 + rng.gen_range_u64(5));
        scenario.fault_plan.push(
            on,
            FaultKind::SetByzantine {
                node: id,
                active: true,
            },
        );
        scenario.fault_plan.push(
            off,
            FaultKind::SetByzantine {
                node: id,
                active: false,
            },
        );
    }

    // Crash/restart pairs on correct non-sender nodes.
    let crash_count = rng.gen_range_u64(4) as usize;
    let mut pool: Vec<u32> = (sender_count as u32..next_high).collect();
    rng.shuffle(&mut pool);
    for &raw in pool.iter().take(crash_count) {
        let id = NodeId(raw);
        let latest = (horizon.as_secs_f64() as u64).saturating_sub(12).max(3);
        let at = SimDuration::from_secs(2 + rng.gen_range_u64(latest - 2));
        let downtime = SimDuration::from_secs(2 + rng.gen_range_u64(7));
        let retain = rng.gen_f64() < 0.5;
        scenario.fault_plan.push(
            at,
            FaultKind::Crash {
                node: id,
                retain_state: retain,
            },
        );
        scenario
            .fault_plan
            .push(at + downtime, FaultKind::Restart { node: id });
    }

    // At most one closed jam window, lifted before the tail of the run so
    // post-jam injections still carry semi-reliability obligations.
    if rng.gen_f64() < 0.3 {
        let center = Position::new(rng.gen_f64() * side, rng.gen_f64() * side);
        let radius = 150.0 + rng.gen_range_u64(151) as f64;
        let loss = 0.5 + 0.4 * rng.gen_f64();
        let from = SimDuration::from_secs(2 + rng.gen_range_u64(3));
        let until = from + SimDuration::from_secs(3 + rng.gen_range_u64(4));
        scenario.fault_plan.push(
            from,
            FaultKind::JamStart {
                id: 1,
                center,
                radius_m: radius,
                loss,
            },
        );
        scenario.fault_plan.push(until, FaultKind::JamEnd { id: 1 });
    }

    ChaosCase {
        name: format!("chaos-{seed:08x}"),
        scenario,
        workload,
        expect: Vec::new(),
    }
}

/// Generates one case from the given profile.
pub fn generate_case_profiled(seed: u64, quick: bool, profile: ChaosProfile) -> ChaosCase {
    match profile {
        ChaosProfile::Standard => generate_case(seed, quick),
        ChaosProfile::CrashHeavy => generate_crash_heavy(seed, quick),
    }
}

/// The crash-heavy generator: sparse static fields (thin chains and
/// marginal links form naturally at low density), no adversaries or jams
/// (the semi-reliability oracle stays binding), and 2–4 crashes on correct
/// non-senders of which a fraction never restart — the recovery layer must
/// route around them, not wait them out.
fn generate_crash_heavy(seed: u64, quick: bool) -> ChaosCase {
    let mut rng = SimRng::new(seed ^ 0xCBA5_4EED);
    let n = 16 + rng.gen_range_u64(if quick { 17 } else { 33 }) as usize;
    // Density tuned low: scale the side with √n so the mean degree stays
    // roughly constant and small as n grows.
    let side = (850.0 + rng.gen_range_u64(301) as f64) * (n as f64 / 32.0).sqrt();

    let sender_count = 1 + rng.gen_range_u64(2) as usize;
    let workload = Workload {
        senders: (0..sender_count as u32).map(NodeId).collect(),
        count: 1 + rng.gen_range_u64(3) as usize,
        payload_bytes: 256,
        start: SimDuration::from_secs(5),
        interval: SimDuration::from_millis(1000 + rng.gen_range_u64(501)),
        drain: SimDuration::from_secs(18 + rng.gen_range_u64(7)),
    };
    let horizon = workload.horizon();

    let mut scenario = ScenarioConfig {
        seed,
        n,
        sim: SimConfig {
            field: Field::new(side, side),
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Static,
        ..ScenarioConfig::default()
    };
    scenario.byzcast.resources = paper_envelope();
    scenario.byzcast.recovery = RecoveryConfig::standard();

    let crash_count = 2 + rng.gen_range_u64(3) as usize;
    let mut pool: Vec<u32> = (sender_count as u32..n as u32).collect();
    rng.shuffle(&mut pool);
    for &raw in pool.iter().take(crash_count) {
        let id = NodeId(raw);
        let latest = (horizon.as_secs_f64() as u64).saturating_sub(12).max(3);
        let at = SimDuration::from_secs(2 + rng.gen_range_u64(latest - 2));
        scenario.fault_plan.push(
            at,
            FaultKind::Crash {
                node: id,
                retain_state: rng.gen_f64() < 0.5,
            },
        );
        // Most crashes are permanent — the hard case: the survivors must
        // recover without the crashed node ever coming back.
        if rng.gen_f64() < 0.4 {
            let downtime = SimDuration::from_secs(3 + rng.gen_range_u64(6));
            scenario
                .fault_plan
                .push(at + downtime, FaultKind::Restart { node: id });
        }
    }

    ChaosCase {
        name: format!("crashy-{seed:08x}"),
        scenario,
        workload,
        expect: Vec::new(),
    }
}

/// Runs a case under the standard oracle suite.
pub fn run_case(case: &ChaosCase) -> CheckedRun {
    check_run(&case.scenario, &case.workload, &standard_oracles())
}

/// Groups violations into sorted `(oracle, count)` pairs — the `expect`
/// representation.
pub fn violation_counts(violations: &[Violation]) -> Vec<(String, u64)> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for v in violations {
        *counts.entry(v.oracle).or_insert(0) += 1;
    }
    counts.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()
}

/// A size measure for shrinking: fewer nodes, fault events, adversaries,
/// messages and seconds all count as smaller.
pub fn case_size(case: &ChaosCase) -> u64 {
    case.scenario.n as u64
        + case.scenario.fault_plan.len() as u64
        + case.scenario.adversary_assignments.len() as u64
        + case.workload.count as u64
        + case.workload.drain.as_secs_f64() as u64
}

/// The result of shrinking a violating case.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized case, its `expect` set to what it still reproduces.
    pub case: ChaosCase,
    /// Simulation runs spent.
    pub runs: usize,
}

fn violated_names(checked: &CheckedRun) -> Vec<String> {
    violation_counts(&checked.violations)
        .into_iter()
        .map(|(k, _)| k)
        .collect()
}

/// Greedily minimizes `case` while every originally-violated oracle keeps
/// violating, spending at most `budget` simulation runs. Reductions try, in
/// order: dropping fault events (latest first), dropping adversary
/// assignments, halving the message count, halving the drain, and cutting
/// the node count by a quarter. Each accepted reduction restarts the pass;
/// the loop stops at a fixpoint or when the budget runs out.
pub fn shrink(case: &ChaosCase, budget: usize) -> ShrinkResult {
    let mut runs = 0usize;
    let mut current = case.clone();
    let first = run_case(&current);
    runs += 1;
    let target = violated_names(&first);
    current.expect = violation_counts(&first.violations);
    if target.is_empty() {
        return ShrinkResult {
            case: current,
            runs,
        };
    }

    'outer: loop {
        for cand in candidates(&current) {
            if runs >= budget {
                break 'outer;
            }
            let checked = run_case(&cand);
            runs += 1;
            let got = violated_names(&checked);
            if target.iter().all(|t| got.contains(t)) {
                let mut accepted = cand;
                accepted.expect = violation_counts(&checked.violations);
                current = accepted;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkResult {
        case: current,
        runs,
    }
}

/// All one-step reductions of a case, in preference order.
fn candidates(case: &ChaosCase) -> Vec<ChaosCase> {
    let mut out = Vec::new();
    for i in (0..case.scenario.fault_plan.len()).rev() {
        let mut c = case.clone();
        c.scenario.fault_plan.remove(i);
        out.push(c);
    }
    for i in (0..case.scenario.adversary_assignments.len()).rev() {
        let mut c = case.clone();
        c.scenario.adversary_assignments.remove(i);
        out.push(c);
    }
    if case.workload.count > 1 {
        let mut c = case.clone();
        c.workload.count /= 2;
        out.push(c);
    }
    if case.workload.drain > SimDuration::from_secs(5) {
        let mut c = case.clone();
        let halved = case.workload.drain.as_secs_f64() / 2.0;
        c.workload.drain = SimDuration::from_secs_f64(halved.max(5.0));
        out.push(c);
    }
    let smaller_n = case.scenario.n - case.scenario.n / 4;
    if smaller_n >= 4 && smaller_n < case.scenario.n && fits_in(case, smaller_n) {
        let mut c = case.clone();
        c.scenario.n = smaller_n;
        out.push(c);
    }
    out
}

/// Whether every node the case references still exists with `n` nodes.
fn fits_in(case: &ChaosCase, n: usize) -> bool {
    let ok = |id: NodeId| id.index() < n;
    case.scenario
        .adversary_assignments
        .iter()
        .all(|&(id, _)| ok(id))
        && case.scenario.fault_plan.touched_nodes().into_iter().all(ok)
        && case.scenario.sabotage.is_none_or(|(id, _)| ok(id))
        && case.workload.senders.iter().all(|&id| ok(id))
}

/// One soak run's result: the replayable case, its JSONL record (with
/// `wall_ms` pinned to zero so records are byte-identical across thread
/// counts), and any violations.
#[derive(Clone, Debug)]
pub struct SoakOutcome {
    /// The generated case.
    pub case: ChaosCase,
    /// The generating seed.
    pub seed: u64,
    /// One JSONL line describing the run.
    pub record: String,
    /// Invariant violations (empty on healthy runs).
    pub violations: Vec<Violation>,
}

/// Runs `count` generated cases starting at `seed_start` across `threads`
/// workers, drawing from `profile`. Output is bit-identical for any thread
/// count.
pub fn soak(
    seed_start: u64,
    count: usize,
    quick: bool,
    threads: usize,
    profile: ChaosProfile,
) -> Vec<SoakOutcome> {
    let seeds: Vec<u64> = (0..count as u64).map(|i| seed_start + i).collect();
    par_map(&seeds, threads, |i, &seed| {
        let case = generate_case_profiled(seed, quick, profile);
        let checked = run_case(&case);
        let params = vec![
            ("n".to_owned(), case.scenario.n.to_string()),
            (
                "faults".to_owned(),
                case.scenario.fault_plan.len().to_string(),
            ),
            (
                "adversaries".to_owned(),
                case.scenario.adversary_assignments.len().to_string(),
            ),
        ];
        let meta = RecordMeta {
            experiment: "chaos",
            label: &case.name,
            params: &params,
            seed,
            run_index: i,
            wall_ms: 0.0,
        };
        let record = run_record(&meta, &checked.summary, &[]);
        SoakOutcome {
            case,
            seed,
            record,
            violations: checked.violations,
        }
    })
}

// ---------------------------------------------------------------------------
// Corpus format: "byzcast-chaos v1", one declaration per line.
// ---------------------------------------------------------------------------

/// The corpus format's header line.
pub const CORPUS_HEADER: &str = "# byzcast-chaos v1";

fn millis(d: SimDuration) -> u64 {
    d.as_micros() / 1000
}

fn kind_to_text(kind: &AdversaryKind) -> String {
    match kind {
        AdversaryKind::Mute(p) => mute_policy_text(*p).to_owned(),
        AdversaryKind::Silent => "silent".to_owned(),
        AdversaryKind::Forger => "forger".to_owned(),
        AdversaryKind::Verbose { period, per_tick } => {
            format!("verbose {} {per_tick}", millis(*period))
        }
        AdversaryKind::GossipLiar => "gossip-liar".to_owned(),
        AdversaryKind::SelectiveForwarder(victims) => {
            let csv: Vec<String> = victims.iter().map(|v| v.0.to_string()).collect();
            format!("selective-forwarder {}", csv.join(","))
        }
        AdversaryKind::Impersonator { victim } => format!("impersonator {}", victim.0),
        AdversaryKind::Flooder {
            period,
            per_tick,
            payload_bytes,
        } => format!("flooder {} {per_tick} {payload_bytes}", millis(*period)),
        AdversaryKind::Replayer { delay } => format!("replayer {}", millis(*delay)),
        AdversaryKind::SigGrinder { period, per_tick } => {
            format!("sig-grinder {} {per_tick}", millis(*period))
        }
        AdversaryKind::Flapping(b) => format!("flap {}", flap_text(*b)),
    }
}

fn mute_policy_text(p: MutePolicy) -> &'static str {
    match p {
        MutePolicy::DropData => "mute-drop-data",
        MutePolicy::DropDataAndGossip => "mute-drop-data-gossip",
        MutePolicy::DropEverything => "mute-drop-everything",
    }
}

fn parse_mute_policy(s: &str) -> Option<MutePolicy> {
    match s {
        "mute-drop-data" => Some(MutePolicy::DropData),
        "mute-drop-data-gossip" => Some(MutePolicy::DropDataAndGossip),
        "mute-drop-everything" => Some(MutePolicy::DropEverything),
        _ => None,
    }
}

fn flap_text(b: FlapBehavior) -> &'static str {
    match b {
        FlapBehavior::Mute(p) => mute_policy_text(p),
        FlapBehavior::Forger => "forger",
    }
}

fn parse_flap(s: &str) -> Option<FlapBehavior> {
    if s == "forger" {
        return Some(FlapBehavior::Forger);
    }
    parse_mute_policy(s).map(FlapBehavior::Mute)
}

impl ChaosCase {
    /// Serializes the case in the versioned line-based corpus format.
    /// [`parse_case`] inverts it exactly.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let s = &self.scenario;
        let w = &self.workload;
        let mut out = String::new();
        let _ = writeln!(out, "{CORPUS_HEADER}");
        let _ = writeln!(out, "name {}", self.name);
        let _ = writeln!(out, "seed {}", s.seed);
        let _ = writeln!(out, "n {}", s.n);
        let _ = writeln!(out, "field {} {}", s.sim.field.width, s.sim.field.height);
        let _ = writeln!(out, "radio default");
        let r = &s.byzcast.resources;
        if !r.is_unlimited() {
            let _ = writeln!(
                out,
                "resources {} {} {} {} {} {} {} {} {}",
                r.frames_per_sec,
                r.frame_burst,
                r.verifs_per_sec,
                r.verif_burst,
                r.max_store_msgs,
                r.max_store_bytes,
                r.max_seen_ids,
                r.max_gossip_per_origin,
                r.max_missing_per_origin
            );
        }
        let rec = &s.byzcast.recovery;
        if rec.enabled() {
            let _ = writeln!(
                out,
                "recovery {} {} {} {} {} {} {}",
                rec.escalate_after,
                rec.max_escalations,
                millis(rec.backoff_base),
                millis(rec.backoff_cap),
                rec.widen_fanout,
                rec.find_ttl,
                u8::from(rec.reelect_on_indictment)
            );
        }
        match &s.mobility {
            MobilityChoice::Static => {
                let _ = writeln!(out, "mobility static");
            }
            MobilityChoice::Grid => {
                let _ = writeln!(out, "mobility grid");
            }
            MobilityChoice::Line { spacing } => {
                let _ = writeln!(out, "mobility line {spacing}");
            }
            MobilityChoice::Explicit(ps) => {
                let pts: Vec<String> = ps.iter().map(|p| format!("{},{}", p.x, p.y)).collect();
                let _ = writeln!(out, "mobility explicit {}", pts.join(" "));
            }
            MobilityChoice::Waypoint {
                min_mps,
                max_mps,
                pause,
            } => {
                let _ = writeln!(
                    out,
                    "mobility waypoint {min_mps} {max_mps} {}",
                    millis(*pause)
                );
            }
            MobilityChoice::Walk {
                speed_mps,
                mean_leg,
            } => {
                let _ = writeln!(out, "mobility walk {speed_mps} {}", millis(*mean_leg));
            }
        }
        for (id, kind) in &s.adversary_assignments {
            match kind {
                AdversaryKind::Flapping(b) => {
                    let _ = writeln!(out, "flap {} {}", id.0, flap_text(*b));
                }
                other => {
                    let _ = writeln!(out, "adversary {} {}", id.0, kind_to_text(other));
                }
            }
        }
        if let Some((id, kind)) = s.sabotage {
            let _ = writeln!(out, "sabotage {} {}", id.0, kind.name());
        }
        for ev in s.fault_plan.events() {
            let at = millis(ev.at);
            match ev.kind {
                FaultKind::Crash { node, retain_state } => {
                    let keep = if retain_state { "retain" } else { "lose" };
                    let _ = writeln!(out, "fault {at} crash {} {keep}", node.0);
                }
                FaultKind::Restart { node } => {
                    let _ = writeln!(out, "fault {at} restart {}", node.0);
                }
                FaultKind::SetByzantine { node, active } => {
                    let state = if active { "on" } else { "off" };
                    let _ = writeln!(out, "fault {at} byz {} {state}", node.0);
                }
                FaultKind::JamStart {
                    id,
                    center,
                    radius_m,
                    loss,
                } => {
                    let _ = writeln!(
                        out,
                        "fault {at} jam-start {id} {} {} {radius_m} {loss}",
                        center.x, center.y
                    );
                }
                FaultKind::JamEnd { id } => {
                    let _ = writeln!(out, "fault {at} jam-end {id}");
                }
            }
        }
        let senders: Vec<String> = w.senders.iter().map(|v| v.0.to_string()).collect();
        let _ = writeln!(
            out,
            "workload senders {} count {} bytes {} start_ms {} interval_ms {} drain_ms {}",
            senders.join(","),
            w.count,
            w.payload_bytes,
            millis(w.start),
            millis(w.interval),
            millis(w.drain)
        );
        for (oracle, count) in &self.expect {
            let _ = writeln!(out, "expect {oracle} {count}");
        }
        out
    }
}

/// Parses the corpus format back into a case. Unknown or malformed lines
/// are errors — a corpus file either replays exactly or not at all.
pub fn parse_case(text: &str) -> Result<ChaosCase, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == CORPUS_HEADER => {}
        other => return Err(format!("bad corpus header: {other:?}")),
    }
    let mut case = ChaosCase {
        name: String::new(),
        scenario: ScenarioConfig::default(),
        workload: Workload::default(),
        expect: Vec::new(),
    };
    let mut saw_n = false;
    for (lineno, raw) in lines.enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", lineno + 2);
        let mut it = line.split_whitespace();
        let key = it.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = it.collect();
        match key {
            "name" => case.name = rest.join(" "),
            "seed" => case.scenario.seed = parse_num(rest.first(), &err)?,
            "n" => {
                case.scenario.n = parse_num(rest.first(), &err)?;
                saw_n = true;
            }
            "field" => {
                let w: f64 = parse_num(rest.first(), &err)?;
                let h: f64 = parse_num(rest.get(1), &err)?;
                case.scenario.sim.field = Field::new(w, h);
            }
            "radio" => {
                if rest != ["default"] {
                    return Err(err("unsupported radio"));
                }
            }
            "resources" => {
                if rest.len() != 9 {
                    return Err(err("resources needs 9 limits"));
                }
                case.scenario.byzcast.resources = ResourceConfig {
                    frames_per_sec: parse_num(rest.first(), &err)?,
                    frame_burst: parse_num(rest.get(1), &err)?,
                    verifs_per_sec: parse_num(rest.get(2), &err)?,
                    verif_burst: parse_num(rest.get(3), &err)?,
                    max_store_msgs: parse_num(rest.get(4), &err)?,
                    max_store_bytes: parse_num(rest.get(5), &err)?,
                    max_seen_ids: parse_num(rest.get(6), &err)?,
                    max_gossip_per_origin: parse_num(rest.get(7), &err)?,
                    max_missing_per_origin: parse_num(rest.get(8), &err)?,
                };
            }
            "recovery" => {
                if rest.len() != 7 {
                    return Err(err("recovery needs 7 values"));
                }
                case.scenario.byzcast.recovery = RecoveryConfig {
                    escalate_after: parse_num(rest.first(), &err)?,
                    max_escalations: parse_num(rest.get(1), &err)?,
                    backoff_base: SimDuration::from_millis(parse_num(rest.get(2), &err)?),
                    backoff_cap: SimDuration::from_millis(parse_num(rest.get(3), &err)?),
                    widen_fanout: parse_num(rest.get(4), &err)?,
                    find_ttl: parse_num(rest.get(5), &err)?,
                    reelect_on_indictment: match *rest.get(6).expect("len checked") {
                        "1" => true,
                        "0" => false,
                        _ => return Err(err("bad reelect flag")),
                    },
                };
            }
            "mobility" => {
                case.scenario.mobility = parse_mobility(&rest).ok_or_else(|| err("bad mobility"))?
            }
            "adversary" => {
                let id = NodeId(parse_num(rest.first(), &err)?);
                let kind = parse_kind(&rest[1..]).ok_or_else(|| err("bad adversary kind"))?;
                case.scenario.adversary_assignments.push((id, kind));
            }
            "flap" => {
                let id = NodeId(parse_num(rest.first(), &err)?);
                let b = rest
                    .get(1)
                    .and_then(|s| parse_flap(s))
                    .ok_or_else(|| err("bad flap behavior"))?;
                case.scenario
                    .adversary_assignments
                    .push((id, AdversaryKind::Flapping(b)));
            }
            "sabotage" => {
                let id = NodeId(parse_num(rest.first(), &err)?);
                let kind = rest
                    .get(1)
                    .and_then(|s| SabotageKind::parse(s))
                    .ok_or_else(|| err("bad sabotage kind"))?;
                case.scenario.sabotage = Some((id, kind));
            }
            "fault" => {
                let at = SimDuration::from_millis(parse_num(rest.first(), &err)?);
                let kind = parse_fault(&rest[1..]).ok_or_else(|| err("bad fault"))?;
                case.scenario.fault_plan.push(at, kind);
            }
            "workload" => parse_workload(&rest, &mut case.workload).map_err(|m| err(&m))?,
            "expect" => {
                let oracle = rest.first().ok_or_else(|| err("missing oracle"))?;
                let count: u64 = parse_num(rest.get(1), &err)?;
                case.expect.push(((*oracle).to_owned(), count));
            }
            _ => return Err(err("unknown declaration")),
        }
    }
    if !saw_n || case.scenario.n == 0 {
        return Err("corpus file never declared n".to_owned());
    }
    Ok(case)
}

fn parse_num<T: std::str::FromStr>(
    tok: Option<&&str>,
    err: &impl Fn(&str) -> String,
) -> Result<T, String> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| err("bad number"))
}

fn parse_mobility(rest: &[&str]) -> Option<MobilityChoice> {
    match *rest.first()? {
        "static" => Some(MobilityChoice::Static),
        "grid" => Some(MobilityChoice::Grid),
        "line" => Some(MobilityChoice::Line {
            spacing: rest.get(1)?.parse().ok()?,
        }),
        "explicit" => {
            let mut ps = Vec::new();
            for tok in &rest[1..] {
                let (x, y) = tok.split_once(',')?;
                ps.push(Position::new(x.parse().ok()?, y.parse().ok()?));
            }
            Some(MobilityChoice::Explicit(ps))
        }
        "waypoint" => Some(MobilityChoice::Waypoint {
            min_mps: rest.get(1)?.parse().ok()?,
            max_mps: rest.get(2)?.parse().ok()?,
            pause: SimDuration::from_millis(rest.get(3)?.parse().ok()?),
        }),
        "walk" => Some(MobilityChoice::Walk {
            speed_mps: rest.get(1)?.parse().ok()?,
            mean_leg: SimDuration::from_millis(rest.get(2)?.parse().ok()?),
        }),
        _ => None,
    }
}

fn parse_kind(rest: &[&str]) -> Option<AdversaryKind> {
    match *rest.first()? {
        "silent" => Some(AdversaryKind::Silent),
        "forger" => Some(AdversaryKind::Forger),
        "gossip-liar" => Some(AdversaryKind::GossipLiar),
        "verbose" => Some(AdversaryKind::Verbose {
            period: SimDuration::from_millis(rest.get(1)?.parse().ok()?),
            per_tick: rest.get(2)?.parse().ok()?,
        }),
        "selective-forwarder" => {
            let mut victims = Vec::new();
            for tok in rest.get(1)?.split(',') {
                victims.push(NodeId(tok.parse().ok()?));
            }
            Some(AdversaryKind::SelectiveForwarder(victims))
        }
        "impersonator" => Some(AdversaryKind::Impersonator {
            victim: NodeId(rest.get(1)?.parse().ok()?),
        }),
        "flooder" => Some(AdversaryKind::Flooder {
            period: SimDuration::from_millis(rest.get(1)?.parse().ok()?),
            per_tick: rest.get(2)?.parse().ok()?,
            payload_bytes: rest.get(3)?.parse().ok()?,
        }),
        "replayer" => Some(AdversaryKind::Replayer {
            delay: SimDuration::from_millis(rest.get(1)?.parse().ok()?),
        }),
        "sig-grinder" => Some(AdversaryKind::SigGrinder {
            period: SimDuration::from_millis(rest.get(1)?.parse().ok()?),
            per_tick: rest.get(2)?.parse().ok()?,
        }),
        mute => parse_mute_policy(mute).map(AdversaryKind::Mute),
    }
}

fn parse_fault(rest: &[&str]) -> Option<FaultKind> {
    match *rest.first()? {
        "crash" => Some(FaultKind::Crash {
            node: NodeId(rest.get(1)?.parse().ok()?),
            retain_state: match *rest.get(2)? {
                "retain" => true,
                "lose" => false,
                _ => return None,
            },
        }),
        "restart" => Some(FaultKind::Restart {
            node: NodeId(rest.get(1)?.parse().ok()?),
        }),
        "byz" => Some(FaultKind::SetByzantine {
            node: NodeId(rest.get(1)?.parse().ok()?),
            active: match *rest.get(2)? {
                "on" => true,
                "off" => false,
                _ => return None,
            },
        }),
        "jam-start" => Some(FaultKind::JamStart {
            id: rest.get(1)?.parse().ok()?,
            center: Position::new(rest.get(2)?.parse().ok()?, rest.get(3)?.parse().ok()?),
            radius_m: rest.get(4)?.parse().ok()?,
            loss: rest.get(5)?.parse().ok()?,
        }),
        "jam-end" => Some(FaultKind::JamEnd {
            id: rest.get(1)?.parse().ok()?,
        }),
        _ => None,
    }
}

fn parse_workload(rest: &[&str], w: &mut Workload) -> Result<(), String> {
    let mut it = rest.iter();
    while let Some(key) = it.next() {
        let val = it
            .next()
            .ok_or_else(|| format!("missing value for {key}"))?;
        match *key {
            "senders" => {
                let mut senders = Vec::new();
                for tok in val.split(',') {
                    senders.push(NodeId(
                        tok.parse().map_err(|_| format!("bad sender {tok}"))?,
                    ));
                }
                w.senders = senders;
            }
            "count" => w.count = val.parse().map_err(|_| "bad count".to_owned())?,
            "bytes" => w.payload_bytes = val.parse().map_err(|_| "bad bytes".to_owned())?,
            "start_ms" => {
                w.start = SimDuration::from_millis(val.parse().map_err(|_| "bad start".to_owned())?)
            }
            "interval_ms" => {
                w.interval =
                    SimDuration::from_millis(val.parse().map_err(|_| "bad interval".to_owned())?)
            }
            "drain_ms" => {
                w.drain = SimDuration::from_millis(val.parse().map_err(|_| "bad drain".to_owned())?)
            }
            other => return Err(format!("unknown workload key {other}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_case(7, true);
        let b = generate_case(7, true);
        assert_eq!(a.to_text(), b.to_text());
        let c = generate_case(8, true);
        assert_ne!(a.to_text(), c.to_text());
    }

    #[test]
    fn corpus_round_trips_textually() {
        for seed in [0u64, 1, 2, 3, 10, 99] {
            let case = generate_case(seed, true);
            let text = case.to_text();
            let parsed = parse_case(&text).expect("parse back");
            assert_eq!(parsed.to_text(), text, "seed {seed}");
        }
    }

    #[test]
    fn crash_heavy_profile_is_adversary_free_and_round_trips() {
        for seed in 0..10u64 {
            let case = generate_case_profiled(seed, true, ChaosProfile::CrashHeavy);
            assert!(case.scenario.adversary_assignments.is_empty());
            assert!(matches!(case.scenario.mobility, MobilityChoice::Static));
            assert!(case.scenario.byzcast.recovery.enabled());
            assert!(
                case.scenario
                    .fault_plan
                    .events()
                    .iter()
                    .any(|ev| matches!(ev.kind, FaultKind::Crash { .. })),
                "seed {seed} generated no crash"
            );
            assert!(
                case.scenario.fault_plan.validate(case.scenario.n).is_ok(),
                "seed {seed}"
            );
            let text = case.to_text();
            assert!(text.contains("\nrecovery "), "recovery line missing");
            let parsed = parse_case(&text).expect("parse back");
            assert_eq!(parsed.to_text(), text, "seed {seed}");
            assert_eq!(
                parsed.scenario.byzcast.recovery,
                case.scenario.byzcast.recovery
            );
        }
    }

    #[test]
    fn corpus_without_recovery_line_parses_to_the_off_envelope() {
        let text = format!(
            "{CORPUS_HEADER}\nname old\nseed 1\nn 8\nmobility static\n\
             workload senders 0 count 1 bytes 256 start_ms 5000 interval_ms 1000 drain_ms 15000\n"
        );
        let case = parse_case(&text).expect("parse");
        assert!(
            !case.scenario.byzcast.recovery.enabled(),
            "pre-recovery corpus files must replay with the envelope off"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_case("nonsense").is_err());
        assert!(parse_case(&format!("{CORPUS_HEADER}\nfrobnicate 7\n")).is_err());
        assert!(parse_case(&format!("{CORPUS_HEADER}\nname x\n")).is_err());
    }

    #[test]
    fn generated_cases_reference_only_existing_nodes() {
        for seed in 0..20u64 {
            let case = generate_case(seed, true);
            let n = case.scenario.n;
            assert!(case
                .scenario
                .adversary_assignments
                .iter()
                .all(|&(id, _)| id.index() < n));
            assert!(case.scenario.fault_plan.validate(n).is_ok(), "seed {seed}");
            assert!(case.workload.senders.iter().all(|&id| id.index() < n));
        }
    }

    #[test]
    fn shrinker_strictly_shrinks_a_sabotaged_case() {
        // A deliberately bloated reproducer: a sabotaged node plus redundant
        // fault events and adversaries that have nothing to do with the bug.
        let mut case = generate_case(3, true);
        case.scenario.sabotage = Some((NodeId(1), SabotageKind::DoubleDeliver));
        case.scenario.fault_plan.push(
            SimDuration::from_secs(3),
            FaultKind::Crash {
                node: NodeId(5),
                retain_state: true,
            },
        );
        case.scenario.fault_plan.push(
            SimDuration::from_secs(6),
            FaultKind::Restart { node: NodeId(5) },
        );
        let before = case_size(&case);

        let result = shrink(&case, 120);
        assert!(
            !result.case.expect.is_empty(),
            "shrinker lost the violation"
        );
        assert!(
            result
                .case
                .expect
                .iter()
                .any(|(o, _)| o == "no-duplication"),
            "wrong violation preserved: {:?}",
            result.case.expect
        );
        assert!(
            case_size(&result.case) < before,
            "no reduction: {} -> {}",
            before,
            case_size(&result.case)
        );
    }
}
