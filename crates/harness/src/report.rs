//! Plain-text tables for experiment output.

use std::fmt;

/// A fixed-width text table: headers plus rows of cells.
///
/// ```
/// use byzcast_harness::Table;
/// let mut t = Table::new(["protocol", "delivery"]);
/// t.add_row(["byzcast", "0.998"]);
/// t.add_row(["flooding", "1.000"]);
/// let rendered = t.to_string();
/// assert!(rendered.starts_with("protocol"));
/// assert_eq!(rendered.lines().count(), 4); // header + rule + 2 rows
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn add_row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', pad));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with sensible precision for tables.
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        "inf".to_owned()
    } else if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.add_row(["alpha", "1"]);
        t.add_row(["b", "22222"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      22222");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.add_row(["x"]);
        assert!(t.to_string().contains('x'));
    }

    #[test]
    fn fnum_scales_precision() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.123456), "0.123");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(1234.6), "1235");
        assert_eq!(fnum(f64::INFINITY), "inf");
    }
}
