//! Application workload generation.

use byzcast_sim::{NodeId, SimDuration};

/// A broadcast workload: which nodes send, how many messages, how large,
/// and at what rate.
///
/// ```
/// use byzcast_harness::Workload;
/// use byzcast_sim::NodeId;
/// let w = Workload::single_sender(NodeId(0), 5);
/// let schedule = w.schedule();
/// assert_eq!(schedule.len(), 5);
/// assert!(schedule.iter().all(|&(_, sender, _, _)| sender == NodeId(0)));
/// ```
#[derive(Clone, Debug)]
pub struct Workload {
    /// Sending nodes, used round-robin.
    pub senders: Vec<NodeId>,
    /// Total messages to inject.
    pub count: usize,
    /// Application payload size in bytes.
    pub payload_bytes: usize,
    /// Warm-up before the first message (lets the overlay converge).
    pub start: SimDuration,
    /// Spacing between consecutive messages.
    pub interval: SimDuration,
    /// Extra time to run after the last injection so stragglers recover.
    pub drain: SimDuration,
}

impl Workload {
    /// A single sender injecting `count` messages.
    pub fn single_sender(sender: NodeId, count: usize) -> Self {
        Workload {
            senders: vec![sender],
            count,
            ..Workload::default()
        }
    }

    /// The injection schedule: `(time, sender, payload_id, size)` tuples.
    /// Payload ids start at 1.
    pub fn schedule(&self) -> Vec<(SimDuration, NodeId, u64, usize)> {
        assert!(
            !self.senders.is_empty(),
            "workload needs at least one sender"
        );
        (0..self.count)
            .map(|i| {
                let at = self.start + self.interval.saturating_mul(i as u64);
                let sender = self.senders[i % self.senders.len()];
                (at, sender, i as u64 + 1, self.payload_bytes)
            })
            .collect()
    }

    /// Total simulated time the run needs: warm-up + injections + drain.
    pub fn horizon(&self) -> SimDuration {
        self.start
            + self
                .interval
                .saturating_mul(self.count.saturating_sub(1) as u64)
            + self.drain
    }

    /// The injection rate δ (messages per second) used in the paper's buffer
    /// bound; zero when the interval is zero.
    pub fn delta(&self) -> f64 {
        let s = self.interval.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            1.0 / s
        }
    }
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            senders: vec![NodeId(0)],
            count: 10,
            payload_bytes: 512,
            start: SimDuration::from_secs(5),
            interval: SimDuration::from_millis(500),
            drain: SimDuration::from_secs(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_round_robins_senders() {
        let w = Workload {
            senders: vec![NodeId(1), NodeId(2)],
            count: 4,
            start: SimDuration::from_secs(1),
            interval: SimDuration::from_secs(2),
            ..Workload::default()
        };
        let s = w.schedule();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], (SimDuration::from_secs(1), NodeId(1), 1, 512));
        assert_eq!(s[1], (SimDuration::from_secs(3), NodeId(2), 2, 512));
        assert_eq!(s[2].1, NodeId(1));
        assert_eq!(s[3].1, NodeId(2));
    }

    #[test]
    fn horizon_covers_all_injections_plus_drain() {
        let w = Workload {
            count: 3,
            start: SimDuration::from_secs(5),
            interval: SimDuration::from_secs(1),
            drain: SimDuration::from_secs(10),
            ..Workload::default()
        };
        assert_eq!(w.horizon(), SimDuration::from_secs(17));
    }

    #[test]
    fn delta_is_injection_rate() {
        let w = Workload {
            interval: SimDuration::from_millis(250),
            ..Workload::default()
        };
        assert!((w.delta() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn empty_senders_panics() {
        let w = Workload {
            senders: vec![],
            ..Workload::default()
        };
        w.schedule();
    }
}
