//! Message headers and the wildcard patterns the MUTE detector matches on.
//!
//! The paper splits every message into "a header part and a data part. The
//! header part can be anticipated based on local information only": "the
//! type of a message (application data, gossip, request for retransmission,
//! etc.), the id of the originator, and a sequence number". The `expect`
//! interface accepts headers with "wildcards as well as exact values for each
//! of the header's fields" — [`HeaderPattern`] implements exactly that.

use byzcast_sim::NodeId;

/// The protocol message types of the dissemination algorithm (Figures 3–4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MsgKind {
    /// An application data message (`DATA` in the pseudo-code).
    Data,
    /// A signature gossip (`GOSSIP`).
    Gossip,
    /// A retransmission request (`REQUEST_MSG`).
    RequestMsg,
    /// An overlay-level search for a missing message (`FIND_MISSING_MSG`).
    FindMissingMsg,
    /// An overlay-maintenance beacon.
    Beacon,
}

impl MsgKind {
    /// Short label for metrics and traces.
    pub const fn label(self) -> &'static str {
        match self {
            MsgKind::Data => "data",
            MsgKind::Gossip => "gossip",
            MsgKind::RequestMsg => "request",
            MsgKind::FindMissingMsg => "find_missing",
            MsgKind::Beacon => "beacon",
        }
    }
}

/// The anticipatable part of a message: type, originator, sequence number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MsgHeader {
    /// The message type.
    pub kind: MsgKind,
    /// The originator of the (application) message this refers to.
    pub origin: NodeId,
    /// The originator's sequence number for the message.
    pub seq: u64,
}

impl MsgHeader {
    /// Builds a header.
    pub const fn new(kind: MsgKind, origin: NodeId, seq: u64) -> Self {
        MsgHeader { kind, origin, seq }
    }
}

/// A header with optional wildcards per field (`None` = match anything).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct HeaderPattern {
    /// Required message type, if any.
    pub kind: Option<MsgKind>,
    /// Required originator, if any.
    pub origin: Option<NodeId>,
    /// Required sequence number, if any.
    pub seq: Option<u64>,
}

impl HeaderPattern {
    /// Matches any header at all.
    pub const fn any() -> Self {
        HeaderPattern {
            kind: None,
            origin: None,
            seq: None,
        }
    }

    /// Matches any header of the given type.
    pub const fn any_of_kind(kind: MsgKind) -> Self {
        HeaderPattern {
            kind: Some(kind),
            origin: None,
            seq: None,
        }
    }

    /// Matches exactly one header.
    pub const fn exact(header: MsgHeader) -> Self {
        HeaderPattern {
            kind: Some(header.kind),
            origin: Some(header.origin),
            seq: Some(header.seq),
        }
    }

    /// Matches the data message identified by `(origin, seq)` — the pattern
    /// the dissemination task registers when it expects the overlay to
    /// forward a message.
    pub const fn data_msg(origin: NodeId, seq: u64) -> Self {
        HeaderPattern {
            kind: Some(MsgKind::Data),
            origin: Some(origin),
            seq: Some(seq),
        }
    }

    /// Whether `header` satisfies the pattern.
    pub fn matches(&self, header: &MsgHeader) -> bool {
        self.kind.is_none_or(|k| k == header.kind)
            && self.origin.is_none_or(|o| o == header.origin)
            && self.seq.is_none_or(|s| s == header.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(kind: MsgKind, origin: u32, seq: u64) -> MsgHeader {
        MsgHeader::new(kind, NodeId(origin), seq)
    }

    #[test]
    fn wildcard_matches_everything() {
        let p = HeaderPattern::any();
        assert!(p.matches(&h(MsgKind::Data, 1, 2)));
        assert!(p.matches(&h(MsgKind::Gossip, 9, 0)));
    }

    #[test]
    fn exact_matches_only_itself() {
        let target = h(MsgKind::Data, 3, 7);
        let p = HeaderPattern::exact(target);
        assert!(p.matches(&target));
        assert!(!p.matches(&h(MsgKind::Data, 3, 8)));
        assert!(!p.matches(&h(MsgKind::Data, 4, 7)));
        assert!(!p.matches(&h(MsgKind::Gossip, 3, 7)));
    }

    #[test]
    fn partial_wildcards() {
        let p = HeaderPattern {
            kind: Some(MsgKind::Data),
            origin: Some(NodeId(3)),
            seq: None,
        };
        assert!(p.matches(&h(MsgKind::Data, 3, 0)));
        assert!(p.matches(&h(MsgKind::Data, 3, 99)));
        assert!(!p.matches(&h(MsgKind::Data, 4, 0)));
    }

    #[test]
    fn data_msg_helper() {
        let p = HeaderPattern::data_msg(NodeId(2), 5);
        assert!(p.matches(&h(MsgKind::Data, 2, 5)));
        assert!(!p.matches(&h(MsgKind::Gossip, 2, 5)));
    }

    #[test]
    fn kind_labels_are_distinct() {
        let kinds = [
            MsgKind::Data,
            MsgKind::Gossip,
            MsgKind::RequestMsg,
            MsgKind::FindMissingMsg,
            MsgKind::Beacon,
        ];
        let labels: std::collections::HashSet<&str> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}
