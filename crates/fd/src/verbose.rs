//! The VERBOSE failure detector (classes ◇P_verbose and I_verbose).
//!
//! "The goal of the VERBOSE failure detector is to detect verbose nodes.
//! Such nodes try to overload the system by sending too many messages…
//! Detecting such nodes is therefore useful in order to allow nodes to stop
//! reacting to messages from these nodes." Its interface method is
//! `indict(node id)`: "VERBOSE maintains a counter for each node that was
//! listed in any invocation of its method. The counter is incremented on each
//! such event, and after a given threshold, the node is considered to be a
//! suspect." The paper also mentions "a method that allows to specify general
//! requirements about the minimal spacing between consecutive arrivals of
//! messages of the same type", invoked at initialization time — implemented
//! here as [`VerboseDetector::set_min_spacing`] plus
//! [`VerboseDetector::observe_arrival`]. Counters age down periodically.

use std::collections::HashMap;

use byzcast_sim::{NodeId, SimDuration, SimTime};

use crate::header::MsgKind;

/// VERBOSE detector parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerboseConfig {
    /// Indictments at which a node becomes suspected.
    pub threshold: u32,
    /// How often counters are decremented by one (the aging mechanism).
    pub decay_interval: SimDuration,
    /// How long a node stays suspected after crossing the threshold.
    pub suspicion_duration: SimDuration,
    /// Resource-governance feed: how many admission/quota violations from
    /// one neighbour convert into a single VERBOSE indictment (see
    /// [`VerboseDetector::report_quota_violation`]). `0` disables the feed.
    /// Only reachable when resource limits are configured, so the default is
    /// inert under ungoverned configurations.
    pub quota_violation_threshold: u32,
}

impl Default for VerboseConfig {
    fn default() -> Self {
        VerboseConfig {
            threshold: 10,
            decay_interval: SimDuration::from_secs(5),
            suspicion_duration: SimDuration::from_secs(10),
            quota_violation_threshold: 8,
        }
    }
}

/// The VERBOSE failure detector of one node.
#[derive(Debug)]
pub struct VerboseDetector {
    config: VerboseConfig,
    counters: HashMap<NodeId, u32>,
    suspicions: HashMap<NodeId, SimTime>,
    min_spacing: HashMap<MsgKind, SimDuration>,
    last_arrival: HashMap<(NodeId, MsgKind), SimTime>,
    last_decay: SimTime,
    /// Total indictments per node over the whole run (diagnostic; not aged).
    indict_counts: HashMap<NodeId, u64>,
    /// Accumulated resource-quota violations per node, reset each time they
    /// convert into an indictment.
    quota_violations: HashMap<NodeId, u32>,
}

impl VerboseDetector {
    /// Creates a detector.
    pub fn new(config: VerboseConfig) -> Self {
        VerboseDetector {
            config,
            counters: HashMap::new(),
            suspicions: HashMap::new(),
            min_spacing: HashMap::new(),
            last_arrival: HashMap::new(),
            last_decay: SimTime::ZERO,
            indict_counts: HashMap::new(),
            quota_violations: HashMap::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &VerboseConfig {
        &self.config
    }

    /// Declares that consecutive messages of `kind` from the same node closer
    /// together than `spacing` constitute a verbose fault. Typically invoked
    /// at initialization time.
    pub fn set_min_spacing(&mut self, kind: MsgKind, spacing: SimDuration) {
        self.min_spacing.insert(kind, spacing);
    }

    /// Indicts `node` for sending too many messages of some type.
    pub fn indict(&mut self, now: SimTime, node: NodeId) {
        let c = self.counters.entry(node).or_insert(0);
        *c += 1;
        *self.indict_counts.entry(node).or_insert(0) += 1;
        if *c >= self.config.threshold {
            let until = now + self.config.suspicion_duration;
            let entry = self.suspicions.entry(node).or_insert(until);
            *entry = (*entry).max(until);
        }
    }

    /// Feeds one resource-governance violation by `node` (an admission
    /// drop, refused verification, or per-origin quota rejection). Every
    /// `quota_violation_threshold` violations convert into one [`indict`]
    /// call, so *sustained* flooding is suspected and shed — not just
    /// throttled — while isolated bursts merely lose the dropped frames.
    /// Returns whether this violation produced an indictment.
    ///
    /// [`indict`]: VerboseDetector::indict
    pub fn report_quota_violation(&mut self, now: SimTime, node: NodeId) -> bool {
        if self.config.quota_violation_threshold == 0 {
            return false;
        }
        let c = self.quota_violations.entry(node).or_insert(0);
        *c += 1;
        if *c >= self.config.quota_violation_threshold {
            *c = 0;
            self.indict(now, node);
            true
        } else {
            false
        }
    }

    /// Feeds a message arrival; auto-indicts if it violates the minimum
    /// spacing registered for its kind.
    pub fn observe_arrival(&mut self, now: SimTime, node: NodeId, kind: MsgKind) {
        // Arrival times are only ever compared against a spacing rule, so
        // kinds without one need no tracking at all (rules are registered at
        // initialization time, before any arrivals).
        let Some(&spacing) = self.min_spacing.get(&kind) else {
            return;
        };
        if let Some(&prev) = self.last_arrival.get(&(node, kind)) {
            if now.saturating_since(prev) < spacing {
                self.indict(now, node);
            }
        }
        self.last_arrival.insert((node, kind), now);
    }

    /// Ages counters down and expires old suspicions.
    pub fn tick(&mut self, now: SimTime) {
        while now.saturating_since(self.last_decay) >= self.config.decay_interval {
            self.last_decay += self.config.decay_interval;
            self.counters.retain(|_, c| {
                *c = c.saturating_sub(1);
                *c > 0
            });
        }
        self.suspicions.retain(|_, until| *until > now);
    }

    /// Whether `node` is currently suspected.
    pub fn is_suspected(&self, node: NodeId, now: SimTime) -> bool {
        self.suspicions.get(&node).is_some_and(|&until| until > now)
    }

    /// The nodes currently suspected, in id order.
    pub fn suspects(&self, now: SimTime) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .suspicions
            .iter()
            .filter(|(_, &until)| until > now)
            .map(|(&n, _)| n)
            .collect();
        out.sort_unstable();
        out
    }

    /// The current (aged) counter for `node`.
    pub fn counter(&self, node: NodeId) -> u32 {
        self.counters.get(&node).copied().unwrap_or(0)
    }

    /// Total indictments of `node` over the run (diagnostic).
    pub fn indict_count(&self, node: NodeId) -> u64 {
        self.indict_counts.get(&node).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> VerboseConfig {
        VerboseConfig {
            threshold: 3,
            decay_interval: SimDuration::from_secs(1),
            suspicion_duration: SimDuration::from_secs(5),
            quota_violation_threshold: 2,
        }
    }

    #[test]
    fn below_threshold_is_not_suspected() {
        let mut fd = VerboseDetector::new(config());
        let t = SimTime::from_secs(1);
        fd.indict(t, NodeId(1));
        fd.indict(t, NodeId(1));
        assert!(!fd.is_suspected(NodeId(1), t));
        assert_eq!(fd.counter(NodeId(1)), 2);
    }

    #[test]
    fn threshold_crossing_suspects() {
        let mut fd = VerboseDetector::new(config());
        let t = SimTime::from_secs(1);
        for _ in 0..3 {
            fd.indict(t, NodeId(1));
        }
        assert!(fd.is_suspected(NodeId(1), t));
        assert_eq!(fd.suspects(t), vec![NodeId(1)]);
        assert_eq!(fd.indict_count(NodeId(1)), 3);
    }

    #[test]
    fn counters_decay_over_time() {
        let mut fd = VerboseDetector::new(config());
        let t = SimTime::from_secs(1);
        fd.indict(t, NodeId(1));
        fd.indict(t, NodeId(1));
        // Two decay intervals pass: counter 2 -> 0.
        fd.tick(t + SimDuration::from_secs(2));
        assert_eq!(fd.counter(NodeId(1)), 0);
        // Slow indictments never accumulate to the threshold.
        let mut now = t;
        for _ in 0..10 {
            now += SimDuration::from_secs(2);
            fd.indict(now, NodeId(2));
            fd.tick(now);
        }
        assert!(!fd.is_suspected(NodeId(2), now));
    }

    #[test]
    fn suspicion_expires() {
        let mut fd = VerboseDetector::new(config());
        let t = SimTime::from_secs(1);
        for _ in 0..3 {
            fd.indict(t, NodeId(1));
        }
        let later = t + SimDuration::from_secs(6);
        fd.tick(later);
        assert!(!fd.is_suspected(NodeId(1), later));
    }

    #[test]
    fn min_spacing_violations_auto_indict() {
        let mut fd = VerboseDetector::new(config());
        fd.set_min_spacing(MsgKind::RequestMsg, SimDuration::from_millis(500));
        let t = SimTime::from_secs(1);
        // Four rapid-fire requests: three spacing violations ≥ threshold.
        for i in 0..4u64 {
            fd.observe_arrival(
                t + SimDuration::from_millis(i * 10),
                NodeId(3),
                MsgKind::RequestMsg,
            );
        }
        assert!(fd.is_suspected(NodeId(3), t + SimDuration::from_millis(40)));
    }

    #[test]
    fn spaced_arrivals_do_not_indict() {
        let mut fd = VerboseDetector::new(config());
        fd.set_min_spacing(MsgKind::RequestMsg, SimDuration::from_millis(500));
        let t = SimTime::from_secs(1);
        for i in 0..10u64 {
            fd.observe_arrival(
                t + SimDuration::from_secs(i),
                NodeId(3),
                MsgKind::RequestMsg,
            );
        }
        assert_eq!(fd.counter(NodeId(3)), 0);
    }

    #[test]
    fn quota_violations_accumulate_into_indictments() {
        let mut fd = VerboseDetector::new(config());
        let t = SimTime::from_secs(1);
        // Threshold 2: every second violation is one indictment.
        assert!(!fd.report_quota_violation(t, NodeId(4)));
        assert!(fd.report_quota_violation(t, NodeId(4)));
        assert_eq!(fd.indict_count(NodeId(4)), 1);
        // Sustained flooding crosses the suspicion threshold (3).
        for _ in 0..4 {
            fd.report_quota_violation(t, NodeId(4));
        }
        assert!(fd.is_suspected(NodeId(4), t));
    }

    #[test]
    fn zero_quota_threshold_disables_the_feed() {
        let mut fd = VerboseDetector::new(VerboseConfig {
            quota_violation_threshold: 0,
            ..config()
        });
        let t = SimTime::from_secs(1);
        for _ in 0..100 {
            assert!(!fd.report_quota_violation(t, NodeId(4)));
        }
        assert_eq!(fd.indict_count(NodeId(4)), 0);
        assert!(!fd.is_suspected(NodeId(4), t));
    }

    #[test]
    fn kinds_without_spacing_rule_are_ignored() {
        let mut fd = VerboseDetector::new(config());
        let t = SimTime::from_secs(1);
        for i in 0..10u64 {
            fd.observe_arrival(t + SimDuration::from_micros(i), NodeId(3), MsgKind::Gossip);
        }
        assert_eq!(fd.counter(NodeId(3)), 0);
    }
}
