//! # byzcast-fd — the MUTE, VERBOSE and TRUST failure detectors
//!
//! The broadcast protocol of the paper "overcomes Byzantine failures by
//! combining digital signatures, gossiping of message signatures, and failure
//! detectors". This crate implements the three failure detectors of the
//! paper's node architecture (Figure 1) with the interface of its Figure 2:
//!
//! * [`MuteDetector`] (`expect(header, nodes, one|all)`) — detects *mute*
//!   failures: "failure to send a message with an expected header w.r.t. the
//!   protocol". Implemented, as the paper suggests, by "setting a timeout for
//!   each message reported to the failure detector with the expect method";
//!   nodes that miss the deadline are "suspected for a certain period of
//!   time" (the suspicion interval).
//! * [`VerboseDetector`] (`indict(node)`) — detects *verbose* failures:
//!   "sending messages too often w.r.t. the protocol". It keeps a counter per
//!   indicted node, suspects past a threshold, supports minimum-spacing rules
//!   per message type, and ages counters down over time ("the suspicion
//!   counters for each node are periodically decremented").
//! * [`TrustDetector`] (`suspect(node, reason)`) — aggregates MUTE, VERBOSE,
//!   bad-signature reports and second-hand suspicions from trusted
//!   neighbours into a per-node [`TrustLevel`] (`Trusted`, `Unknown`,
//!   `Untrusted`) that feeds the overlay maintenance protocol.
//!
//! An important property stressed by the paper: these detectors observe only
//! *locally detectable, benign* misbehaviour, so they work in an eventually
//! synchronous environment "regardless of the ratio between the number of
//! Byzantine processes and the entire set of processes".
//!
//! [`interval`] provides the paper's *interval failure detector* classes
//! (`I_mute`, Section 2.2): a parameter set and a [`interval::SuspicionLog`]
//! checker used by tests and experiment R6 to verify Interval Strong Accuracy
//! and Interval Local Completeness on recorded runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod header;
pub mod interval;
pub mod mute;
pub mod trust;
pub mod verbose;

pub use header::{HeaderPattern, MsgHeader, MsgKind};
pub use interval::{IntervalSpec, SuspicionLog};
pub use mute::{ExpectMode, MuteConfig, MuteDetector};
pub use trust::{SuspicionReason, TrustConfig, TrustDetector, TrustLevel};
pub use verbose::{VerboseConfig, VerboseDetector};

use byzcast_sim::{NodeId, SimTime};

/// The three detectors of the paper's node architecture, bundled with the
/// exact interface of its Figure 2.
///
/// Protocol code owns one `FailureDetectors` per node, feeds every observed
/// header into it, and reads back trust levels for the overlay.
#[derive(Debug)]
pub struct FailureDetectors {
    /// The MUTE detector (class ◇P_mute / I_mute).
    pub mute: MuteDetector,
    /// The VERBOSE detector (class ◇P_verbose / I_verbose).
    pub verbose: VerboseDetector,
    /// The TRUST aggregator.
    pub trust: TrustDetector,
}

impl FailureDetectors {
    /// Creates the bundle from per-detector configurations.
    pub fn new(mute: MuteConfig, verbose: VerboseConfig, trust: TrustConfig) -> Self {
        FailureDetectors {
            mute: MuteDetector::new(mute),
            verbose: VerboseDetector::new(verbose),
            trust: TrustDetector::new(trust),
        }
    }

    /// Advances detector-internal time: fires expect deadlines, ages
    /// counters, expires suspicions, and propagates fresh MUTE/VERBOSE
    /// suspicions into TRUST. Call periodically (e.g. from a protocol timer).
    pub fn tick(&mut self, now: SimTime) {
        self.mute.tick(now);
        self.verbose.tick(now);
        for node in self.mute.suspects(now) {
            self.trust.suspect(now, node, SuspicionReason::Mute);
        }
        for node in self.verbose.suspects(now) {
            self.trust.suspect(now, node, SuspicionReason::Verbose);
        }
        self.trust.tick(now);
    }

    /// The aggregated trust level of `node` at `now`.
    pub fn level(&self, node: NodeId, now: SimTime) -> TrustLevel {
        self.trust.level(node, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_sim::SimDuration;

    fn bundle() -> FailureDetectors {
        FailureDetectors::new(
            MuteConfig::default(),
            VerboseConfig::default(),
            TrustConfig::default(),
        )
    }

    #[test]
    fn mute_suspicion_flows_into_trust() {
        // Short expect timeout so all misses land within one decay interval.
        let mute = MuteConfig {
            expect_timeout: SimDuration::from_millis(300),
            ..MuteConfig::default()
        };
        let mut fd = FailureDetectors::new(mute, VerboseConfig::default(), TrustConfig::default());
        let threshold = fd.mute.config().threshold;
        let timeout = fd.mute.config().expect_timeout;
        let mut t = SimTime::from_secs(1);
        // Miss `threshold` expectations in a row: each message from origin 9
        // that node 5 fails to forward counts against it.
        for seq in 0..u64::from(threshold) {
            fd.mute.expect(
                t,
                byzcast_fd_test_pattern(seq),
                &[NodeId(5)],
                ExpectMode::All,
            );
            t = t + timeout + SimDuration::from_millis(1);
            fd.tick(t);
        }
        assert_eq!(fd.level(NodeId(5), t), TrustLevel::Untrusted);
        assert_eq!(fd.level(NodeId(6), t), TrustLevel::Trusted);
    }

    fn byzcast_fd_test_pattern(seq: u64) -> HeaderPattern {
        HeaderPattern {
            kind: Some(MsgKind::Data),
            origin: Some(NodeId(9)),
            seq: Some(seq),
        }
    }

    #[test]
    fn verbose_indictments_flow_into_trust() {
        let mut fd = bundle();
        let t = SimTime::from_secs(1);
        for _ in 0..fd.verbose.config().threshold {
            fd.verbose.indict(t, NodeId(2));
        }
        fd.tick(t);
        assert_eq!(fd.level(NodeId(2), t), TrustLevel::Untrusted);
    }
}
