//! The TRUST failure detector.
//!
//! "The TRUST failure detector collects the reports of MUTE and VERBOSE, as
//! well as detections of messages with bad signatures and other locally
//! observable deviations from the protocol. In return, TRUST maintains a
//! trust level for each neighboring node. This information is fed into the
//! overlay."
//!
//! The overlay maintenance protocol (paper §3.3) distinguishes three levels
//! per neighbour `q` of `p`:
//!
//! * **untrusted** — "the TRUST failure detector of p suspects q";
//! * **unknown** — "the TRUST failure detector of p does not suspect q but
//!   another neighbor of p that p trusts reported to p that it suspects q";
//! * **trusted** — "p has no reason to suspect q".
//!
//! Second-hand reports are accepted "unless p already suspects either q or
//! r"; a Byzantine node "can cause correct nodes to unnecessarily join the
//! overlay, but it cannot destroy the connectivity of the overlay w.r.t.
//! correct nodes".

use std::collections::HashMap;

use byzcast_sim::{NodeId, SimDuration, SimTime};

/// Why a node was suspected (fed to `suspect`, kept for diagnostics).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SuspicionReason {
    /// Reported by the MUTE failure detector.
    Mute,
    /// Reported by the VERBOSE failure detector.
    Verbose,
    /// A message carried a signature that did not verify.
    BadSignature,
    /// Any other locally observable protocol deviation.
    ProtocolViolation,
}

impl std::fmt::Display for SuspicionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SuspicionReason::Mute => "mute",
            SuspicionReason::Verbose => "verbose",
            SuspicionReason::BadSignature => "bad signature",
            SuspicionReason::ProtocolViolation => "protocol violation",
        };
        f.write_str(s)
    }
}

/// The trust level `p` assigns a neighbour, as used by the overlay.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum TrustLevel {
    /// No reason to suspect the node.
    #[default]
    Trusted,
    /// Not suspected locally, but a trusted neighbour reported suspicion.
    Unknown,
    /// Suspected by this node's own TRUST detector.
    Untrusted,
}

/// TRUST detector parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrustConfig {
    /// How long a direct suspicion lasts before aging out.
    pub suspicion_duration: SimDuration,
    /// How long a second-hand ("unknown") report lasts before aging out.
    pub report_duration: SimDuration,
}

impl Default for TrustConfig {
    fn default() -> Self {
        TrustConfig {
            suspicion_duration: SimDuration::from_secs(10),
            report_duration: SimDuration::from_secs(10),
        }
    }
}

/// The TRUST failure detector of one node.
#[derive(Debug)]
pub struct TrustDetector {
    config: TrustConfig,
    /// Node → (instant until suspected, latest reason).
    suspicions: HashMap<NodeId, (SimTime, SuspicionReason)>,
    /// Suspected node → reporters and expiry of their second-hand report.
    reports: HashMap<NodeId, HashMap<NodeId, SimTime>>,
    /// Total suspicions raised per node, by reason (diagnostic).
    history: HashMap<(NodeId, SuspicionReason), u64>,
}

impl TrustDetector {
    /// Creates a detector.
    pub fn new(config: TrustConfig) -> Self {
        TrustDetector {
            config,
            suspicions: HashMap::new(),
            reports: HashMap::new(),
            history: HashMap::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TrustConfig {
        &self.config
    }

    /// Directly suspects `node` for `reason` (Figure 2's `suspect` method).
    pub fn suspect(&mut self, now: SimTime, node: NodeId, reason: SuspicionReason) {
        let until = now + self.config.suspicion_duration;
        let entry = self.suspicions.entry(node).or_insert((until, reason));
        entry.0 = entry.0.max(until);
        entry.1 = reason;
        *self.history.entry((node, reason)).or_insert(0) += 1;
    }

    /// Handles a second-hand report: `reporter` (a neighbour) says it
    /// suspects `suspected`. Ignored if we suspect the reporter; a report
    /// about an already-untrusted node changes nothing.
    pub fn report_from_neighbor(&mut self, now: SimTime, reporter: NodeId, suspected: NodeId) {
        if self.is_suspected(reporter, now) {
            return; // untrusted reporters carry no weight
        }
        if self.is_suspected(suspected, now) {
            return; // already untrusted; unknown would be a downgrade
        }
        self.reports
            .entry(suspected)
            .or_default()
            .insert(reporter, now + self.config.report_duration);
    }

    /// Ages out stale suspicions and second-hand reports.
    pub fn tick(&mut self, now: SimTime) {
        self.suspicions.retain(|_, (until, _)| *until > now);
        self.reports.retain(|_, reporters| {
            reporters.retain(|_, until| *until > now);
            !reporters.is_empty()
        });
    }

    /// Whether `node` is directly suspected at `now`.
    pub fn is_suspected(&self, node: NodeId, now: SimTime) -> bool {
        self.suspicions
            .get(&node)
            .is_some_and(|&(until, _)| until > now)
    }

    /// The trust level of `node` at `now`.
    ///
    /// A second-hand report only yields `Unknown` while its reporter is
    /// itself trusted (reports from since-suspected reporters are ignored).
    pub fn level(&self, node: NodeId, now: SimTime) -> TrustLevel {
        if self.is_suspected(node, now) {
            return TrustLevel::Untrusted;
        }
        if let Some(reporters) = self.reports.get(&node) {
            let live_trusted_reporter = reporters
                .iter()
                .any(|(&r, &until)| until > now && !self.is_suspected(r, now));
            if live_trusted_reporter {
                return TrustLevel::Unknown;
            }
        }
        TrustLevel::Trusted
    }

    /// Nodes currently `Untrusted`, in id order.
    pub fn untrusted(&self, now: SimTime) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .suspicions
            .iter()
            .filter(|(_, &(until, _))| until > now)
            .map(|(&n, _)| n)
            .collect();
        out.sort_unstable();
        out
    }

    /// Total suspicions raised against `node` for `reason` (diagnostic).
    pub fn history(&self, node: NodeId, reason: SuspicionReason) -> u64 {
        self.history.get(&(node, reason)).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> TrustDetector {
        TrustDetector::new(TrustConfig {
            suspicion_duration: SimDuration::from_secs(10),
            report_duration: SimDuration::from_secs(10),
        })
    }

    #[test]
    fn default_is_trusted() {
        let d = det();
        assert_eq!(d.level(NodeId(1), SimTime::ZERO), TrustLevel::Trusted);
    }

    #[test]
    fn direct_suspicion_is_untrusted_then_ages() {
        let mut d = det();
        let t = SimTime::from_secs(1);
        d.suspect(t, NodeId(1), SuspicionReason::BadSignature);
        assert_eq!(d.level(NodeId(1), t), TrustLevel::Untrusted);
        assert_eq!(d.untrusted(t), vec![NodeId(1)]);
        let later = t + SimDuration::from_secs(11);
        d.tick(later);
        assert_eq!(d.level(NodeId(1), later), TrustLevel::Trusted);
        assert_eq!(d.history(NodeId(1), SuspicionReason::BadSignature), 1);
    }

    #[test]
    fn second_hand_report_is_unknown() {
        let mut d = det();
        let t = SimTime::from_secs(1);
        d.report_from_neighbor(t, NodeId(2), NodeId(3));
        assert_eq!(d.level(NodeId(3), t), TrustLevel::Unknown);
        assert_eq!(d.level(NodeId(2), t), TrustLevel::Trusted);
    }

    #[test]
    fn report_from_suspected_reporter_is_ignored() {
        let mut d = det();
        let t = SimTime::from_secs(1);
        d.suspect(t, NodeId(2), SuspicionReason::Verbose);
        d.report_from_neighbor(t, NodeId(2), NodeId(3));
        assert_eq!(d.level(NodeId(3), t), TrustLevel::Trusted);
    }

    #[test]
    fn reporter_suspected_after_reporting_voids_the_report() {
        let mut d = det();
        let t = SimTime::from_secs(1);
        d.report_from_neighbor(t, NodeId(2), NodeId(3));
        assert_eq!(d.level(NodeId(3), t), TrustLevel::Unknown);
        d.suspect(t, NodeId(2), SuspicionReason::Mute);
        assert_eq!(d.level(NodeId(3), t), TrustLevel::Trusted);
    }

    #[test]
    fn direct_suspicion_dominates_unknown() {
        let mut d = det();
        let t = SimTime::from_secs(1);
        d.report_from_neighbor(t, NodeId(2), NodeId(3));
        d.suspect(t, NodeId(3), SuspicionReason::Mute);
        assert_eq!(d.level(NodeId(3), t), TrustLevel::Untrusted);
    }

    #[test]
    fn reports_age_out() {
        let mut d = det();
        let t = SimTime::from_secs(1);
        d.report_from_neighbor(t, NodeId(2), NodeId(3));
        let later = t + SimDuration::from_secs(11);
        d.tick(later);
        assert_eq!(d.level(NodeId(3), later), TrustLevel::Trusted);
    }

    #[test]
    fn reasons_display() {
        assert_eq!(SuspicionReason::Mute.to_string(), "mute");
        assert_eq!(SuspicionReason::BadSignature.to_string(), "bad signature");
    }
}
