//! Interval failure detectors (paper §2.2) and checkers for their properties.
//!
//! "Since the specification of ◇P failure detectors require the accuracy
//! property to hold from some point on forever, they are not practical in a
//! real long running system. Hence, we present a new type of failure
//! detectors called Interval failure detector," defined by:
//!
//! * **Interval Strong Accuracy** — non-mute processes are not suspected by
//!   any correct process during the *suspicion-free interval*.
//! * **Interval Local Completeness** — every process that suffers a mute
//!   failure w.r.t. a correct process `q` during a *mute interval* is
//!   suspected by `q` during a *suspicion interval*.
//!
//! [`IntervalSpec`] carries the three interval lengths (with the paper's
//! Observation 3.3 constraint `mute_interval > (n−1)·max_timeout` available
//! as a constructor check), and [`SuspicionLog`] records the suspicion
//! history of a run so tests and experiment R6 can check both properties
//! against ground truth.

use std::collections::HashMap;

use byzcast_sim::{NodeId, SimDuration, SimTime};

/// Parameters of an `I_mute` / `I_verbose` interval failure detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntervalSpec {
    /// Length of a mute interval (misbehaviour observation window).
    pub mute_interval: SimDuration,
    /// Length of the suspicion interval within which detection must occur.
    pub suspicion_interval: SimDuration,
    /// Length of the suspicion-free interval during which correct processes
    /// must not be suspected.
    pub suspicion_free_interval: SimDuration,
}

impl IntervalSpec {
    /// Builds a spec, checking the paper's Observation 3.3: "In order to
    /// prevent false suspicions of the overlay nodes the mute interval of the
    /// I_mute failure detector should be larger than (n − 1) · max_timeout."
    ///
    /// # Errors
    ///
    /// Returns the violated constraint as a string if the mute interval is
    /// too short for the given network size and `max_timeout`.
    pub fn checked(
        mute_interval: SimDuration,
        suspicion_interval: SimDuration,
        suspicion_free_interval: SimDuration,
        n: usize,
        max_timeout: SimDuration,
    ) -> Result<Self, String> {
        let bound = max_timeout.saturating_mul(n.saturating_sub(1) as u64);
        if mute_interval <= bound {
            return Err(format!(
                "mute_interval {mute_interval} must exceed (n-1)*max_timeout = {bound}"
            ));
        }
        Ok(IntervalSpec {
            mute_interval,
            suspicion_interval,
            suspicion_free_interval,
        })
    }
}

/// One suspicion episode: `observer` suspected `suspect` over `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuspicionEpisode {
    /// The correct process doing the suspecting.
    pub observer: NodeId,
    /// The process being suspected.
    pub suspect: NodeId,
    /// When the suspicion began.
    pub start: SimTime,
    /// When the suspicion ended (`SimTime::MAX` while open).
    pub end: SimTime,
}

/// Records the suspicion history of a run for offline property checking.
#[derive(Debug, Default)]
pub struct SuspicionLog {
    episodes: Vec<SuspicionEpisode>,
    open: HashMap<(NodeId, NodeId), usize>,
}

impl SuspicionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        SuspicionLog::default()
    }

    /// Records that `observer` began suspecting `suspect` at `now` (no-op if
    /// the pair's episode is already open).
    pub fn begin(&mut self, now: SimTime, observer: NodeId, suspect: NodeId) {
        let key = (observer, suspect);
        if self.open.contains_key(&key) {
            return;
        }
        self.open.insert(key, self.episodes.len());
        self.episodes.push(SuspicionEpisode {
            observer,
            suspect,
            start: now,
            end: SimTime::MAX,
        });
    }

    /// Records that `observer` stopped suspecting `suspect` at `now`.
    pub fn end(&mut self, now: SimTime, observer: NodeId, suspect: NodeId) {
        if let Some(idx) = self.open.remove(&(observer, suspect)) {
            self.episodes[idx].end = now;
        }
    }

    /// All recorded episodes (open ones have `end == SimTime::MAX`).
    pub fn episodes(&self) -> &[SuspicionEpisode] {
        &self.episodes
    }

    /// Whether `observer` suspected `suspect` at any point in `[from, to)` —
    /// the Interval Local Completeness obligation for a mute interval
    /// starting at `from` with suspicion interval ending at `to`.
    pub fn suspected_within(
        &self,
        observer: NodeId,
        suspect: NodeId,
        from: SimTime,
        to: SimTime,
    ) -> bool {
        self.episodes
            .iter()
            .any(|e| e.observer == observer && e.suspect == suspect && e.start < to && e.end > from)
    }

    /// Checks Interval Strong Accuracy: no episode suspects any node in
    /// `non_mute` during `[from, from + spec.suspicion_free_interval)`.
    /// Returns the violating episodes.
    pub fn accuracy_violations(
        &self,
        spec: &IntervalSpec,
        from: SimTime,
        non_mute: &[NodeId],
    ) -> Vec<SuspicionEpisode> {
        let to = from + spec.suspicion_free_interval;
        self.episodes
            .iter()
            .filter(|e| non_mute.contains(&e.suspect) && e.start < to && e.end > from)
            .copied()
            .collect()
    }

    /// Checks Interval Local Completeness: every `(observer, mute_node)`
    /// pair must have a suspicion episode intersecting
    /// `[mute_start, mute_start + mute_interval + suspicion_interval)`.
    /// Returns the pairs that were missed.
    pub fn completeness_misses(
        &self,
        spec: &IntervalSpec,
        mute_start: SimTime,
        observers: &[NodeId],
        mute_nodes: &[NodeId],
    ) -> Vec<(NodeId, NodeId)> {
        let to = mute_start + spec.mute_interval + spec.suspicion_interval;
        let mut misses = Vec::new();
        for &obs in observers {
            for &m in mute_nodes {
                if obs == m {
                    continue;
                }
                if !self.suspected_within(obs, m, mute_start, to) {
                    misses.push((obs, m));
                }
            }
        }
        misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> IntervalSpec {
        IntervalSpec {
            mute_interval: SimDuration::from_secs(10),
            suspicion_interval: SimDuration::from_secs(5),
            suspicion_free_interval: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn checked_enforces_observation_3_3() {
        let max_timeout = SimDuration::from_secs(1);
        // n = 5: bound is 4 s; a 10 s mute interval is fine.
        assert!(IntervalSpec::checked(
            SimDuration::from_secs(10),
            SimDuration::from_secs(5),
            SimDuration::from_secs(10),
            5,
            max_timeout
        )
        .is_ok());
        // A 3 s mute interval is too short.
        let err = IntervalSpec::checked(
            SimDuration::from_secs(3),
            SimDuration::from_secs(5),
            SimDuration::from_secs(10),
            5,
            max_timeout,
        )
        .unwrap_err();
        assert!(err.contains("max_timeout"));
    }

    #[test]
    fn log_tracks_open_and_closed_episodes() {
        let mut log = SuspicionLog::new();
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        log.begin(t1, NodeId(0), NodeId(5));
        log.begin(t1, NodeId(0), NodeId(5)); // duplicate begin ignored
        assert_eq!(log.episodes().len(), 1);
        log.end(t2, NodeId(0), NodeId(5));
        assert_eq!(log.episodes()[0].end, t2);
        // Ending a non-open pair is a no-op.
        log.end(t2, NodeId(1), NodeId(5));
        assert_eq!(log.episodes().len(), 1);
    }

    #[test]
    fn suspected_within_interval_arithmetic() {
        let mut log = SuspicionLog::new();
        log.begin(SimTime::from_secs(5), NodeId(0), NodeId(1));
        log.end(SimTime::from_secs(8), NodeId(0), NodeId(1));
        assert!(log.suspected_within(
            NodeId(0),
            NodeId(1),
            SimTime::from_secs(6),
            SimTime::from_secs(7)
        ));
        assert!(!log.suspected_within(
            NodeId(0),
            NodeId(1),
            SimTime::from_secs(8),
            SimTime::from_secs(9)
        ));
        assert!(!log.suspected_within(
            NodeId(0),
            NodeId(2),
            SimTime::ZERO,
            SimTime::from_secs(100)
        ));
    }

    #[test]
    fn accuracy_violation_detection() {
        let mut log = SuspicionLog::new();
        log.begin(SimTime::from_secs(2), NodeId(0), NodeId(1));
        log.end(SimTime::from_secs(3), NodeId(0), NodeId(1));
        // Node 1 is non-mute: suspecting it inside the window is a violation.
        let v = log.accuracy_violations(&spec(), SimTime::from_secs(1), &[NodeId(1)]);
        assert_eq!(v.len(), 1);
        // Node 2 is the mute one: no violation recorded against it.
        let v = log.accuracy_violations(&spec(), SimTime::from_secs(1), &[NodeId(2)]);
        assert!(v.is_empty());
        // Outside the window: fine.
        let v = log.accuracy_violations(&spec(), SimTime::from_secs(20), &[NodeId(1)]);
        assert!(v.is_empty());
    }

    #[test]
    fn completeness_miss_detection() {
        let mut log = SuspicionLog::new();
        // Observer 0 suspects mute node 9 in time; observer 1 never does.
        log.begin(SimTime::from_secs(12), NodeId(0), NodeId(9));
        let misses = log.completeness_misses(
            &spec(),
            SimTime::from_secs(5),
            &[NodeId(0), NodeId(1)],
            &[NodeId(9)],
        );
        assert_eq!(misses, vec![(NodeId(1), NodeId(9))]);
    }

    #[test]
    fn completeness_skips_self_pairs() {
        let log = SuspicionLog::new();
        let misses = log.completeness_misses(&spec(), SimTime::ZERO, &[NodeId(9)], &[NodeId(9)]);
        assert!(misses.is_empty());
    }
}
