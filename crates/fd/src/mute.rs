//! The MUTE failure detector (classes ◇P_mute and I_mute).
//!
//! "The goal of the MUTE failure detector is to detect when a process fails
//! to send a message with a header it is supposed to." Its single interface
//! method is `expect(message header, set of nodes, one or all)`; the
//! suggested implementation — which this module follows — "consists of
//! setting a timeout for each message reported to the failure detector with
//! the expect method. When the timer times out, the corresponding nodes that
//! failed to send anticipated messages are suspected for a certain period of
//! time."
//!
//! The protocol feeds every received header into [`MuteDetector::observe`];
//! [`MuteDetector::tick`] fires deadlines and expires old suspicions (the
//! aging mechanism that lets the detector "recover from mistakes").

use std::collections::HashMap;

use byzcast_sim::{NodeId, SimDuration, SimTime};

use crate::header::{HeaderPattern, MsgHeader};

/// Whether all listed nodes must send the expected message, or any one of
/// them suffices.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExpectMode {
    /// One sender from the set satisfies the expectation (`ANY`/`ONE`).
    One,
    /// Every node in the set must send the message (`ALL`).
    All,
}

/// MUTE detector parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MuteConfig {
    /// How long after `expect` a matching message must arrive.
    pub expect_timeout: SimDuration,
    /// Deadline misses at which a node becomes suspected. Values above one
    /// keep single collision-induced losses from suspecting honest
    /// neighbours, while persistently mute nodes accumulate misses with
    /// every expectation ("the suspicion counters for each node are
    /// periodically decremented" — the paper's aging mechanism implies
    /// counters rather than one-shot suspicion).
    pub threshold: u32,
    /// How often miss counters are decremented by one.
    pub decay_interval: SimDuration,
    /// How long a node that crossed the threshold stays suspected.
    pub suspicion_duration: SimDuration,
    /// Cap on simultaneously tracked expectations (oldest dropped beyond it),
    /// bounding memory against verbose adversaries.
    pub max_expectations: usize,
}

impl Default for MuteConfig {
    fn default() -> Self {
        MuteConfig {
            expect_timeout: SimDuration::from_millis(4000),
            threshold: 4,
            decay_interval: SimDuration::from_secs(8),
            suspicion_duration: SimDuration::from_secs(10),
            max_expectations: 4096,
        }
    }
}

#[derive(Clone, Debug)]
struct Expectation {
    pattern: HeaderPattern,
    mode: ExpectMode,
    deadline: SimTime,
    /// Nodes that have not yet satisfied the expectation.
    waiting_on: Vec<NodeId>,
    satisfied: bool,
}

/// The MUTE failure detector of one node.
///
/// ```
/// use byzcast_fd::{ExpectMode, HeaderPattern, MuteConfig, MuteDetector};
/// use byzcast_sim::{NodeId, SimDuration, SimTime};
///
/// let mut fd = MuteDetector::new(MuteConfig {
///     expect_timeout: SimDuration::from_millis(100),
///     threshold: 1,
///     ..MuteConfig::default()
/// });
/// let t = SimTime::from_secs(1);
/// fd.expect(t, HeaderPattern::data_msg(NodeId(9), 1), &[NodeId(5)], ExpectMode::All);
/// // Node 5 never sends the expected message:
/// let late = t + SimDuration::from_millis(200);
/// fd.tick(late);
/// assert!(fd.is_suspected(NodeId(5), late));
/// ```
#[derive(Debug)]
pub struct MuteDetector {
    config: MuteConfig,
    expectations: Vec<Expectation>,
    /// Node → instant until which it is suspected.
    suspicions: HashMap<NodeId, SimTime>,
    /// Aged per-node miss counters compared against the threshold.
    counters: HashMap<NodeId, u32>,
    last_decay: SimTime,
    /// Total deadline misses per node (diagnostic; not aged).
    miss_counts: HashMap<NodeId, u64>,
}

impl MuteDetector {
    /// Creates a detector.
    pub fn new(config: MuteConfig) -> Self {
        MuteDetector {
            config,
            expectations: Vec::new(),
            suspicions: HashMap::new(),
            counters: HashMap::new(),
            last_decay: SimTime::ZERO,
            miss_counts: HashMap::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MuteConfig {
        &self.config
    }

    /// Registers an expectation: a message matching `pattern` should be sent
    /// by `nodes` (per `mode`) within the expect timeout.
    ///
    /// Duplicate registrations of an identical live `(pattern, mode)` are
    /// merged, keeping the earlier deadline.
    pub fn expect(
        &mut self,
        now: SimTime,
        pattern: HeaderPattern,
        nodes: &[NodeId],
        mode: ExpectMode,
    ) {
        if nodes.is_empty() {
            return;
        }
        if let Some(existing) = self
            .expectations
            .iter_mut()
            .find(|e| !e.satisfied && e.pattern == pattern && e.mode == mode)
        {
            // Merge: add any new nodes to the waiting set.
            for &n in nodes {
                if !existing.waiting_on.contains(&n) {
                    existing.waiting_on.push(n);
                }
            }
            return;
        }
        if self.expectations.len() >= self.config.max_expectations {
            self.expectations.remove(0);
        }
        self.expectations.push(Expectation {
            pattern,
            mode,
            deadline: now + self.config.expect_timeout,
            waiting_on: nodes.to_vec(),
            satisfied: false,
        });
    }

    /// Feeds an observed message header sent by `from`. Satisfies matching
    /// expectations.
    pub fn observe(&mut self, header: &MsgHeader, from: NodeId) {
        for e in &mut self.expectations {
            if e.satisfied || !e.pattern.matches(header) {
                continue;
            }
            match e.mode {
                ExpectMode::One => {
                    if e.waiting_on.contains(&from) {
                        e.satisfied = true;
                    }
                }
                ExpectMode::All => {
                    e.waiting_on.retain(|&n| n != from);
                    if e.waiting_on.is_empty() {
                        e.satisfied = true;
                    }
                }
            }
        }
    }

    /// Marks every expectation matching `header` satisfied regardless of
    /// sender — used when the awaited message was *obtained* through some
    /// other channel (e.g. a different holder answered the recovery request
    /// first), which discharges the original sender's obligation.
    pub fn satisfy(&mut self, header: &MsgHeader) {
        for e in &mut self.expectations {
            if !e.satisfied && e.pattern.matches(header) {
                e.satisfied = true;
            }
        }
    }

    /// Fires expired deadlines (counting misses against the nodes that
    /// missed them, suspecting those past the threshold), ages counters, and
    /// expires old suspicions.
    pub fn tick(&mut self, now: SimTime) {
        let mut missers: Vec<NodeId> = Vec::new();
        self.expectations.retain(|e| {
            if e.satisfied {
                return false;
            }
            if e.deadline > now {
                return true;
            }
            // Deadline missed: every node still waited-on takes a miss.
            missers.extend(e.waiting_on.iter().copied());
            false
        });
        for n in missers {
            *self.miss_counts.entry(n).or_insert(0) += 1;
            let c = self.counters.entry(n).or_insert(0);
            *c += 1;
            if *c >= self.config.threshold {
                let until = now + self.config.suspicion_duration;
                let entry = self.suspicions.entry(n).or_insert(until);
                *entry = (*entry).max(until);
            }
        }
        // Aging: decrement counters periodically so sporadic collision
        // losses never accumulate to the threshold.
        while now.saturating_since(self.last_decay) >= self.config.decay_interval {
            self.last_decay += self.config.decay_interval;
            self.counters.retain(|_, c| {
                *c = c.saturating_sub(1);
                *c > 0
            });
        }
        self.suspicions.retain(|_, until| *until > now);
    }

    /// Whether `node` is currently suspected.
    pub fn is_suspected(&self, node: NodeId, now: SimTime) -> bool {
        self.suspicions.get(&node).is_some_and(|&until| until > now)
    }

    /// The nodes currently suspected, in id order.
    pub fn suspects(&self, now: SimTime) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .suspicions
            .iter()
            .filter(|(_, &until)| until > now)
            .map(|(&n, _)| n)
            .collect();
        out.sort_unstable();
        out
    }

    /// Total deadline misses attributed to `node` over the run (diagnostic).
    pub fn miss_count(&self, node: NodeId) -> u64 {
        self.miss_counts.get(&node).copied().unwrap_or(0)
    }

    /// The current (aged) miss counter for `node`.
    pub fn counter(&self, node: NodeId) -> u32 {
        self.counters.get(&node).copied().unwrap_or(0)
    }

    /// Number of live (unsatisfied, unexpired) expectations.
    pub fn pending_expectations(&self) -> usize {
        self.expectations.iter().filter(|e| !e.satisfied).count()
    }

    /// The earliest pending deadline, for arming a wake-up timer.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.expectations
            .iter()
            .filter(|e| !e.satisfied)
            .map(|e| e.deadline)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::MsgKind;

    fn config() -> MuteConfig {
        // Threshold 1 keeps most tests one-shot; threshold behaviour has
        // dedicated tests below.
        MuteConfig {
            expect_timeout: SimDuration::from_millis(100),
            threshold: 1,
            decay_interval: SimDuration::from_secs(60),
            suspicion_duration: SimDuration::from_secs(1),
            max_expectations: 16,
        }
    }

    fn hdr(origin: u32, seq: u64) -> MsgHeader {
        MsgHeader::new(MsgKind::Data, NodeId(origin), seq)
    }

    #[test]
    fn satisfied_one_expectation_never_suspects() {
        let mut fd = MuteDetector::new(config());
        let t0 = SimTime::from_secs(1);
        fd.expect(
            t0,
            HeaderPattern::data_msg(NodeId(9), 1),
            &[NodeId(1), NodeId(2)],
            ExpectMode::One,
        );
        fd.observe(&hdr(9, 1), NodeId(2));
        fd.tick(t0 + SimDuration::from_secs(10));
        assert!(fd.suspects(t0 + SimDuration::from_secs(10)).is_empty());
        assert_eq!(fd.miss_count(NodeId(1)), 0);
    }

    #[test]
    fn missed_one_expectation_suspects_all_listed() {
        let mut fd = MuteDetector::new(config());
        let t0 = SimTime::from_secs(1);
        fd.expect(
            t0,
            HeaderPattern::data_msg(NodeId(9), 1),
            &[NodeId(1), NodeId(2)],
            ExpectMode::One,
        );
        let late = t0 + SimDuration::from_millis(101);
        fd.tick(late);
        assert_eq!(fd.suspects(late), vec![NodeId(1), NodeId(2)]);
        assert!(fd.is_suspected(NodeId(1), late));
    }

    #[test]
    fn all_mode_suspects_only_the_silent() {
        let mut fd = MuteDetector::new(config());
        let t0 = SimTime::from_secs(1);
        fd.expect(
            t0,
            HeaderPattern::data_msg(NodeId(9), 1),
            &[NodeId(1), NodeId(2)],
            ExpectMode::All,
        );
        fd.observe(&hdr(9, 1), NodeId(1));
        let late = t0 + SimDuration::from_millis(101);
        fd.tick(late);
        assert_eq!(fd.suspects(late), vec![NodeId(2)]);
    }

    #[test]
    fn observation_from_unlisted_node_does_not_satisfy_one_mode() {
        let mut fd = MuteDetector::new(config());
        let t0 = SimTime::from_secs(1);
        fd.expect(
            t0,
            HeaderPattern::data_msg(NodeId(9), 1),
            &[NodeId(1)],
            ExpectMode::One,
        );
        fd.observe(&hdr(9, 1), NodeId(7)); // not in the set
        let late = t0 + SimDuration::from_millis(101);
        fd.tick(late);
        assert_eq!(fd.suspects(late), vec![NodeId(1)]);
    }

    #[test]
    fn suspicion_ages_out() {
        let mut fd = MuteDetector::new(config());
        let t0 = SimTime::from_secs(1);
        fd.expect(
            t0,
            HeaderPattern::data_msg(NodeId(9), 1),
            &[NodeId(1)],
            ExpectMode::All,
        );
        let late = t0 + SimDuration::from_millis(101);
        fd.tick(late);
        assert!(fd.is_suspected(NodeId(1), late));
        let healed = late + SimDuration::from_secs(2);
        fd.tick(healed);
        assert!(!fd.is_suspected(NodeId(1), healed));
        // The miss count is permanent history, though.
        assert_eq!(fd.miss_count(NodeId(1)), 1);
    }

    #[test]
    fn duplicate_expectations_merge() {
        let mut fd = MuteDetector::new(config());
        let t0 = SimTime::from_secs(1);
        let p = HeaderPattern::data_msg(NodeId(9), 1);
        fd.expect(t0, p, &[NodeId(1)], ExpectMode::One);
        fd.expect(t0, p, &[NodeId(2)], ExpectMode::One);
        assert_eq!(fd.pending_expectations(), 1);
        // Either node satisfies the merged expectation.
        fd.observe(&hdr(9, 1), NodeId(2));
        fd.tick(t0 + SimDuration::from_secs(1));
        assert!(fd.suspects(t0 + SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn expectation_cap_drops_oldest() {
        let mut fd = MuteDetector::new(MuteConfig {
            max_expectations: 2,
            ..config()
        });
        let t0 = SimTime::from_secs(1);
        for seq in 0..3 {
            fd.expect(
                t0,
                HeaderPattern::data_msg(NodeId(9), seq),
                &[NodeId(1)],
                ExpectMode::All,
            );
        }
        assert_eq!(fd.pending_expectations(), 2);
    }

    #[test]
    fn empty_node_set_is_ignored() {
        let mut fd = MuteDetector::new(config());
        fd.expect(SimTime::ZERO, HeaderPattern::any(), &[], ExpectMode::All);
        assert_eq!(fd.pending_expectations(), 0);
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut fd = MuteDetector::new(config());
        let t0 = SimTime::from_secs(1);
        assert_eq!(fd.next_deadline(), None);
        fd.expect(
            t0,
            HeaderPattern::data_msg(NodeId(9), 1),
            &[NodeId(1)],
            ExpectMode::All,
        );
        assert_eq!(fd.next_deadline(), Some(t0 + SimDuration::from_millis(100)));
    }

    #[test]
    fn repeated_misses_extend_suspicion() {
        let mut fd = MuteDetector::new(config());
        let t0 = SimTime::from_secs(1);
        fd.expect(
            t0,
            HeaderPattern::data_msg(NodeId(9), 1),
            &[NodeId(1)],
            ExpectMode::All,
        );
        let t1 = t0 + SimDuration::from_millis(101);
        fd.tick(t1);
        fd.expect(
            t1,
            HeaderPattern::data_msg(NodeId(9), 2),
            &[NodeId(1)],
            ExpectMode::All,
        );
        let t2 = t1 + SimDuration::from_millis(101);
        fd.tick(t2);
        assert_eq!(fd.miss_count(NodeId(1)), 2);
        // Suspicion runs from the *second* miss.
        let probe = t2 + SimDuration::from_millis(950);
        assert!(fd.is_suspected(NodeId(1), probe));
    }
}

#[cfg(test)]
mod threshold_tests {
    use super::*;
    use crate::header::{HeaderPattern, MsgHeader, MsgKind};

    fn config() -> MuteConfig {
        MuteConfig {
            expect_timeout: SimDuration::from_millis(100),
            threshold: 3,
            decay_interval: SimDuration::from_secs(10),
            suspicion_duration: SimDuration::from_secs(5),
            max_expectations: 16,
        }
    }

    fn miss(fd: &mut MuteDetector, at: SimTime, seq: u64) -> SimTime {
        fd.expect(
            at,
            HeaderPattern::data_msg(NodeId(9), seq),
            &[NodeId(1)],
            ExpectMode::All,
        );
        let deadline = at + SimDuration::from_millis(101);
        fd.tick(deadline);
        deadline
    }

    #[test]
    fn below_threshold_misses_do_not_suspect() {
        let mut fd = MuteDetector::new(config());
        let mut t = SimTime::from_secs(1);
        t = miss(&mut fd, t, 1);
        t = miss(&mut fd, t, 2);
        assert!(!fd.is_suspected(NodeId(1), t));
        assert_eq!(fd.counter(NodeId(1)), 2);
        assert_eq!(fd.miss_count(NodeId(1)), 2);
    }

    #[test]
    fn threshold_crossing_suspects() {
        let mut fd = MuteDetector::new(config());
        let mut t = SimTime::from_secs(1);
        t = miss(&mut fd, t, 1);
        t = miss(&mut fd, t, 2);
        t = miss(&mut fd, t, 3);
        assert!(fd.is_suspected(NodeId(1), t));
    }

    #[test]
    fn counters_decay_so_sporadic_losses_never_accumulate() {
        let mut fd = MuteDetector::new(config());
        // One miss every 20 s: decay (10 s) keeps the counter at <= 1.
        let mut t = SimTime::from_secs(1);
        for k in 0..6 {
            t = miss(&mut fd, t, k);
            t += SimDuration::from_secs(20);
            fd.tick(t);
        }
        assert!(!fd.is_suspected(NodeId(1), t));
        assert_eq!(fd.counter(NodeId(1)), 0);
        assert_eq!(
            fd.miss_count(NodeId(1)),
            6,
            "history still records all misses"
        );
    }

    #[test]
    fn satisfied_expectations_do_not_count() {
        let mut fd = MuteDetector::new(config());
        let t = SimTime::from_secs(1);
        fd.expect(
            t,
            HeaderPattern::data_msg(NodeId(9), 1),
            &[NodeId(1)],
            ExpectMode::All,
        );
        fd.observe(&MsgHeader::new(MsgKind::Data, NodeId(9), 1), NodeId(1));
        fd.tick(t + SimDuration::from_secs(1));
        assert_eq!(fd.counter(NodeId(1)), 0);
    }
}
