//! Property-based tests for header-pattern matching and detector invariants.

use proptest::prelude::*;

use byzcast_fd::{
    ExpectMode, HeaderPattern, MsgHeader, MsgKind, MuteConfig, MuteDetector, SuspicionReason,
    TrustConfig, TrustDetector, VerboseConfig, VerboseDetector,
};
use byzcast_sim::{NodeId, SimDuration, SimTime};

fn kind_of(k: u8) -> MsgKind {
    match k % 5 {
        0 => MsgKind::Data,
        1 => MsgKind::Gossip,
        2 => MsgKind::RequestMsg,
        3 => MsgKind::FindMissingMsg,
        _ => MsgKind::Beacon,
    }
}

fn exact_patterns_bind_all_fields_case(k: u8, origin: u32, seq: u64) -> Result<(), TestCaseError> {
    let h = MsgHeader::new(kind_of(k), NodeId(origin), seq);
    let p = HeaderPattern::exact(h);
    prop_assert!(p.matches(&h));
    prop_assert!(HeaderPattern::any().matches(&h));
    // `k % 5 + 1` is always a *different* kind (no mod-wrap collision).
    let other_kind = MsgHeader::new(kind_of(k % 5 + 1), NodeId(origin), seq);
    prop_assert!(!p.matches(&other_kind));
    let other_origin = MsgHeader::new(kind_of(k), NodeId(origin.wrapping_add(1)), seq);
    prop_assert!(!p.matches(&other_origin));
    let other_seq = MsgHeader::new(kind_of(k), NodeId(origin), seq.wrapping_add(1));
    prop_assert!(!p.matches(&other_seq));
    Ok(())
}

/// The shrunk case recorded in `properties.proptest-regressions`
/// (`k = 255, origin = 0, seq = 0`), pinned so it replays on every run.
#[test]
fn regression_exact_pattern_at_type_boundaries() {
    exact_patterns_bind_all_fields_case(255, 0, 0).unwrap();
    // The same boundary on the other wrap-sensitive fields.
    exact_patterns_bind_all_fields_case(255, u32::MAX, u64::MAX).unwrap();
}

proptest! {
    /// The exact pattern of a header matches it; changing any field breaks
    /// the match; the full wildcard matches everything.
    #[test]
    fn exact_patterns_bind_all_fields(k in any::<u8>(), origin in any::<u32>(), seq in any::<u64>()) {
        exact_patterns_bind_all_fields_case(k, origin, seq)?;
    }

    /// Widening a pattern (dropping a field) can only grow its match set.
    #[test]
    fn wildcarding_is_monotone(k in any::<u8>(), origin in any::<u32>(), seq in any::<u64>(),
                               hk in any::<u8>(), ho in any::<u32>(), hs in any::<u64>()) {
        let narrow = HeaderPattern {
            kind: Some(kind_of(k)),
            origin: Some(NodeId(origin)),
            seq: Some(seq),
        };
        let wide = HeaderPattern { seq: None, ..narrow };
        let wider = HeaderPattern { origin: None, seq: None, ..narrow };
        let h = MsgHeader::new(kind_of(hk), NodeId(ho), hs);
        if narrow.matches(&h) {
            prop_assert!(wide.matches(&h));
        }
        if wide.matches(&h) {
            prop_assert!(wider.matches(&h));
        }
    }

    /// MUTE: observations before the deadline prevent misses; the counter
    /// never exceeds the total expectations registered.
    #[test]
    fn mute_counters_bounded_by_expectations(
        misses in 0u32..12,
        satisfied in 0u32..12,
    ) {
        let mut fd = MuteDetector::new(MuteConfig {
            expect_timeout: SimDuration::from_millis(100),
            threshold: 1000, // never actually suspect; we check counters
            decay_interval: SimDuration::from_secs(3600),
            suspicion_duration: SimDuration::from_secs(1),
            max_expectations: 1024,
        });
        let mut t = SimTime::from_secs(1);
        let mut seq = 0u64;
        for _ in 0..misses {
            seq += 1;
            fd.expect(t, HeaderPattern::data_msg(NodeId(9), seq), &[NodeId(1)], ExpectMode::All);
            t += SimDuration::from_millis(150);
            fd.tick(t);
        }
        for _ in 0..satisfied {
            seq += 1;
            fd.expect(t, HeaderPattern::data_msg(NodeId(9), seq), &[NodeId(1)], ExpectMode::All);
            fd.observe(&MsgHeader::new(MsgKind::Data, NodeId(9), seq), NodeId(1));
            t += SimDuration::from_millis(150);
            fd.tick(t);
        }
        prop_assert_eq!(fd.miss_count(NodeId(1)), u64::from(misses));
        prop_assert_eq!(fd.counter(NodeId(1)), misses);
    }

    /// VERBOSE: suspicion iff the aged counter reached the threshold.
    #[test]
    fn verbose_threshold_is_exact(threshold in 1u32..20, indictments in 0u32..40) {
        let mut fd = VerboseDetector::new(VerboseConfig {
            threshold,
            decay_interval: SimDuration::from_secs(3600),
            suspicion_duration: SimDuration::from_secs(60),
            ..VerboseConfig::default()
        });
        let t = SimTime::from_secs(1);
        for _ in 0..indictments {
            fd.indict(t, NodeId(2));
        }
        prop_assert_eq!(fd.is_suspected(NodeId(2), t), indictments >= threshold);
    }

    /// TRUST: second-hand reports never upgrade a direct suspicion, and a
    /// suspicion always outranks reports.
    #[test]
    fn trust_levels_are_ordered(reporters in proptest::collection::vec(1u32..50, 0..8)) {
        let mut d = TrustDetector::new(TrustConfig::default());
        let t = SimTime::from_secs(1);
        for &r in &reporters {
            d.report_from_neighbor(t, NodeId(r), NodeId(0));
        }
        d.suspect(t, NodeId(0), SuspicionReason::Mute);
        prop_assert_eq!(d.level(NodeId(0), t), byzcast_fd::TrustLevel::Untrusted);
        // After the suspicion ages out, reports (if any remain) demote to
        // Unknown at most.
        let later = t + d.config().suspicion_duration + SimDuration::from_secs(1);
        d.tick(later);
        let level = d.level(NodeId(0), later);
        prop_assert!(level != byzcast_fd::TrustLevel::Untrusted);
    }
}
