//! Micro-benchmarks for the cryptographic substrate: SHA-256 throughput and
//! sign/verify cost of the two signature schemes. Signature verification is
//! the per-reception hot path of the protocol (every data message, gossip
//! entry and beacon is verified), so the scheme choice bounds simulation
//! scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use byzcast_crypto::{
    hmac_sha256, sha256, KeyRegistry, SchnorrScheme, Signer, SignerId, SimScheme, Verifier,
};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 512, 4096] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)))
        });
    }
    group.finish();

    c.bench_function("hmac_sha256/512B", |b| {
        let data = vec![0x5Au8; 512];
        b.iter(|| hmac_sha256(black_box(b"key material"), black_box(&data)))
    });
}

fn bench_signatures(c: &mut Criterion) {
    let data = vec![0x42u8; 128];

    let sim: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 4);
    let sim_signer = sim.signer(SignerId(0));
    let sim_verifier = sim.verifier();
    let sim_sig = sim_signer.sign(&data);

    let sch: KeyRegistry<SchnorrScheme> = KeyRegistry::generate(1, 4);
    let sch_signer = sch.signer(SignerId(0));
    let sch_verifier = sch.verifier();
    let sch_sig = sch_signer.sign(&data);

    let mut group = c.benchmark_group("sign");
    group.bench_function("sim", |b| b.iter(|| sim_signer.sign(black_box(&data))));
    group.bench_function("schnorr", |b| b.iter(|| sch_signer.sign(black_box(&data))));
    group.finish();

    let mut group = c.benchmark_group("verify");
    group.bench_function("sim", |b| {
        b.iter(|| sim_verifier.verify(SignerId(0), black_box(&data), &sim_sig))
    });
    group.bench_function("schnorr", |b| {
        b.iter(|| sch_verifier.verify(SignerId(0), black_box(&data), &sch_sig))
    });
    group.finish();
}

criterion_group!(benches, bench_sha256, bench_signatures);
criterion_main!(benches);
