//! Crypto hot-path benchmarks for PR 2's two optimizations.
//!
//! * Fixed-base windowed exponentiation (`FixedBaseTable`) against the
//!   square-and-multiply `pow_mod` it replaces inside Schnorr
//!   sign/verify — same values, fewer multiplications.
//! * The memoizing `CachingVerifier` on its hit path against the bare
//!   verifier it wraps — the per-reception cost when the same signed
//!   message arrives again via another neighbor, which is the common case
//!   in a broadcast protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use byzcast_crypto::schnorr::{pow_mod, FixedBaseTable};
use byzcast_crypto::{CachingVerifier, KeyRegistry, SchnorrScheme, Signer, SignerId, Verifier};

/// The toy group's modulus and generator (mirrors `schnorr.rs`).
const P: u64 = 2_305_843_201_413_480_359;
const G: u64 = 157_608_736_213_706_629;

fn bench_fixed_base(c: &mut Criterion) {
    let table = FixedBaseTable::new(G);
    // A full-width exponent: worst case for both implementations.
    let exp: u64 = 0x7FFF_FFF1;
    let mut group = c.benchmark_group("fixed_base_pow");
    group.bench_function("pow_mod", |b| {
        b.iter(|| pow_mod(black_box(G), black_box(exp), P))
    });
    group.bench_function("table", |b| b.iter(|| table.pow(black_box(exp))));
    group.finish();
}

fn bench_verify_cache(c: &mut Criterion) {
    let keys: KeyRegistry<SchnorrScheme> = KeyRegistry::generate(1, 4);
    let signer = keys.signer(SignerId(0));
    let data = vec![0x42u8; 128];
    let sig = signer.sign(&data);

    let bare = keys.verifier();
    let cached = CachingVerifier::new(keys.verifier(), 512);
    // Warm the cache so the loop below measures the hit path.
    assert!(cached.verify(SignerId(0), &data, &sig));

    let mut group = c.benchmark_group("schnorr_verify");
    group.bench_function("uncached", |b| {
        b.iter(|| bare.verify(SignerId(0), black_box(&data), &sig))
    });
    group.bench_function("cache_hit", |b| {
        b.iter(|| cached.verify(SignerId(0), black_box(&data), &sig))
    });
    group.finish();
}

criterion_group!(benches, bench_fixed_base, bench_verify_cache);
criterion_main!(benches);
