//! Micro-benchmarks for the overlay maintenance rules: one CDS / MIS+B
//! computation step over neighbour tables of varying density. Each node
//! runs this every beacon period, so its cost scales the simulator and —
//! in a real deployment — the CPU budget of small devices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use byzcast_overlay::{Cds, MapTrust, MisBridges, NeighborTable, OverlayProtocol, OverlayRole};
use byzcast_sim::{Field, NodeId, Position, SimDuration, SimRng, SimTime};

/// Builds node 0's neighbour table within a random geometric graph of `n`
/// nodes, advertising full (truthful) neighbour lists.
fn random_table(n: usize, side: f64, range: f64, seed: u64) -> NeighborTable {
    let mut rng = SimRng::new(seed);
    let field = Field::new(side, side);
    // Node 0 sits at the centre so it has a rich neighbourhood.
    let mut positions: Vec<Position> = vec![Position::new(side / 2.0, side / 2.0)];
    positions.extend((1..n).map(|_| field.random_position(&mut rng)));
    let neighbors_of = |i: usize| -> Vec<NodeId> {
        (0..n)
            .filter(|&j| j != i && positions[i].distance(&positions[j]) <= range)
            .map(|j| NodeId(j as u32))
            .collect()
    };
    let mut table = NeighborTable::new(SimDuration::from_secs(60));
    let now = SimTime::from_secs(1);
    for q in neighbors_of(0) {
        let qn = neighbors_of(q.index());
        // Roughly half the neighbourhood advertises dominator status, which
        // exercises the pruning / deferral branches.
        let role = if q.0 % 2 == 0 {
            OverlayRole::Dominator
        } else {
            OverlayRole::Passive
        };
        let dom: Vec<NodeId> = qn.iter().copied().filter(|x| x.0 % 2 == 0).collect();
        table.record_beacon(now, q, role, qn, dom);
    }
    table
}

fn bench_decide(c: &mut Criterion) {
    let trust = MapTrust::default();
    let mut group = c.benchmark_group("overlay_decide");
    for &n in &[40usize, 100, 200] {
        let table = random_table(n, 1000.0, 250.0, 11);
        group.bench_with_input(BenchmarkId::new("cds", n), &table, |b, table| {
            b.iter(|| black_box(Cds.decide(NodeId(0), table, &trust)))
        });
        group.bench_with_input(BenchmarkId::new("mis+b", n), &table, |b, table| {
            b.iter(|| black_box(MisBridges.decide(NodeId(0), table, &trust)))
        });
    }
    group.finish();
}

fn bench_table_ops(c: &mut Criterion) {
    c.bench_function("neighbor_table/record_100_beacons_and_prune", |b| {
        let nbrs: Vec<NodeId> = (0..20).map(NodeId).collect();
        b.iter(|| {
            let mut t = NeighborTable::new(SimDuration::from_secs(3));
            for i in 0..100u64 {
                t.record_beacon(
                    SimTime::from_millis(i * 10),
                    NodeId((i % 30) as u32),
                    OverlayRole::Dominator,
                    nbrs.iter().copied(),
                    [],
                );
            }
            t.prune(SimTime::from_secs(2));
            black_box(t.len())
        })
    });
}

criterion_group!(benches, bench_decide, bench_table_ops);
criterion_main!(benches);
