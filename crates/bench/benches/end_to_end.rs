//! End-to-end benchmark: a complete (small) simulation run per protocol —
//! the wall-clock cost behind every data point of experiments R1–R8, and a
//! regression guard for simulator performance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use byzcast_harness::{ProtocolChoice, ScenarioConfig, Workload};
use byzcast_sim::{Field, NodeId, SimConfig, SimDuration};

fn scenario(protocol: ProtocolChoice) -> ScenarioConfig {
    ScenarioConfig {
        seed: 1,
        n: 30,
        sim: SimConfig {
            field: Field::new(500.0, 500.0),
            ..SimConfig::default()
        },
        protocol,
        ..ScenarioConfig::default()
    }
}

fn workload() -> Workload {
    Workload {
        senders: vec![NodeId(0)],
        count: 10,
        payload_bytes: 512,
        start: SimDuration::from_secs(4),
        interval: SimDuration::from_millis(400),
        drain: SimDuration::from_secs(6),
    }
}

fn bench_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_30_nodes_18s");
    group.sample_size(10);
    for (label, protocol) in [
        ("byzcast", ProtocolChoice::Byzcast),
        ("flooding", ProtocolChoice::Flooding),
        ("2-overlays", ProtocolChoice::MultiOverlay { f: 1 }),
    ] {
        let config = scenario(protocol);
        let w = workload();
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| black_box(config.run(&w)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runs);
criterion_main!(benches);
