//! Micro-benchmarks for the protocol hot paths: message construction and
//! verification, the message store, and the per-packet dissemination handler
//! (signature check + store + forwarding decision).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use byzcast_core::message::{DataMsg, GossipMsg, WireMsg};
use byzcast_core::store::MessageStore;
use byzcast_core::{ByzcastConfig, ByzcastNode};
use byzcast_crypto::{KeyRegistry, SignerId, SimScheme, Verifier};
use byzcast_sim::node::Action;
use byzcast_sim::{Context, NodeId, Protocol, SimDuration, SimRng, SimTime};

fn keys() -> KeyRegistry<SimScheme> {
    KeyRegistry::generate(7, 64)
}

fn bench_data_msg(c: &mut Criterion) {
    let reg = keys();
    let signer = reg.signer(SignerId(0));
    let verifier = reg.verifier();
    c.bench_function("data_msg/sign", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            DataMsg::sign(&signer, seq, seq, 512)
        })
    });
    let m = DataMsg::sign(&signer, 1, 1, 512);
    c.bench_function("data_msg/verify", |b| {
        b.iter(|| black_box(m).verify(&verifier))
    });
}

fn bench_store(c: &mut Criterion) {
    let reg = keys();
    let signer = reg.signer(SignerId(0));
    let msgs: Vec<DataMsg> = (0..1000)
        .map(|s| DataMsg::sign(&signer, s, s, 512))
        .collect();
    c.bench_function("store/insert_1000_purge", |b| {
        b.iter(|| {
            let mut store = MessageStore::new(SimDuration::from_secs(10));
            for (i, m) in msgs.iter().enumerate() {
                store.insert(SimTime::from_millis(i as u64), *m);
            }
            store.purge(SimTime::from_secs(30));
            black_box(store.high_water())
        })
    });
}

/// Drives one `on_packet` of a fresh data message through a ByzcastNode —
/// the per-reception cost on the fast path.
fn bench_handle_data(c: &mut Criterion) {
    let reg = keys();
    let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
    let origin_signer = reg.signer(SignerId(0));
    let mut group = c.benchmark_group("on_packet");
    for payload in [128u32, 1024] {
        group.bench_with_input(
            BenchmarkId::new("data", payload),
            &payload,
            |b, &payload| {
                let mut node = ByzcastNode::new(
                    NodeId(1),
                    ByzcastConfig::default(),
                    Box::new(reg.signer(SignerId(1))),
                    Arc::clone(&verifier),
                );
                let mut rng = SimRng::new(0);
                let mut seq = 0u64;
                b.iter(|| {
                    seq += 1;
                    let m = DataMsg::sign(&origin_signer, seq, seq, payload);
                    let mut actions: Vec<Action<WireMsg>> = Vec::new();
                    let mut ctx =
                        Context::new(NodeId(1), SimTime::from_millis(seq), &mut rng, &mut actions);
                    node.on_packet(&mut ctx, NodeId(0), &WireMsg::Data(m));
                    black_box(actions.len())
                })
            },
        );
    }
    group.finish();
}

/// Gossip packet processing: verifying and filing k aggregated entries.
fn bench_handle_gossip(c: &mut Criterion) {
    let reg = keys();
    let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
    let origin_signer = reg.signer(SignerId(0));
    let mut group = c.benchmark_group("on_packet/gossip_entries");
    for k in [1usize, 10, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut node = ByzcastNode::new(
                NodeId(1),
                ByzcastConfig::default(),
                Box::new(reg.signer(SignerId(1))),
                Arc::clone(&verifier),
            );
            let mut rng = SimRng::new(0);
            let mut base = 0u64;
            b.iter(|| {
                base += k as u64;
                let entries = (0..k as u64)
                    .map(|i| DataMsg::sign(&origin_signer, base + i, base + i, 512).gossip_entry())
                    .collect();
                let g = GossipMsg::of_entries(entries);
                let mut actions: Vec<Action<WireMsg>> = Vec::new();
                let mut ctx = Context::new(
                    NodeId(1),
                    SimTime::from_millis(base),
                    &mut rng,
                    &mut actions,
                );
                node.on_packet(&mut ctx, NodeId(2), &WireMsg::Gossip(g));
                black_box(actions.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_data_msg,
    bench_store,
    bench_handle_data,
    bench_handle_gossip
);
criterion_main!(benches);
