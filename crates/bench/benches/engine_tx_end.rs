//! Engine hot-path benchmark: reception resolution at transmission end.
//!
//! `handle_tx_end` dominates simulation wall time at scale — for every
//! transmission it must find the audible receivers and probe the active
//! transmissions for half-duplex and collision overlaps. This bench runs
//! the same paper-density scenario with the spatial index on and off
//! (results are bit-identical either way; only wall time differs), at
//! node counts where the O(n)-scan engine visibly falls behind.
//!
//! The field is scaled with `n` to hold the paper's R5 density constant
//! (80 nodes on 1000 m × 1000 m), so larger points stress bookkeeping
//! rather than congestion collapse. The points start at n = 480: the
//! audible radius at R5 density is ~412 m, so on smaller fields a 3×3
//! cell block covers most of the field and the grid merely breaks even
//! (measured crossover under this saturating flooding workload is around
//! n ≈ 400) — the index is a big-n tool and `SimConfig::spatial_index`
//! leaves the naive scan available below the crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use byzcast_harness::{ProtocolChoice, ScenarioConfig, Workload};
use byzcast_sim::{Field, SimConfig, SimDuration};

/// Paper density: 80 nodes per 1000 m × 1000 m.
fn density_preserving_field(n: usize) -> Field {
    let side = 1000.0 * (n as f64 / 80.0).sqrt();
    Field::new(side, side)
}

fn scenario(n: usize, spatial_index: bool) -> ScenarioConfig {
    let mut config = ScenarioConfig {
        seed: 1,
        n,
        protocol: ProtocolChoice::Flooding, // no crypto: isolates the engine
        sim: SimConfig {
            field: density_preserving_field(n),
            spatial_index,
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    config.byzcast.sig_cache_capacity = 0;
    config
}

fn workload() -> Workload {
    Workload {
        count: 6,
        payload_bytes: 512,
        start: SimDuration::from_secs(2),
        interval: SimDuration::from_millis(500),
        drain: SimDuration::from_secs(4),
        ..Workload::default()
    }
}

fn bench_engine_tx_end(c: &mut Criterion) {
    let w = workload();
    let mut group = c.benchmark_group("engine_tx_end");
    group.sample_size(10);
    for n in [480usize, 800] {
        for (label, spatial) in [("grid", true), ("naive", false)] {
            let config = scenario(n, spatial);
            group.bench_with_input(BenchmarkId::new(label, n), &config, |b, config| {
                b.iter(|| black_box(config.run(&w)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_tx_end);
criterion_main!(benches);
