//! Experiment R6 — failure-detector reaction to mute overlay nodes.
//!
//! Measures the interval-failure-detector properties of §2.2 on a live run:
//! how quickly mute overlay claimants are suspected by their correct
//! neighbours (Interval Local Completeness, Lemma 3.7), how rarely correct
//! nodes are suspected (Interval Strong Accuracy, Lemma 3.8), and whether
//! the overlay self-heals into a connected correct cover (Lemma 3.9). One
//! table row per replication seed — the per-seed suspicion analysis runs
//! inside a custom runner closure.

use std::sync::Arc;

use byzcast_adversary::MutePolicy;
use byzcast_bench::{banner, opts, runner};
use byzcast_harness::{
    byz_view, report::fnum, run_sweep, AdversaryKind, RunOutcome, ScenarioConfig, SweepPoint,
    Table, Workload,
};
use byzcast_sim::{Field, NodeId, SimConfig, SimDuration, SimTime};

const MUTES: usize = 6;

/// Runs the scenario and distils the suspicion log into extras: how many of
/// the mute nodes were detected, first-detection latency statistics, the
/// false-suspicion count, and whether the overlay healed into a connected
/// correct cover.
fn measure(config: &ScenarioConfig, workload: &Workload) -> RunOutcome {
    let adv = config.adversary_set();
    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());

    // First data injection is when the mutes' misbehaviour can begin.
    let t0 = workload.start;
    let mut detected: std::collections::BTreeSet<NodeId> = Default::default();
    let mut latencies: Vec<f64> = Vec::new();
    let mut false_suspicions = 0u64;
    for i in 0..config.n as u32 {
        let id = NodeId(i);
        if adv.contains(&id) {
            continue;
        }
        let Some(node) = byz_view(&sim, id) else {
            continue;
        };
        for ep in node.suspicion_log().episodes() {
            if adv.contains(&ep.suspect) {
                if detected.insert(ep.suspect) {
                    latencies.push(ep.start.saturating_since(SimTime::ZERO + t0).as_secs_f64());
                }
            } else {
                false_suspicions += 1;
            }
        }
    }
    let summary = config.summarize_wire(&sim);
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let max = latencies.iter().copied().fold(0.0f64, f64::max);
    let healed = summary.overlay_ok == Some(true);
    RunOutcome {
        summary,
        extras: vec![
            ("detected_mutes", detected.len() as f64),
            ("detection_mean_s", mean),
            ("detection_max_s", max),
            ("false_suspicions", false_suspicions as f64),
            ("healed_cover", if healed { 1.0 } else { 0.0 }),
        ],
    }
}

fn main() {
    let opts = opts();
    banner(
        "R6",
        "suspicion latency / accuracy / overlay healing (n = 60, 6 mutes)",
        "paper §2.2 interval failure detectors; Lemmas 3.7–3.9",
    );
    let workload = Workload {
        senders: vec![NodeId(0), NodeId(1)],
        count: if opts.quick { 30 } else { 80 },
        payload_bytes: 512,
        start: SimDuration::from_secs(10),
        interval: SimDuration::from_millis(250),
        drain: SimDuration::from_secs(20),
    };
    let config = ScenarioConfig {
        n: 60,
        sim: SimConfig {
            field: Field::new(800.0, 800.0),
            ..SimConfig::default()
        },
        adversary: Some(AdversaryKind::Mute(MutePolicy::DropData)),
        adversary_count: MUTES,
        ..ScenarioConfig::default()
    };
    let point = SweepPoint::new(
        "n=60/mutes=6",
        vec![
            ("n".to_owned(), "60".to_owned()),
            ("mutes".to_owned(), MUTES.to_string()),
        ],
        config,
        workload,
    )
    .with_run(Arc::new(measure));

    let results = run_sweep(&runner(&opts, "r6_fd"), &[point]);
    let mut table = Table::new([
        "seed",
        "detected mutes",
        "mean latency (s)",
        "max latency (s)",
        "false suspicions",
        "healed cover",
    ]);
    for run in &results[0].runs {
        let extra = |name: &str| {
            run.outcome
                .extras
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        };
        table.add_row([
            run.seed.to_string(),
            format!("{}/{}", extra("detected_mutes") as usize, MUTES),
            fnum(extra("detection_mean_s")),
            fnum(extra("detection_max_s")),
            format!("{}", extra("false_suspicions") as u64),
            (extra("healed_cover") == 1.0).to_string(),
        ]);
    }
    print!("{table}");
}
