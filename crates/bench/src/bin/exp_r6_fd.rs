//! Experiment R6 — failure-detector reaction to mute overlay nodes.
//!
//! Measures the interval-failure-detector properties of §2.2 on a live run:
//! how quickly mute overlay claimants are suspected by their correct
//! neighbours (Interval Local Completeness, Lemma 3.7), how rarely correct
//! nodes are suspected (Interval Strong Accuracy, Lemma 3.8), and whether
//! the overlay self-heals into a connected correct cover (Lemma 3.9).

use byzcast_adversary::MutePolicy;
use byzcast_bench::{banner, opts, seeds};
use byzcast_harness::{byz_view, report::fnum, AdversaryKind, ScenarioConfig, Table, Workload};
use byzcast_sim::{Field, NodeId, SimConfig, SimDuration, SimTime};

fn main() {
    let opts = opts();
    banner(
        "R6",
        "suspicion latency / accuracy / overlay healing (n = 60, 6 mutes)",
        "paper §2.2 interval failure detectors; Lemmas 3.7–3.9",
    );
    let n = 60usize;
    let mutes = 6usize;
    let workload = Workload {
        senders: vec![NodeId(0), NodeId(1)],
        count: if opts.quick { 30 } else { 80 },
        payload_bytes: 512,
        start: SimDuration::from_secs(10),
        interval: SimDuration::from_millis(250),
        drain: SimDuration::from_secs(20),
    };
    let mut table = Table::new([
        "seed",
        "detected mutes",
        "mean latency (s)",
        "max latency (s)",
        "false suspicions",
        "healed cover",
    ]);
    for seed in seeds(opts) {
        let config = ScenarioConfig {
            seed,
            n,
            sim: SimConfig {
                field: Field::new(800.0, 800.0),
                ..SimConfig::default()
            },
            adversary: Some(AdversaryKind::Mute(MutePolicy::DropData)),
            adversary_count: mutes,
            ..ScenarioConfig::default()
        };
        let adv = config.adversary_set();
        let mut sim = config.build_wire_sim();
        for (at, sender, payload_id, size) in workload.schedule() {
            sim.schedule_app_broadcast(at, sender, payload_id, size);
        }
        sim.run_until(SimTime::ZERO + workload.horizon());

        // First data injection is when the mutes' misbehaviour can begin.
        let t0 = workload.start;
        let mut detected: std::collections::BTreeSet<NodeId> = Default::default();
        let mut latencies: Vec<f64> = Vec::new();
        let mut false_suspicions = 0u64;
        for i in 0..n as u32 {
            let id = NodeId(i);
            if adv.contains(&id) {
                continue;
            }
            let Some(node) = byz_view(&sim, id) else {
                continue;
            };
            for ep in node.suspicion_log().episodes() {
                if adv.contains(&ep.suspect) {
                    if detected.insert(ep.suspect) {
                        latencies.push(ep.start.saturating_since(SimTime::ZERO + t0).as_secs_f64());
                    }
                } else {
                    false_suspicions += 1;
                }
            }
        }
        let summary = config.summarize_wire(&sim);
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let max = latencies.iter().copied().fold(0.0f64, f64::max);
        table.add_row([
            seed.to_string(),
            format!("{}/{}", detected.len(), mutes),
            fnum(mean),
            fnum(max),
            false_suspicions.to_string(),
            summary
                .overlay_ok
                .map(|b| b.to_string())
                .unwrap_or_default(),
        ]);
    }
    print!("{table}");
}
