//! Experiment T1 — the §3.5 analysis bounds, on the paper's worst case.
//!
//! Figure 5 of the paper shows the adversarial extreme: a line where *every
//! overlay node is Byzantine*, so "all messages will be disseminated using
//! the gossip-request mechanism" and dissemination takes at most
//! `max_timeout · n/2` in a static network (Theorem 3.4 gives
//! `max_timeout · (n − 1)` for the mobile case). The buffer bound is
//! `max_timeout · δ` messages (static).
//!
//! We build exactly that topology: nodes on a line, every odd node a mute
//! Byzantine claiming dominator status, every even node correct — the
//! correct nodes form a connected graph through each other (spacing chosen
//! so nodes two positions apart are still in range), and measure the slowest
//! accept against the bounds.

use byzcast_bench::{banner, opts};
use byzcast_harness::{byz_view, figure5_worst_case, report::fnum, Table, Workload};
use byzcast_sim::{NodeId, SimDuration, SimTime};

fn main() {
    let opts = opts();
    banner(
        "T1",
        "dissemination-time and buffer bounds on the Fig. 5 worst case",
        "paper §3.5 (Theorem 3.4, static n/2 bound, buffer bound)",
    );
    // Number of *correct* nodes per chain (total n = 2·correct − 1).
    let sizes: &[usize] = if opts.quick { &[5, 9] } else { &[5, 9, 13, 17] };
    let mut table = Table::new([
        "n",
        "delivery",
        "max latency (s)",
        "static bound (s)",
        "thm 3.4 bound (s)",
        "within bounds",
        "buffer high-water",
        "buffer bound",
    ]);
    for &correct in sizes {
        let config = figure5_worst_case(correct, 1);
        let n = config.n;
        let workload = Workload {
            senders: vec![NodeId(0)],
            count: if opts.quick { 5 } else { 10 },
            payload_bytes: 256,
            start: SimDuration::from_secs(8),
            interval: SimDuration::from_secs(2),
            drain: SimDuration::from_secs(120),
        };
        let mut sim = config.build_wire_sim();
        for (at, sender, payload_id, size) in workload.schedule() {
            sim.schedule_app_broadcast(at, sender, payload_id, size);
        }
        sim.run_until(SimTime::ZERO + workload.horizon());
        let summary = config.summarize_wire(&sim);

        // β: the air time of the largest frame at the configured bit rate.
        let beta = SimDuration::from_micros(config.sim.radio.air_time_us(2700));
        let max_timeout = config.byzcast.max_timeout(beta);
        let static_bound = max_timeout.saturating_mul(n as u64 / 2).as_secs_f64();
        let mobile_bound = max_timeout.saturating_mul(n as u64 - 1).as_secs_f64();
        let within = summary.max_latency_s <= static_bound && summary.max_latency_s <= mobile_bound;

        // Buffer bound (mobile form, the looser of the two):
        // max_timeout · (n − 1) · δ messages.
        let buffer_bound =
            (max_timeout.as_secs_f64() * (n as f64 - 1.0) * workload.delta()).ceil() as usize;
        let mut high_water = 0usize;
        for i in 0..n as u32 {
            if let Some(node) = byz_view(&sim, NodeId(i)) {
                high_water = high_water.max(node.store().high_water());
            }
        }
        table.add_row([
            n.to_string(),
            fnum(summary.delivery_ratio),
            fnum(summary.max_latency_s),
            fnum(static_bound),
            fnum(mobile_bound),
            within.to_string(),
            high_water.to_string(),
            buffer_bound.to_string(),
        ]);
    }
    print!("{table}");
}
