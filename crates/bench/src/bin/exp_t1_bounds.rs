//! Experiment T1 — the §3.5 analysis bounds, on the paper's worst case.
//!
//! Figure 5 of the paper shows the adversarial extreme: a line where *every
//! overlay node is Byzantine*, so "all messages will be disseminated using
//! the gossip-request mechanism" and dissemination takes at most
//! `max_timeout · n/2` in a static network (Theorem 3.4 gives
//! `max_timeout · (n − 1)` for the mobile case). The buffer bound is
//! `max_timeout · δ` messages (static).
//!
//! We build exactly that topology: nodes on a line, every odd node a mute
//! Byzantine claiming dominator status, every even node correct — the
//! correct nodes form a connected graph through each other (spacing chosen
//! so nodes two positions apart are still in range), and measure the slowest
//! accept against the bounds, replicated over seeds on the shared runner.

use std::sync::Arc;

use byzcast_bench::{banner, opts, runner};
use byzcast_harness::{
    byz_view, figure5_worst_case, report::fnum, run_sweep, RunFn, RunOutcome, ScenarioConfig,
    SweepPoint, Table, Workload,
};
use byzcast_sim::{NodeId, SimDuration, SimTime};

/// Runs the worst case and checks the run against the §3.5 bounds,
/// returned as extras alongside the summary.
fn measure(config: &ScenarioConfig, workload: &Workload) -> RunOutcome {
    let n = config.n;
    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());
    let summary = config.summarize_wire(&sim);

    // β: the air time of the largest frame at the configured bit rate.
    let beta = SimDuration::from_micros(config.sim.radio.air_time_us(2700));
    let max_timeout = config.byzcast.max_timeout(beta);
    let static_bound = max_timeout.saturating_mul(n as u64 / 2).as_secs_f64();
    let mobile_bound = max_timeout.saturating_mul(n as u64 - 1).as_secs_f64();
    let within = summary.max_latency_s <= static_bound && summary.max_latency_s <= mobile_bound;

    // Buffer bound (mobile form, the looser of the two):
    // max_timeout · (n − 1) · δ messages.
    let buffer_bound =
        (max_timeout.as_secs_f64() * (n as f64 - 1.0) * workload.delta()).ceil() as usize;
    // All nodes, adversaries included — the bound is about any buffer.
    let mut high_water = 0usize;
    for i in 0..n as u32 {
        if let Some(node) = byz_view(&sim, NodeId(i)) {
            high_water = high_water.max(node.store().high_water());
        }
    }
    RunOutcome {
        summary,
        extras: vec![
            ("static_bound_s", static_bound),
            ("mobile_bound_s", mobile_bound),
            ("within_bounds", if within { 1.0 } else { 0.0 }),
            ("buffer_high_water", high_water as f64),
            ("buffer_bound", buffer_bound as f64),
        ],
    }
}

fn main() {
    let opts = opts();
    banner(
        "T1",
        "dissemination-time and buffer bounds on the Fig. 5 worst case",
        "paper §3.5 (Theorem 3.4, static n/2 bound, buffer bound)",
    );
    // Number of *correct* nodes per chain (total n = 2·correct − 1).
    let sizes: &[usize] = if opts.quick { &[5, 9] } else { &[5, 9, 13, 17] };
    let workload_of = |quick: bool| Workload {
        senders: vec![NodeId(0)],
        count: if quick { 5 } else { 10 },
        payload_bytes: 256,
        start: SimDuration::from_secs(8),
        interval: SimDuration::from_secs(2),
        drain: SimDuration::from_secs(120),
    };
    let measure: Arc<RunFn> = Arc::new(measure);

    let points: Vec<SweepPoint> = sizes
        .iter()
        .map(|&correct| {
            let config = figure5_worst_case(correct, 1);
            SweepPoint::new(
                format!("n={}", config.n),
                vec![
                    ("correct".to_owned(), correct.to_string()),
                    ("n".to_owned(), config.n.to_string()),
                ],
                config,
                workload_of(opts.quick),
            )
            .with_run(Arc::clone(&measure))
        })
        .collect();

    let results = run_sweep(&runner(&opts, "t1_bounds"), &points);
    let mut table = Table::new([
        "n",
        "delivery",
        "max latency (s)",
        "static bound (s)",
        "thm 3.4 bound (s)",
        "within bounds",
        "buffer high-water",
        "buffer bound",
    ]);
    for result in &results {
        let agg = &result.aggregate;
        let extra = |name: &str| result.extra_mean(name).unwrap_or(0.0);
        table.add_row([
            agg.n.to_string(),
            fnum(agg.delivery_ratio),
            fnum(agg.max_latency_s),
            fnum(extra("static_bound_s")),
            fnum(extra("mobile_bound_s")),
            // The bounds must hold in every replication.
            (extra("within_bounds") == 1.0).to_string(),
            format!("{}", extra("buffer_high_water").ceil() as usize),
            format!("{}", extra("buffer_bound").ceil() as usize),
        ]);
    }
    print!("{table}");
}
