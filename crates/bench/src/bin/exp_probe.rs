//! Diagnostic probe: one scenario, full breakdown of where frames, losses
//! and suspicions go. Not part of the paper's experiment set — a tool for
//! understanding runs (`cargo run -p byzcast-bench --bin exp_probe -- [n]`).

use byzcast_bench::{default_scenario, default_workload, opts};
use byzcast_harness::byz_view;
use byzcast_sim::{NodeId, SimTime};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    let opts = opts();
    let config = default_scenario(n, 0);
    let workload = default_workload(opts);

    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());

    let m = sim.metrics();
    println!("n = {n}, messages = {}", workload.count);
    println!("frames by kind: {:?}", m.frames_by_kind);
    println!("bytes by kind:  {:?}", m.bytes_by_kind);
    println!(
        "losses: {} collisions, {} noise, {} half-duplex, {} queue drops",
        m.collision_losses, m.noise_losses, m.half_duplex_losses, m.queue_drops
    );
    println!(
        "receptions: {} ok ({}% of send*degree events lost to collisions)",
        m.frames_received,
        (100 * m.collision_losses) / (m.frames_received + m.collision_losses).max(1)
    );

    let mut forwards = 0u64;
    let mut served = 0u64;
    let mut requests = 0u64;
    let mut finds = 0u64;
    let mut recovered = 0u64;
    let mut overlay = 0usize;
    let mut episodes = 0usize;
    for i in 0..n as u32 {
        if let Some(node) = byz_view(&sim, NodeId(i)) {
            let c = node.counters();
            forwards += c.data_forwards;
            served += c.recoveries_served;
            requests += c.requests_sent;
            finds += c.finds_sent;
            recovered += c.recovered_via_request;
            if node.is_overlay() {
                overlay += 1;
            }
            episodes += node.suspicion_log().episodes().len();
        }
    }
    println!(
        "protocol: {forwards} forwards, {served} recovery responses, {requests} requests, {finds} finds, {recovered} recovered"
    );
    println!("overlay at end: {overlay}/{n}; suspicion episodes: {episodes}");
    let summary = config.summarize_wire(&sim);
    println!(
        "delivery {:.3} (min {:.3}), p99 latency {:.3}s",
        summary.delivery_ratio, summary.min_delivery_ratio, summary.p99_latency_s
    );
}
