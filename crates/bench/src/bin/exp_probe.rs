//! Diagnostic probe: one scenario, full breakdown of where frames, losses
//! and suspicions go. Not part of the paper's experiment set — a tool for
//! understanding runs (`cargo run -p byzcast-bench --bin exp_probe -- [n]`).
//!
//! Runs on the shared runner so `--results-dir` captures the same JSONL
//! record shape as the real experiments.

use std::sync::Arc;

use byzcast_bench::{default_scenario, default_workload, opts, runner};
use byzcast_harness::{byz_view, run_sweep, RunOutcome, ScenarioConfig, SweepPoint, Workload};
use byzcast_sim::{NodeId, SimTime};

fn measure(config: &ScenarioConfig, workload: &Workload) -> RunOutcome {
    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());

    let m = sim.metrics();
    let mut forwards = 0u64;
    let mut overlay = 0usize;
    let mut episodes = 0usize;
    for i in 0..config.n as u32 {
        if let Some(node) = byz_view(&sim, NodeId(i)) {
            forwards += node.counters().data_forwards;
            if node.is_overlay() {
                overlay += 1;
            }
            episodes += node.suspicion_log().episodes().len();
        }
    }
    RunOutcome {
        summary: config.summarize_wire(&sim),
        extras: vec![
            ("half_duplex_losses", m.half_duplex_losses as f64),
            ("queue_drops", m.queue_drops as f64),
            ("frames_received", m.frames_received as f64),
            ("data_forwards", forwards as f64),
            ("overlay_members", overlay as f64),
            ("suspicion_episodes", episodes as f64),
        ],
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    let mut opts = opts();
    // A probe is one diagnostic run unless seeds are asked for explicitly.
    if opts.seed_count.is_none() {
        opts.seed_count = Some(1);
    }
    let config = default_scenario(n, 0);
    let workload = default_workload(&opts);

    let point = SweepPoint::new(
        format!("n={n}"),
        vec![("n".to_owned(), n.to_string())],
        config,
        workload.clone(),
    )
    .with_run(Arc::new(measure));
    let results = run_sweep(&runner(&opts, "probe"), &[point]);

    let result = &results[0];
    let s = &result.aggregate;
    let extra = |name: &str| result.extra_mean(name).unwrap_or(0.0);
    println!("n = {n}, messages = {}", workload.count);
    println!("frames by kind (frames, bytes):");
    for (kind, frames, bytes) in &s.frame_kinds {
        println!("  {kind:<10} {frames:>8} {bytes:>10}");
    }
    println!(
        "losses: {} collisions, {} noise, {} half-duplex, {} queue drops",
        s.collisions,
        s.noise_losses,
        extra("half_duplex_losses") as u64,
        extra("queue_drops") as u64
    );
    let received = extra("frames_received") as u64;
    println!(
        "receptions: {} ok ({}% of send*degree events lost to collisions)",
        received,
        (100 * s.collisions) / (received + s.collisions).max(1)
    );
    println!(
        "protocol: {} forwards, {} recovery responses, {} requests, {} finds, {} recovered",
        extra("data_forwards") as u64,
        s.recoveries_served,
        s.requests,
        s.finds,
        s.recovered
    );
    println!(
        "overlay at end: {}/{n}; suspicion episodes: {}",
        extra("overlay_members") as usize,
        extra("suspicion_episodes") as usize
    );
    println!(
        "delivery {:.3} (min {:.3}), p99 latency {:.3}s",
        s.delivery_ratio, s.min_delivery_ratio, s.p99_latency_s
    );
}
