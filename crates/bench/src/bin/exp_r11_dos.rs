//! Experiment R11 — resource exhaustion under flooding, governed vs not.
//!
//! The paper's fault model (§2.1) includes verbose behaviour: "Byzantine
//! processes may fail to send messages, send too many messages, send
//! messages with false information" — and §3.5 bounds the buffer a correct
//! node needs only under an *assumed* bound on in-flight traffic. This
//! experiment measures what happens when that assumption is attacked: a
//! sweep of attacker count × injection rate, where each attacker is a
//! [`Flooder`]-style adversary originating unique validly-signed garbage.
//! Each point runs twice — ungoverned (the seed protocol, unlimited
//! [`ResourceConfig`]) and governed (a tight admission/store envelope) —
//! under the standard invariant-oracle suite. The ungoverned arm's peak
//! store occupancy grows with the attack rate (each garbage body is held
//! until the purge horizon); the governed arm stays flat at the configured
//! cap while correct-sender delivery holds, and sustained admission
//! violations surface as VERBOSE quota suspicions of the flooders.
//!
//! [`Flooder`]: byzcast_harness::scenario::AdversaryKind::Flooder

use std::sync::Arc;

use byzcast_bench::{banner, opts, runner, ExpOpts};
use byzcast_core::ResourceConfig;
use byzcast_harness::scenario::AdversaryKind;
use byzcast_harness::{
    check_run, report::fnum, run_sweep, standard_oracles, RunOutcome, ScenarioConfig, SweepPoint,
    Table, Workload,
};
use byzcast_sim::{Field, NodeId, SimConfig, SimDuration};

/// The governed arm's envelope: a memory-constrained correct node. The
/// store cap (256 bodies) is an order of magnitude above what the correct
/// workload ever buffers, and the admission budget (25 frames/s per
/// neighbour, burst 50) is far above any correct neighbour's send rate —
/// so governance is invisible to legitimate traffic while a sustained
/// flooder is throttled at admission and capped in the store.
fn dos_envelope() -> ResourceConfig {
    ResourceConfig {
        frames_per_sec: 25,
        frame_burst: 50,
        verifs_per_sec: 100,
        verif_burst: 200,
        max_store_msgs: 256,
        max_store_bytes: 256 << 10,
        max_seen_ids: 16384,
        max_gossip_per_origin: 64,
        max_missing_per_origin: 64,
    }
}

fn main() {
    let opts = opts();
    banner(
        "R11",
        "delivery and memory under signed-garbage flooding, governed vs ungoverned",
        "paper §2.1 fault model: Byzantine nodes may send too many messages; §3.5 buffer bound",
    );
    let n = if opts.quick { 30 } else { 40 };
    let rates: &[u32] = if opts.quick { &[5, 50] } else { &[5, 20, 50] };
    let counts: &[usize] = if opts.quick { &[1, 2] } else { &[1, 2, 4] };
    let workload = Workload {
        senders: vec![NodeId(0), NodeId(1)],
        count: if opts.quick { 6 } else { 10 },
        payload_bytes: 256,
        start: SimDuration::from_secs(6),
        interval: SimDuration::from_secs(1),
        drain: SimDuration::from_secs(15),
    };

    let mut combos = Vec::new();
    let mut points: Vec<SweepPoint> = Vec::new();
    for &governed in &[false, true] {
        for &attackers in counts {
            for &rate in rates {
                combos.push((governed, attackers, rate));
                // Flood ticks every 200 ms; per_tick scales to the rate.
                let kind = AdversaryKind::Flooder {
                    period: SimDuration::from_millis(200),
                    per_tick: rate.div_ceil(5),
                    payload_bytes: 256,
                };
                let config = ScenarioConfig {
                    n,
                    sim: SimConfig {
                        field: Field::new(700.0, 700.0),
                        ..SimConfig::default()
                    },
                    adversary: Some(kind),
                    adversary_count: attackers,
                    ..ScenarioConfig::default()
                };
                let arm = if governed { "governed" } else { "ungoverned" };
                points.push(
                    SweepPoint::new(
                        format!("{arm}/atk={attackers}/rate={rate}"),
                        vec![
                            ("arm".to_owned(), arm.to_owned()),
                            ("attackers".to_owned(), attackers.to_string()),
                            ("rate_msgs_s".to_owned(), rate.to_string()),
                        ],
                        config,
                        workload.clone(),
                    )
                    .with_run(Arc::new(
                        move |scenario: &ScenarioConfig, w: &Workload| {
                            let mut s = scenario.clone();
                            if governed {
                                s.byzcast.resources = dos_envelope();
                            }
                            let checked = check_run(&s, w, &standard_oracles());
                            let violations: u64 =
                                checked.summary.oracle_outcomes.iter().map(|(_, c)| c).sum();
                            let res = checked.summary.resources;
                            RunOutcome {
                                summary: checked.summary,
                                extras: vec![
                                    ("violations", violations as f64),
                                    (
                                        "frames_dropped",
                                        res.map_or(0.0, |r| r.frames_dropped as f64),
                                    ),
                                    ("store_rejects", res.map_or(0.0, |r| r.store_rejects as f64)),
                                    (
                                        "quota_suspicions",
                                        res.map_or(0.0, |r| r.quota_suspicions as f64),
                                    ),
                                ],
                            }
                        },
                    )),
                );
            }
        }
    }

    let results = run_sweep(&runner(&opts, "r11_dos"), &points);
    print_table(&opts, &combos, &results);
}

fn print_table(
    _opts: &ExpOpts,
    combos: &[(bool, usize, u32)],
    results: &[byzcast_harness::PointResult],
) {
    let mut table = Table::new([
        "arm",
        "attackers",
        "rate/s",
        "delivery",
        "min-delivery",
        "peak store",
        "frames dropped",
        "store rejects",
        "quota susp.",
        "violations",
    ]);
    for (&(governed, attackers, rate), result) in combos.iter().zip(results) {
        let agg = &result.aggregate;
        table.add_row([
            (if governed { "governed" } else { "ungoverned" }).to_owned(),
            attackers.to_string(),
            rate.to_string(),
            fnum(agg.delivery_ratio),
            fnum(agg.min_delivery_ratio),
            agg.store_high_water.to_string(),
            format!("{:.0}", result.extra_mean("frames_dropped").unwrap_or(0.0)),
            format!("{:.0}", result.extra_mean("store_rejects").unwrap_or(0.0)),
            format!(
                "{:.0}",
                result.extra_mean("quota_suspicions").unwrap_or(0.0)
            ),
            format!("{:.1}", result.extra_mean("violations").unwrap_or(0.0)),
        ]);
    }
    print!("{table}");
}
