//! Experiment R8 — gossip design ablation: aggregation and period.
//!
//! The paper credits two design choices for the protocol's efficiency:
//! gossip entries are "much smaller than the messages themselves" and
//! "multiple gossip messages are aggregated into one packet, thereby greatly
//! reducing the number of messages generated" (§1). This ablation turns
//! aggregation off and sweeps the gossip period (the `gossip_timeout` of
//! §3.5, which trades recovery latency against background traffic).

use byzcast_bench::{banner, default_scenario, default_workload, opts, runner};
use byzcast_harness::{report::fnum, run_sweep, SweepPoint, Table};
use byzcast_sim::SimDuration;

fn main() {
    let opts = opts();
    banner(
        "R8",
        "gossip aggregation / period ablation (n = 80)",
        "paper §1 aggregation claim; §3.5 gossip_timeout in max_timeout",
    );
    let workload = default_workload(&opts);
    let periods: &[u64] = if opts.quick {
        &[1000]
    } else {
        &[500, 1000, 2000]
    };

    let mut metas = Vec::new();
    let mut points = Vec::new();
    for &period_ms in periods {
        for aggregated in [true, false] {
            let mut config = default_scenario(80, 0);
            config.byzcast.gossip_period = SimDuration::from_millis(period_ms);
            config.byzcast.aggregate_gossip = aggregated;
            metas.push((period_ms, aggregated));
            points.push(SweepPoint::new(
                format!("period={period_ms}ms/agg={aggregated}"),
                vec![
                    ("gossip_period_ms".to_owned(), period_ms.to_string()),
                    ("aggregated".to_owned(), aggregated.to_string()),
                ],
                config,
                workload.clone(),
            ));
        }
    }

    let results = run_sweep(&runner(&opts, "r8_ablation"), &points);
    let mut table = Table::new([
        "gossip period",
        "aggregated",
        "frames",
        "kB",
        "gossip frames",
        "delivery",
        "p99 (s)",
    ]);
    for (&(period_ms, aggregated), result) in metas.iter().zip(&results) {
        let agg = &result.aggregate;
        let gossip_frames = agg.frames_sent - agg.data_frames - agg.requests - agg.finds;
        table.add_row([
            format!("{period_ms} ms"),
            aggregated.to_string(),
            agg.frames_sent.to_string(),
            fnum(agg.bytes_sent as f64 / 1024.0),
            gossip_frames.to_string(),
            fnum(agg.delivery_ratio),
            fnum(agg.p99_latency_s),
        ]);
    }
    print!("{table}");
}
