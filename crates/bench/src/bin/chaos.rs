//! `chaos` — the chaos soak harness: randomized fault-injection runs under
//! the invariant-oracle suite, with corpus replay and scenario shrinking.
//!
//! Three subcommands:
//!
//! * `chaos run` — generate and execute seeded chaos cases ([`byzcast_harness::
//!   chaos::generate_case`]); any run that violates an oracle is shrunk to a
//!   minimal reproducer and persisted to the corpus directory. Exits nonzero
//!   if any violation was found.
//! * `chaos replay <file>...` — re-execute corpus files and compare the
//!   observed per-oracle violation counts against their `expect` lines.
//!   Exits nonzero on any mismatch: a reproducer either replays exactly or
//!   the corpus is stale.
//! * `chaos shrink <file>` — minimize a corpus case, printing the shrunk
//!   case to stdout and shrink statistics to stderr.
//!
//! Records are deterministic: for a fixed `--seed-start`/`--runs`/`--quick`
//! the JSONL output is byte-identical for any `--threads` value.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use byzcast_harness::chaos::{case_size, soak, violation_counts, ChaosProfile, CORPUS_HEADER};
use byzcast_harness::{default_threads, parse_case, run_case, shrink, ChaosCase};

const USAGE: &str = "\
usage: chaos run [--runs N] [--seed-start S] [--quick] [--threads N]
                 [--profile standard|crash-heavy] [--results-dir DIR]
                 [--corpus-dir DIR] [--max-minutes M] [--shrink-budget B]
                 [--no-progress]
       chaos replay <file>...
       chaos shrink <file> [--shrink-budget B]";

struct RunOpts {
    runs: usize,
    seed_start: u64,
    quick: bool,
    threads: usize,
    results_dir: Option<PathBuf>,
    corpus_dir: Option<PathBuf>,
    max_minutes: Option<f64>,
    shrink_budget: usize,
    progress: bool,
    profile: ChaosProfile,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            runs: 100,
            seed_start: 1,
            quick: false,
            threads: default_threads(),
            results_dir: None,
            corpus_dir: None,
            max_minutes: None,
            shrink_budget: 150,
            progress: true,
            profile: ChaosProfile::Standard,
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("run") => cmd_run(args),
        Some("replay") => cmd_replay(args),
        Some("shrink") => cmd_shrink(args),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_run(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut opts = RunOpts::default();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--runs" => opts.runs = value("--runs").parse().expect("--runs: not a number"),
            "--seed-start" => {
                opts.seed_start = value("--seed-start")
                    .parse()
                    .expect("--seed-start: not a number")
            }
            "--quick" | "-q" => opts.quick = true,
            "--threads" => {
                opts.threads = value("--threads").parse().expect("--threads: not a number")
            }
            "--results-dir" => opts.results_dir = Some(PathBuf::from(value("--results-dir"))),
            "--corpus-dir" => opts.corpus_dir = Some(PathBuf::from(value("--corpus-dir"))),
            "--max-minutes" => {
                opts.max_minutes = Some(
                    value("--max-minutes")
                        .parse()
                        .expect("--max-minutes: not a number"),
                )
            }
            "--shrink-budget" => {
                opts.shrink_budget = value("--shrink-budget")
                    .parse()
                    .expect("--shrink-budget: not a number")
            }
            "--profile" => {
                let spec = value("--profile");
                opts.profile = ChaosProfile::parse(&spec)
                    .unwrap_or_else(|| panic!("--profile: unknown profile {spec}"));
            }
            "--no-progress" => opts.progress = false,
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let started = Instant::now();
    // Fixed chunk size: batch boundaries decide each record's `run_index`,
    // so they must not depend on `--threads` or the byte-identical-JSONL
    // contract breaks. Chunks exist only for the --max-minutes check and
    // progress granularity.
    let chunk = 64;
    let mut executed = 0usize;
    let mut violating = Vec::new();
    let mut records = Vec::new();

    while executed < opts.runs {
        if let Some(minutes) = opts.max_minutes {
            if started.elapsed().as_secs_f64() / 60.0 >= minutes {
                if opts.progress {
                    eprintln!(
                        "  time box of {minutes} min reached after {executed}/{} runs",
                        opts.runs
                    );
                }
                break;
            }
        }
        let batch = chunk.min(opts.runs - executed);
        let outcomes = soak(
            opts.seed_start + executed as u64,
            batch,
            opts.quick,
            opts.threads,
            opts.profile,
        );
        executed += batch;
        for outcome in outcomes {
            records.push(outcome.record.clone());
            if !outcome.violations.is_empty() {
                if opts.progress {
                    eprintln!(
                        "  VIOLATION {} ({} finding(s))",
                        outcome.case.name,
                        outcome.violations.len()
                    );
                }
                violating.push(outcome);
            }
        }
        if opts.progress {
            eprintln!(
                "  [{executed}/{}] {} violating case(s) so far ({:.1}s)",
                opts.runs,
                violating.len(),
                started.elapsed().as_secs_f64()
            );
        }
    }

    if let Some(dir) = &opts.results_dir {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = dir.join("chaos.jsonl");
        let mut out =
            std::io::BufWriter::new(std::fs::File::create(&path).expect("create chaos.jsonl"));
        for record in &records {
            writeln!(out, "{record}").expect("write record");
        }
        out.flush().expect("flush records");
        if opts.progress {
            eprintln!("  wrote {} records to {}", records.len(), path.display());
        }
    }

    // Shrink each violating case to its minimal reproducer and persist it.
    for outcome in &violating {
        let result = shrink(&outcome.case, opts.shrink_budget);
        let text = result.case.to_text();
        match &opts.corpus_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir).expect("create corpus dir");
                let path = dir.join(format!("{}.chaos", result.case.name));
                std::fs::write(&path, &text).expect("write corpus file");
                println!("reproducer saved: {}", path.display());
            }
            None => {
                println!("--- reproducer {} ---", result.case.name);
                print!("{text}");
            }
        }
    }

    println!(
        "chaos run: {executed} case(s), {} violating, {:.1}s",
        violating.len(),
        started.elapsed().as_secs_f64()
    );
    if violating.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_replay(args: impl Iterator<Item = String>) -> ExitCode {
    let files: Vec<String> = args.collect();
    if files.is_empty() {
        eprintln!("chaos replay: no corpus files given\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut failures = 0usize;
    for file in &files {
        match replay_file(file) {
            Ok(name) => println!("replay OK   {file} ({name})"),
            Err(msg) => {
                println!("replay FAIL {file}: {msg}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn replay_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let case = parse_case(&text)?;
    let checked = run_case(&case);
    let got = violation_counts(&checked.violations);
    if got == case.expect {
        Ok(case.name)
    } else {
        Err(format!(
            "expected violations {:?}, observed {:?}",
            case.expect, got
        ))
    }
}

fn cmd_shrink(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut file = None;
    let mut budget = 200usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shrink-budget" => {
                budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shrink-budget needs a number")
            }
            other if file.is_none() => file = Some(other.to_owned()),
            other => {
                eprintln!("unexpected argument {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("chaos shrink: no corpus file given\n{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("chaos shrink: read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let case: ChaosCase = match parse_case(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chaos shrink: parse {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let before = case_size(&case);
    let result = shrink(&case, budget);
    if result.case.expect.is_empty() {
        eprintln!("chaos shrink: {file} does not violate any oracle; nothing to preserve");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "shrink: size {before} -> {} in {} run(s); format {CORPUS_HEADER:?}",
        case_size(&result.case),
        result.runs
    );
    print!("{}", result.case.to_text());
    ExitCode::SUCCESS
}
