//! Experiment R12 — thin-chain crash recovery, escalating retries vs the
//! flooding baseline.
//!
//! The paper's semi-reliability argument (§3.3) leans on the gossip /
//! REQUEST / FIND_MISSING chain to deliver "to every correct process that
//! stays connected". The PR-4 chaos soak found the gap this experiment
//! measures: a crash next to a thin chain leaves the pocket behind it
//! served only by a passive holder, the stranded nodes' retries fixate on
//! a fading-band gossiper that never answers, and the capped request
//! budget runs dry — connected, up, correct nodes miss the broadcast past
//! the recovery slack. Two sweeps, three arms each:
//!
//! * `off`   — the seed protocol, recovery envelope disabled;
//! * `on`    — escalating FIND_MISSING retries + liveness re-election
//!   ([`RecoveryConfig::standard`]);
//! * `flood` — the flooding baseline, which shrugs off the crash by brute
//!   force and prices the redundancy the overlay saves.
//!
//! **Sweep 1 (chain)** hand-builds a cluster + bridge + `len`-hop chain
//! and sweeps the crash position: `pos = 0` crashes the elected dominator
//! bridge (the chain stays connected through a spare, and the liveness
//! repair must re-elect around the hole), `pos = k` crashes the k-th chain
//! hop (the tail is genuinely partitioned; no arm can deliver there and
//! the oracle demands nothing — the sweep shows the stranded/partitioned
//! distinction and what the repair costs in re-elections).
//!
//! **Sweep 2 (corpus)** replays the shrunk soak reproducer
//! `tests/chaos_corpus/crash-thin-chain.chaos` (36 nodes, one crash at
//! t = 4 s) under all three arms. Stranding there needs a conspiracy of
//! fading-band links and retry phase that random small sweeps hit rarely
//! (a 500-case soak found one), so the pinned case *is* the experiment:
//! `off` strands four connected nodes deterministically, `on` must run
//! clean, `flood` prices the alternative.

use std::sync::Arc;

use byzcast_bench::{banner, opts, runner, ExpOpts};
use byzcast_core::RecoveryConfig;
use byzcast_harness::scenario::ProtocolChoice;
use byzcast_harness::{
    check_run, parse_case, report::fnum, run_sweep, standard_oracles, MobilityChoice, RunOutcome,
    ScenarioConfig, SweepPoint, Table, Workload,
};
use byzcast_sim::{FaultKind, Field, NodeId, Position, RadioConfig, SimConfig, SimDuration};

const THIN_CHAIN_CASE: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/chaos_corpus/crash-thin-chain.chaos"
));

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    Off,
    On,
    Flood,
}

impl Arm {
    fn label(self) -> &'static str {
        match self {
            Arm::Off => "off",
            Arm::On => "on",
            Arm::Flood => "flood",
        }
    }

    fn apply(self, scenario: &mut ScenarioConfig) {
        match self {
            Arm::Off => scenario.byzcast.recovery = RecoveryConfig::off(),
            Arm::On => scenario.byzcast.recovery = RecoveryConfig::standard(),
            Arm::Flood => scenario.protocol = ProtocolChoice::Flooding,
        }
    }
}

/// Cluster `0-1-2`, a spare bridge, a doomed bridge with the highest id
/// (it wins the id-based election), and a `chain_len`-hop chain hanging off
/// the bridges. `crash_pos` 0 crashes the doomed bridge; `k >= 1` crashes
/// the k-th chain hop (partitioning the tail).
fn chain_scenario(chain_len: usize, crash_pos: usize) -> ScenarioConfig {
    assert!(crash_pos <= chain_len);
    let mut positions = vec![
        Position::new(50.0, 50.0),   // 0: sender
        Position::new(150.0, 50.0),  // 1: cluster
        Position::new(250.0, 50.0),  // 2: cluster edge, reaches both bridges
        Position::new(380.0, 120.0), // 3: spare bridge (passive under the doomed one)
    ];
    for i in 0..chain_len {
        positions.push(Position::new(600.0 + 200.0 * i as f64, 50.0));
    }
    let doomed_bridge = NodeId(positions.len() as u32); // highest id
    positions.push(Position::new(380.0, 50.0));
    let crashed = if crash_pos == 0 {
        doomed_bridge
    } else {
        NodeId(3 + crash_pos as u32)
    };
    let width = 600.0 + 200.0 * chain_len as f64;
    let mut scenario = ScenarioConfig {
        seed: 12,
        n: positions.len(),
        sim: SimConfig {
            field: Field::new(width, 200.0),
            radio: RadioConfig::ideal_disk(250.0),
            ..SimConfig::default()
        },
        mobility: MobilityChoice::Explicit(positions),
        ..ScenarioConfig::default()
    };
    scenario.fault_plan.push(
        SimDuration::from_secs(4),
        FaultKind::Crash {
            node: crashed,
            retain_state: false,
        },
    );
    scenario
}

fn run_arm(scenario: &ScenarioConfig, workload: &Workload) -> RunOutcome {
    let checked = check_run(scenario, workload, &standard_oracles());
    let semi = checked
        .violations
        .iter()
        .filter(|v| v.oracle == "semi-reliability")
        .count();
    let rec = checked.summary.recovery;
    RunOutcome {
        summary: checked.summary,
        extras: vec![
            ("semi_violations", semi as f64),
            (
                "requests_widened",
                rec.map_or(0.0, |r| r.requests_widened as f64),
            ),
            ("reelections", rec.map_or(0.0, |r| r.reelections as f64)),
        ],
    }
}

fn main() {
    let opts = opts();
    banner(
        "R12",
        "thin-chain crash recovery: escalating retries vs the flooding baseline",
        "paper §3.3 semi-reliability via gossip/REQUEST/FIND_MISSING; crash next to a thin chain",
    );
    let lengths: &[usize] = if opts.quick { &[2, 3] } else { &[2, 3, 4, 5] };
    let crash_positions: &[usize] = if opts.quick { &[0, 1] } else { &[0, 1, 2] };
    let workload = Workload {
        senders: vec![NodeId(0)],
        count: if opts.quick { 1 } else { 3 },
        payload_bytes: 256,
        start: SimDuration::from_secs(5),
        interval: SimDuration::from_millis(1424),
        drain: SimDuration::from_secs(18),
    };
    let corpus = parse_case(THIN_CHAIN_CASE).expect("corpus reproducer parses");

    let mut combos = Vec::new();
    let mut points: Vec<SweepPoint> = Vec::new();
    for &arm in &[Arm::Off, Arm::On, Arm::Flood] {
        for &len in lengths {
            for &pos in crash_positions {
                if pos > len {
                    continue;
                }
                combos.push((arm, Some((len, pos))));
                let mut config = chain_scenario(len, pos);
                arm.apply(&mut config);
                points.push(
                    SweepPoint::new(
                        format!("{}/len={len}/pos={pos}", arm.label()),
                        vec![
                            ("arm".to_owned(), arm.label().to_owned()),
                            ("chain_len".to_owned(), len.to_string()),
                            ("crash_pos".to_owned(), pos.to_string()),
                        ],
                        config,
                        workload.clone(),
                    )
                    .with_run(Arc::new(run_arm)),
                );
            }
        }
        // The corpus reproducer is seed-pinned: the stranding needs this
        // exact topology and phase, so the runner's replication seeds are
        // deliberately ignored and every replicate re-runs the pinned case.
        combos.push((arm, None));
        let pinned = corpus.clone();
        points.push(
            SweepPoint::new(
                format!("{}/corpus", arm.label()),
                vec![
                    ("arm".to_owned(), arm.label().to_owned()),
                    ("case".to_owned(), "crash-thin-chain".to_owned()),
                ],
                corpus.scenario.clone(),
                corpus.workload.clone(),
            )
            .with_run(Arc::new(move |_scenario, _w: &Workload| {
                let mut scenario = pinned.scenario.clone();
                arm.apply(&mut scenario);
                run_arm(&scenario, &pinned.workload)
            })),
        );
    }

    let results = run_sweep(&runner(&opts, "r12_recovery"), &points);
    print_table(&opts, &combos, &results);
}

#[allow(clippy::type_complexity)]
fn print_table(
    _opts: &ExpOpts,
    combos: &[(Arm, Option<(usize, usize)>)],
    results: &[byzcast_harness::PointResult],
) {
    let mut table = Table::new([
        "arm",
        "case",
        "delivery",
        "min-delivery",
        "frames",
        "semi-violations",
        "widened",
        "reelections",
    ]);
    for (&(arm, combo), result) in combos.iter().zip(results) {
        let agg = &result.aggregate;
        let case = match combo {
            Some((len, 0)) => format!("chain {len}, crash bridge"),
            Some((len, pos)) => format!("chain {len}, crash hop {pos}"),
            None => "corpus thin-chain".to_owned(),
        };
        table.add_row([
            arm.label().to_owned(),
            case,
            fnum(agg.delivery_ratio),
            fnum(agg.min_delivery_ratio),
            agg.frames_sent.to_string(),
            format!("{:.1}", result.extra_mean("semi_violations").unwrap_or(0.0)),
            format!(
                "{:.1}",
                result.extra_mean("requests_widened").unwrap_or(0.0)
            ),
            format!("{:.1}", result.extra_mean("reelections").unwrap_or(0.0)),
        ]);
    }
    print!("{table}");
}
