//! Experiment R9 (extension) — timeout vs. stability-based purging.
//!
//! The paper chose timeout purging "due to its simplicity" and deferred the
//! "stability detection mechanism" (§3.2.2). This ablation implements both
//! and compares buffer high-water marks and delivery: stability purging
//! should shrink buffers well below the §3.5 timeout bound without hurting
//! recovery.

use byzcast_bench::{banner, default_scenario, default_workload, opts, runner};
use byzcast_core::PurgePolicy;
use byzcast_harness::{report::fnum, run_sweep, SweepPoint, Table};

fn main() {
    let opts = opts();
    banner(
        "R9",
        "timeout vs stability-based purging (extension; n ∈ {60, 100})",
        "paper §3.2.2: 'purged either after a timeout, or by using a stability detection mechanism'",
    );
    let workload = default_workload(&opts);

    let mut metas = Vec::new();
    let mut points = Vec::new();
    for n in [60usize, 100] {
        for policy in [PurgePolicy::Timeout, PurgePolicy::Stability] {
            let mut config = default_scenario(n, 0);
            config.byzcast.purge_policy = policy;
            metas.push((n, policy));
            points.push(SweepPoint::new(
                format!("n={n}/{policy:?}"),
                vec![
                    ("n".to_owned(), n.to_string()),
                    ("purge_policy".to_owned(), format!("{policy:?}")),
                ],
                config,
                workload.clone(),
            ));
        }
    }

    let results = run_sweep(&runner(&opts, "r9_purge"), &points);
    let mut table = Table::new([
        "n",
        "policy",
        "buffer high-water",
        "delivery",
        "recovered",
        "gossip frames",
    ]);
    for (&(n, policy), result) in metas.iter().zip(&results) {
        let agg = &result.aggregate;
        let gossip_frames = agg.frames_sent - agg.data_frames - agg.requests - agg.finds;
        table.add_row([
            n.to_string(),
            format!("{policy:?}"),
            agg.store_high_water.to_string(),
            fnum(agg.delivery_ratio),
            agg.recovered.to_string(),
            gossip_frames.to_string(),
        ]);
    }
    print!("{table}");
}
