//! Experiment R9 (extension) — timeout vs. stability-based purging.
//!
//! The paper chose timeout purging "due to its simplicity" and deferred the
//! "stability detection mechanism" (§3.2.2). This ablation implements both
//! and compares buffer high-water marks and delivery: stability purging
//! should shrink buffers well below the §3.5 timeout bound without hurting
//! recovery.

use byzcast_bench::{banner, default_scenario, default_workload, opts, seeds};
use byzcast_core::PurgePolicy;
use byzcast_harness::{aggregate, replicate, report::fnum, Table};

fn main() {
    let opts = opts();
    banner(
        "R9",
        "timeout vs stability-based purging (extension; n ∈ {60, 100})",
        "paper §3.2.2: 'purged either after a timeout, or by using a stability detection mechanism'",
    );
    let workload = default_workload(opts);
    let mut table = Table::new([
        "n",
        "policy",
        "buffer high-water",
        "delivery",
        "recovered",
        "gossip frames",
    ]);
    for n in [60usize, 100] {
        for policy in [PurgePolicy::Timeout, PurgePolicy::Stability] {
            let mut config = default_scenario(n, 0);
            config.byzcast.purge_policy = policy;
            let agg = aggregate(&replicate(&config, &workload, &seeds(opts)));
            let gossip_frames = agg.frames_sent - agg.data_frames - agg.requests - agg.finds;
            table.add_row([
                n.to_string(),
                format!("{policy:?}"),
                agg.store_high_water.to_string(),
                fnum(agg.delivery_ratio),
                agg.recovered.to_string(),
                gossip_frames.to_string(),
            ]);
        }
    }
    print!("{table}");
}
