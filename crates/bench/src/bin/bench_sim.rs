//! PR-2 acceptance benchmark: optimized vs. pre-PR engine, plus crypto
//! micro-numbers, written to `BENCH_sim.json`.
//!
//! The macro point is the R5 overlay scenario (byzcast, static uniform
//! placement, the standard quick workload) at an n ≥ 200 sweep point with
//! the field scaled to hold R5's density constant (80 nodes per
//! 1000 m × 1000 m), so the comparison stresses per-event bookkeeping
//! rather than congestion collapse. "Naive" disables the spatial index and
//! the signature cache; the two runs are asserted to deliver identically
//! before any time is reported.
//!
//! Flags-off still benefits from this PR's unconditional wins (HMAC pad
//! midstates, fixed-base tables, overlay data-structure changes), so the
//! honest against-the-pre-PR-engine number is measured from a `git worktree`
//! of the pre-PR commit running the identical scenario (see
//! `README.md` § Benchmarking) and passed in via `--pre-pr-ms`; the JSON
//! records both comparisons.
//!
//! Usage: `bench_sim [--quick] [--n N] [--pre-pr-ms MS] [--out PATH]`
//! (default `BENCH_sim.json`). `--quick` shrinks the point for CI smoke
//! runs; the committed JSON comes from a full run.

use std::time::Instant;

use byzcast_bench::{default_workload, ExpOpts};
use byzcast_crypto::schnorr::{pow_mod, FixedBaseTable};
use byzcast_crypto::{CachingVerifier, KeyRegistry, SchnorrScheme, Signer, SignerId, Verifier};
use byzcast_harness::record::JsonObject;
use byzcast_harness::{RunSummary, ScenarioConfig, Workload};
use byzcast_sim::{Field, SimConfig};

/// The toy Schnorr group's generator (mirrors `schnorr.rs`).
const G: u64 = 157_608_736_213_706_629;
const P: u64 = 2_305_843_201_413_480_359;

/// R5's density (80 nodes per 1000 m × 1000 m), preserved at any n.
fn density_preserving_field(n: usize) -> Field {
    let side = 1000.0 * (n as f64 / 80.0).sqrt();
    Field::new(side, side)
}

fn scenario(n: usize, spatial: bool, cache: bool) -> ScenarioConfig {
    let mut config = ScenarioConfig {
        seed: 1,
        n,
        sim: SimConfig {
            field: density_preserving_field(n),
            spatial_index: spatial,
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    config.byzcast.sig_cache_capacity = if cache { 512 } else { 0 };
    config
}

/// Runs the point once, returning (wall ms, summary).
fn timed_run(config: &ScenarioConfig, workload: &Workload) -> (f64, RunSummary) {
    let start = Instant::now();
    let summary = config.run(workload);
    (start.elapsed().as_secs_f64() * 1e3, summary)
}

/// One warmup run, then `repeats` timed runs; returns the median wall time
/// and the (identical across runs) summary.
fn median_run(config: &ScenarioConfig, workload: &Workload, repeats: usize) -> (f64, RunSummary) {
    timed_run(config, workload);
    let mut times = Vec::with_capacity(repeats);
    let mut summary = None;
    for _ in 0..repeats {
        let (ms, s) = timed_run(config, workload);
        times.push(ms);
        summary = Some(s);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (times[times.len() / 2], summary.expect("repeats >= 1"))
}

/// Mean ns per call of `f` over enough iterations to dwarf timer noise.
fn ns_per_call(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mut quick = false;
    let mut matrix = false;
    let mut only: Option<String> = None;
    let mut pre_pr_ms: Option<f64> = None;
    let mut n_override: Option<usize> = None;
    let mut out = String::from("BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--matrix" => matrix = true,
            "--only" => only = Some(args.next().expect("--only needs a value")),
            "--n" => {
                n_override = Some(
                    args.next()
                        .expect("--n needs a value")
                        .parse()
                        .expect("--n must be an integer"),
                )
            }
            "--pre-pr-ms" => {
                pre_pr_ms = Some(
                    args.next()
                        .expect("--pre-pr-ms needs a value")
                        .parse()
                        .expect("--pre-pr-ms must be a number"),
                )
            }
            "--out" => out = args.next().expect("--out needs a value"),
            other => panic!("unknown argument: {other}"),
        }
    }

    if matrix {
        // Diagnostic: attribute the speedup to each layer separately.
        let n = n_override.unwrap_or(if quick { 120 } else { 320 });
        let w = default_workload(&ExpOpts {
            quick: true,
            ..ExpOpts::default()
        });
        for (label, spatial, cache) in [
            ("naive", false, false),
            ("spatial", true, false),
            ("cache", false, true),
            ("both", true, true),
        ] {
            if only.as_deref().is_some_and(|o| o != label) {
                continue;
            }
            let repeats = if only.is_some() { 5 } else { 1 };
            for _ in 1..repeats {
                timed_run(&scenario(n, spatial, cache), &w);
            }
            let (ms, s) = timed_run(&scenario(n, spatial, cache), &w);
            eprintln!(
                "{label:<16} {ms:9.0} ms  (delivery {:.3}, frames {})",
                s.delivery_ratio, s.frames_sent
            );
        }
        return;
    }

    // --- Macro benchmark: full byzcast run, optimized vs pre-PR engine ---
    let n = n_override.unwrap_or(if quick { 120 } else { 320 });
    let workload = default_workload(&ExpOpts {
        quick: true, // 40-message stream; the point is engine cost, not load
        ..ExpOpts::default()
    });
    let field = density_preserving_field(n);
    eprintln!(
        "engine point: byzcast n={n} on {:.0} m x {:.0} m (R5 density), {} msgs",
        field.width, field.height, workload.count
    );

    let repeats = if quick { 3 } else { 5 };
    let (optimized_ms, optimized) = median_run(&scenario(n, true, true), &workload, repeats);
    eprintln!(
        "  optimized: {optimized_ms:9.0} ms  (delivery {:.3})",
        optimized.delivery_ratio
    );
    let (naive_ms, naive) = median_run(&scenario(n, false, false), &workload, repeats);
    eprintln!(
        "  naive:     {naive_ms:9.0} ms  (delivery {:.3})",
        naive.delivery_ratio
    );

    // The speedup is only meaningful if the two engines agree. Counters
    // differ in the cache's own hit/miss observability; every simulation
    // quantity must match (the differential test in tests/perf_equivalence.rs
    // checks full byte-identity).
    assert_eq!(
        naive.delivery_ratio, optimized.delivery_ratio,
        "engines diverged"
    );
    assert_eq!(naive.frames_sent, optimized.frames_sent, "engines diverged");
    assert_eq!(naive.collisions, optimized.collisions, "engines diverged");
    let speedup = naive_ms / optimized_ms;
    eprintln!("  speedup:   {speedup:9.2}x (vs flags-off in this tree)");
    if let Some(pre) = pre_pr_ms {
        eprintln!(
            "  vs pre-PR: {:9.2}x ({pre:.0} ms baseline)",
            pre / optimized_ms
        );
    }

    let cache = optimized
        .counters
        .as_ref()
        .map(|c| (c.sig_cache_hits, c.sig_cache_misses));

    // --- Micro benchmarks: fixed-base exponentiation and the verify cache ---
    let table = FixedBaseTable::new(G);
    let exp: u64 = 0x7FFF_FFF1;
    let pow_mod_ns = ns_per_call(200_000, || {
        std::hint::black_box(pow_mod(G, std::hint::black_box(exp), P));
    });
    let table_ns = ns_per_call(200_000, || {
        std::hint::black_box(table.pow(std::hint::black_box(exp)));
    });

    let keys: KeyRegistry<SchnorrScheme> = KeyRegistry::generate(1, 4);
    let signer = keys.signer(SignerId(0));
    let data = vec![0x42u8; 128];
    let sig = signer.sign(&data);
    let bare = keys.verifier();
    let cached = CachingVerifier::new(keys.verifier(), 512);
    assert!(cached.verify(SignerId(0), &data, &sig));
    let verify_ns = ns_per_call(100_000, || {
        std::hint::black_box(bare.verify(SignerId(0), std::hint::black_box(&data), &sig));
    });
    let hit_ns = ns_per_call(100_000, || {
        std::hint::black_box(cached.verify(SignerId(0), std::hint::black_box(&data), &sig));
    });

    // --- Report ---
    let mut engine = JsonObject::new();
    engine
        .str(
            "scenario",
            "r5-density byzcast, static placement, quick workload",
        )
        .u64("n", n as u64)
        .f64("field_m", field.width)
        .u64("messages", workload.count as u64)
        .u64("collisions", optimized.collisions)
        .f64("naive_ms", naive_ms)
        .f64("optimized_ms", optimized_ms)
        .f64("speedup", speedup)
        .f64("delivery_ratio", optimized.delivery_ratio)
        .u64("frames_sent", optimized.frames_sent);
    if let Some(pre) = pre_pr_ms {
        engine
            .f64("pre_pr_ms", pre)
            .f64("speedup_vs_pre_pr", pre / optimized_ms);
    }
    if let Some((hits, misses)) = cache {
        engine
            .u64("sig_cache_hits", hits)
            .u64("sig_cache_misses", misses);
    }

    let mut schnorr = JsonObject::new();
    schnorr
        .f64("pow_mod_ns", pow_mod_ns)
        .f64("fixed_base_table_ns", table_ns)
        .f64("speedup", pow_mod_ns / table_ns)
        .f64("verify_uncached_ns", verify_ns)
        .f64("verify_cache_hit_ns", hit_ns)
        .f64("cache_speedup", verify_ns / hit_ns);

    let mut o = JsonObject::new();
    o.str("bench", "bench_sim")
        .bool("quick", quick)
        .raw("engine", &engine.finish())
        .raw("schnorr", &schnorr.finish());
    let json = o.finish();
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_sim.json");
    println!("{json}");
    eprintln!("wrote {out}");
}
