//! Experiment R2 — delivery ratio vs. network size, failure-free.
//!
//! Semi-reliable broadcast "ensures that most messages will be received by
//! most of their intended recipients" (§1); this experiment measures how
//! close each protocol gets on the shared topology sweep, including the
//! worst per-message ratio.

use byzcast_bench::{banner, default_scenario, default_workload, n_sweep, opts, runner};
use byzcast_harness::{report::fnum, run_sweep, ProtocolChoice, SweepPoint, Table};
use byzcast_overlay::OverlayKind;

fn main() {
    let opts = opts();
    banner(
        "R2",
        "delivery ratio vs n (failure-free)",
        "paper §2.3 eventual dissemination; §4 failure-free runs",
    );
    let workload = default_workload(&opts);
    let protocols: Vec<(ProtocolChoice, OverlayKind)> = vec![
        (ProtocolChoice::Byzcast, OverlayKind::Cds),
        (ProtocolChoice::Byzcast, OverlayKind::MisBridges),
        (ProtocolChoice::Flooding, OverlayKind::Cds),
        (ProtocolChoice::MultiOverlay { f: 1 }, OverlayKind::Cds),
    ];

    let mut ns = Vec::new();
    let mut points = Vec::new();
    for n in n_sweep(&opts) {
        let base = default_scenario(n, 0);
        for (protocol, overlay) in &protocols {
            let mut config = base.clone();
            config.protocol = protocol.clone();
            config.byzcast.overlay = *overlay;
            let label = config.protocol_label();
            ns.push(n);
            points.push(SweepPoint::new(
                format!("n={n}/{label}"),
                vec![
                    ("n".to_owned(), n.to_string()),
                    ("protocol".to_owned(), label),
                ],
                config,
                workload.clone(),
            ));
        }
    }

    let results = run_sweep(&runner(&opts, "r2_delivery"), &points);
    let mut table = Table::new(["n", "protocol", "delivery", "min-delivery", "collisions"]);
    for (n, result) in ns.iter().zip(&results) {
        let agg = &result.aggregate;
        table.add_row([
            n.to_string(),
            agg.protocol.clone(),
            fnum(agg.delivery_ratio),
            fnum(agg.min_delivery_ratio),
            agg.collisions.to_string(),
        ]);
    }
    print!("{table}");
}
