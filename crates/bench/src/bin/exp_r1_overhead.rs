//! Experiment R1 — message overhead vs. network size, failure-free.
//!
//! Regenerates the paper's headline comparison: "The use of an overlay
//! results in a significant reduction in the number of messages" versus
//! flooding, and versus the f+1-overlays approach whose "price … is that
//! every message has to be sent f + 1 times even if in practice none of the
//! devices suffered from a Byzantine fault" (§1).

use byzcast_bench::{banner, default_scenario, default_workload, n_sweep, opts, runner};
use byzcast_harness::{report::fnum, run_sweep, ProtocolChoice, SweepPoint, Table};
use byzcast_overlay::OverlayKind;

fn main() {
    let opts = opts();
    banner(
        "R1",
        "message overhead vs n (failure-free)",
        "paper §1 (overlay vs flooding vs f+1 overlays), §4 comparison set",
    );
    let workload = default_workload(&opts);
    let protocols: Vec<(ProtocolChoice, OverlayKind, &str)> = vec![
        (ProtocolChoice::Byzcast, OverlayKind::Cds, "byzcast/cds"),
        (
            ProtocolChoice::Byzcast,
            OverlayKind::MisBridges,
            "byzcast/mis+b",
        ),
        (ProtocolChoice::Flooding, OverlayKind::Cds, "flooding"),
        (
            ProtocolChoice::MultiOverlay { f: 1 },
            OverlayKind::Cds,
            "2-overlays",
        ),
        (
            ProtocolChoice::MultiOverlay { f: 2 },
            OverlayKind::Cds,
            "3-overlays",
        ),
    ];

    let mut ns = Vec::new();
    let mut points = Vec::new();
    for n in n_sweep(&opts) {
        let base = default_scenario(n, 0);
        for (protocol, overlay, label) in &protocols {
            let mut config = base.clone();
            config.protocol = protocol.clone();
            config.byzcast.overlay = *overlay;
            ns.push(n);
            points.push(SweepPoint::new(
                format!("n={n}/{label}"),
                vec![
                    ("n".to_owned(), n.to_string()),
                    ("protocol".to_owned(), (*label).to_owned()),
                ],
                config,
                workload.clone(),
            ));
        }
    }

    let results = run_sweep(&runner(&opts, "r1_overhead"), &points);
    let mut table = Table::new([
        "n",
        "protocol",
        "frames",
        "kB",
        "data",
        "control",
        "frames/delivery",
        "delivery",
    ]);
    for (n, result) in ns.iter().zip(&results) {
        let agg = &result.aggregate;
        table.add_row([
            n.to_string(),
            agg.protocol.clone(),
            agg.frames_sent.to_string(),
            fnum(agg.bytes_sent as f64 / 1024.0),
            agg.data_frames.to_string(),
            agg.control_frames.to_string(),
            fnum(agg.frames_per_delivery),
            fnum(agg.delivery_ratio),
        ]);
    }
    print!("{table}");
}
