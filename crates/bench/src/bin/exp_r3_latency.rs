//! Experiment R3 — dissemination latency vs. network size, failure-free.
//!
//! Overlay dissemination is the fast path ("dissemination along overlay
//! nodes is fast, since it need not wait for the periodic gossip mechanism",
//! §3.4.1); latency tails reveal how often the gossip/recovery slow path is
//! exercised.

use byzcast_bench::{banner, default_scenario, default_workload, n_sweep, opts, seeds};
use byzcast_harness::{aggregate, replicate, report::fnum, ProtocolChoice, Table};
use byzcast_overlay::OverlayKind;

fn main() {
    let opts = opts();
    banner(
        "R3",
        "accept latency vs n (failure-free)",
        "paper §3.4.1 fast dissemination; §3.5 dissemination-time analysis",
    );
    let workload = default_workload(opts);
    let mut table = Table::new(["n", "protocol", "mean (s)", "p99 (s)", "max (s)"]);
    for n in n_sweep(opts) {
        let base = default_scenario(n, 0);
        let protocols: Vec<(ProtocolChoice, OverlayKind)> = vec![
            (ProtocolChoice::Byzcast, OverlayKind::Cds),
            (ProtocolChoice::Byzcast, OverlayKind::MisBridges),
            (ProtocolChoice::Flooding, OverlayKind::Cds),
            (ProtocolChoice::MultiOverlay { f: 1 }, OverlayKind::Cds),
        ];
        for (protocol, overlay) in protocols {
            let mut config = base.clone();
            config.protocol = protocol;
            config.byzcast.overlay = overlay;
            let agg = aggregate(&replicate(&config, &workload, &seeds(opts)));
            table.add_row([
                n.to_string(),
                agg.protocol.clone(),
                fnum(agg.mean_latency_s),
                fnum(agg.p99_latency_s),
                fnum(agg.max_latency_s),
            ]);
        }
    }
    print!("{table}");
}
