//! Experiment R3 — dissemination latency vs. network size, failure-free.
//!
//! Overlay dissemination is the fast path ("dissemination along overlay
//! nodes is fast, since it need not wait for the periodic gossip mechanism",
//! §3.4.1); latency tails reveal how often the gossip/recovery slow path is
//! exercised. Percentiles are pooled over every delivery of every
//! replication (see `byzcast_harness::sweep::aggregate`).

use byzcast_bench::{banner, default_scenario, default_workload, n_sweep, opts, runner};
use byzcast_harness::{report::fnum, run_sweep, ProtocolChoice, SweepPoint, Table};
use byzcast_overlay::OverlayKind;

fn main() {
    let opts = opts();
    banner(
        "R3",
        "accept latency vs n (failure-free)",
        "paper §3.4.1 fast dissemination; §3.5 dissemination-time analysis",
    );
    let workload = default_workload(&opts);
    let protocols: Vec<(ProtocolChoice, OverlayKind)> = vec![
        (ProtocolChoice::Byzcast, OverlayKind::Cds),
        (ProtocolChoice::Byzcast, OverlayKind::MisBridges),
        (ProtocolChoice::Flooding, OverlayKind::Cds),
        (ProtocolChoice::MultiOverlay { f: 1 }, OverlayKind::Cds),
    ];

    let mut ns = Vec::new();
    let mut points = Vec::new();
    for n in n_sweep(&opts) {
        let base = default_scenario(n, 0);
        for (protocol, overlay) in &protocols {
            let mut config = base.clone();
            config.protocol = protocol.clone();
            config.byzcast.overlay = *overlay;
            let label = config.protocol_label();
            ns.push(n);
            points.push(SweepPoint::new(
                format!("n={n}/{label}"),
                vec![
                    ("n".to_owned(), n.to_string()),
                    ("protocol".to_owned(), label),
                ],
                config,
                workload.clone(),
            ));
        }
    }

    let results = run_sweep(&runner(&opts, "r3_latency"), &points);
    let mut table = Table::new(["n", "protocol", "mean (s)", "p99 (s)", "max (s)"]);
    for (n, result) in ns.iter().zip(&results) {
        let agg = &result.aggregate;
        table.add_row([
            n.to_string(),
            agg.protocol.clone(),
            fnum(agg.mean_latency_s),
            fnum(agg.p99_latency_s),
            fnum(agg.max_latency_s),
        ]);
    }
    print!("{table}");
}
