//! Experiment R5 — overlay quality: size and correct-coverage vs. n.
//!
//! §3.3's goal: "the overlay should consist of as few nodes as possible"
//! while "eventually between every pair of correct nodes p and q there will
//! be a path consisting of overlay nodes" — measured here for CDS vs MIS+B,
//! failure-free and with mute claimants.

use byzcast_adversary::MutePolicy;
use byzcast_bench::{banner, default_scenario, default_workload, n_sweep, opts, seeds};
use byzcast_harness::{byz_view, report::fnum, AdversaryKind, ScenarioConfig, Table, Workload};
use byzcast_overlay::analysis::{dominates, induced_connected};
use byzcast_overlay::OverlayKind;
use byzcast_sim::{NodeId, SimTime};

struct OverlayQuality {
    size: usize,
    /// Correct nodes neither in the overlay nor adjacent (nominal disk) to a
    /// correct overlay member. Non-zero values are typically fringe nodes
    /// whose marginal links sit in the fading band — exactly the nodes the
    /// gossip/recovery path exists for.
    uncovered: usize,
    connected: bool,
}

/// Runs one scenario and measures the final overlay against the ground-truth
/// adjacency, restricted to correct nodes.
fn measure(config: &ScenarioConfig, workload: &Workload) -> OverlayQuality {
    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());
    let adv = config.adversary_set();
    let n = config.n;
    let correct: Vec<bool> = (0..n as u32).map(|i| !adv.contains(&NodeId(i))).collect();
    let mut correct_overlay = vec![false; n];
    let mut size = 0usize;
    for i in 0..n as u32 {
        let id = NodeId(i);
        if let Some(node) = byz_view(&sim, id) {
            if node.is_overlay() {
                size += 1;
                if correct[id.index()] {
                    correct_overlay[id.index()] = true;
                }
            }
        } else if adv.contains(&id) {
            size += 1; // standalone adversaries claim membership
        }
    }
    let adj = config.adjacency(sim.positions());
    let uncovered = (0..n)
        .filter(|&i| correct[i])
        .filter(|&i| !correct_overlay[i] && !adj[i].iter().any(|v| correct_overlay[v.index()]))
        .count();
    debug_assert_eq!(uncovered == 0, dominates(&adj, &correct_overlay, &correct));
    OverlayQuality {
        size,
        uncovered,
        connected: induced_connected(&adj, &correct_overlay),
    }
}

fn main() {
    let opts = opts();
    banner(
        "R5",
        "overlay size, domination and connectivity vs n",
        "paper §3.3 overlay maintenance goals; Lemmas 3.5/3.9",
    );
    let workload = default_workload(opts);
    let mut table = Table::new([
        "n",
        "overlay",
        "mutes",
        "overlay size",
        "size/n",
        "uncovered",
        "connected",
    ]);
    for n in n_sweep(opts) {
        for overlay in [OverlayKind::Cds, OverlayKind::MisBridges] {
            for mutes in [0usize, n / 10] {
                let mut config = default_scenario(n, 1);
                config.byzcast.overlay = overlay;
                if mutes > 0 {
                    config.adversary = Some(AdversaryKind::Mute(MutePolicy::DropData));
                    config.adversary_count = mutes;
                }
                let q = measure(&config, &workload);
                table.add_row([
                    n.to_string(),
                    overlay.name().to_owned(),
                    mutes.to_string(),
                    q.size.to_string(),
                    fnum(q.size as f64 / n as f64),
                    q.uncovered.to_string(),
                    q.connected.to_string(),
                ]);
            }
        }
    }
    let _ = seeds(opts);
    print!("{table}");
}
