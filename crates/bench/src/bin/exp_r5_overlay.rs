//! Experiment R5 — overlay quality: size and correct-coverage vs. n.
//!
//! §3.3's goal: "the overlay should consist of as few nodes as possible"
//! while "eventually between every pair of correct nodes p and q there will
//! be a path consisting of overlay nodes" — measured here for CDS vs MIS+B,
//! failure-free and with mute claimants, replicated over seeds via a custom
//! runner closure that inspects per-node state against the ground-truth
//! adjacency.

use std::sync::Arc;

use byzcast_adversary::MutePolicy;
use byzcast_bench::{banner, default_scenario, default_workload, n_sweep, opts, runner};
use byzcast_harness::{
    byz_view, report::fnum, run_sweep, AdversaryKind, RunFn, RunOutcome, ScenarioConfig,
    SweepPoint, Table, Workload,
};
use byzcast_overlay::analysis::{dominates, induced_connected};
use byzcast_overlay::OverlayKind;
use byzcast_sim::{NodeId, SimTime};

/// Runs one scenario and measures the final overlay against the ground-truth
/// adjacency, restricted to correct nodes. Extras:
///
/// * `overlay_size` — members at the end of the run (mute claimants count);
/// * `uncovered` — correct nodes neither in the overlay nor adjacent
///   (nominal disk) to a correct overlay member. Non-zero values are
///   typically fringe nodes whose marginal links sit in the fading band —
///   exactly the nodes the gossip/recovery path exists for;
/// * `connected` — 1.0 iff the correct overlay members induce a connected
///   subgraph.
fn measure(config: &ScenarioConfig, workload: &Workload) -> RunOutcome {
    let mut sim = config.build_wire_sim();
    for (at, sender, payload_id, size) in workload.schedule() {
        sim.schedule_app_broadcast(at, sender, payload_id, size);
    }
    sim.run_until(SimTime::ZERO + workload.horizon());
    let adv = config.adversary_set();
    let n = config.n;
    let correct: Vec<bool> = (0..n as u32).map(|i| !adv.contains(&NodeId(i))).collect();
    let mut correct_overlay = vec![false; n];
    let mut size = 0usize;
    for i in 0..n as u32 {
        let id = NodeId(i);
        if let Some(node) = byz_view(&sim, id) {
            if node.is_overlay() {
                size += 1;
                if correct[id.index()] {
                    correct_overlay[id.index()] = true;
                }
            }
        } else if adv.contains(&id) {
            size += 1; // standalone adversaries claim membership
        }
    }
    let adj = config.adjacency(sim.positions());
    let uncovered = (0..n)
        .filter(|&i| correct[i])
        .filter(|&i| !correct_overlay[i] && !adj[i].iter().any(|v| correct_overlay[v.index()]))
        .count();
    debug_assert_eq!(uncovered == 0, dominates(&adj, &correct_overlay, &correct));
    let connected = induced_connected(&adj, &correct_overlay);
    RunOutcome {
        summary: config.summarize_wire(&sim),
        extras: vec![
            ("overlay_size", size as f64),
            ("uncovered", uncovered as f64),
            ("connected", if connected { 1.0 } else { 0.0 }),
        ],
    }
}

fn main() {
    let opts = opts();
    banner(
        "R5",
        "overlay size, domination and connectivity vs n",
        "paper §3.3 overlay maintenance goals; Lemmas 3.5/3.9",
    );
    let workload = default_workload(&opts);
    let measure: Arc<RunFn> = Arc::new(measure);

    let mut metas = Vec::new();
    let mut points = Vec::new();
    for n in n_sweep(&opts) {
        for overlay in [OverlayKind::Cds, OverlayKind::MisBridges] {
            for mutes in [0usize, n / 10] {
                let mut config = default_scenario(n, 1);
                config.byzcast.overlay = overlay;
                if mutes > 0 {
                    config.adversary = Some(AdversaryKind::Mute(MutePolicy::DropData));
                    config.adversary_count = mutes;
                }
                metas.push((n, overlay, mutes));
                points.push(
                    SweepPoint::new(
                        format!("n={n}/{}/mutes={mutes}", overlay.name()),
                        vec![
                            ("n".to_owned(), n.to_string()),
                            ("overlay".to_owned(), overlay.name().to_owned()),
                            ("mutes".to_owned(), mutes.to_string()),
                        ],
                        config,
                        workload.clone(),
                    )
                    .with_run(Arc::clone(&measure)),
                );
            }
        }
    }

    let results = run_sweep(&runner(&opts, "r5_overlay"), &points);
    let mut table = Table::new([
        "n",
        "overlay",
        "mutes",
        "overlay size",
        "size/n",
        "uncovered",
        "connected",
    ]);
    for (&(n, overlay, mutes), result) in metas.iter().zip(&results) {
        let size = result.extra_mean("overlay_size").unwrap_or(0.0);
        let uncovered = result.extra_mean("uncovered").unwrap_or(0.0);
        // "Connected" must hold in every replication, not on average.
        let connected = result.extra_mean("connected") == Some(1.0);
        table.add_row([
            n.to_string(),
            overlay.name().to_owned(),
            mutes.to_string(),
            fnum(size),
            fnum(size / n as f64),
            fnum(uncovered),
            connected.to_string(),
        ]);
    }
    print!("{table}");
}
