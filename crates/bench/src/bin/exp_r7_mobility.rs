//! Experiment R7 — mobility: delivery and overhead vs. node speed.
//!
//! The system model is mobile ("due to mobility, the physical structure of
//! the network is constantly evolving", §1); this experiment sweeps random-
//! waypoint speed and compares the overlay protocol (whose neighbour tables
//! and roles must track the churn) against flooding (which is oblivious to
//! it).

use byzcast_bench::{banner, default_workload, opts, seeds};
use byzcast_harness::{
    aggregate, replicate, report::fnum, MobilityChoice, ProtocolChoice, ScenarioConfig, Table,
};
use byzcast_sim::{Field, SimConfig, SimDuration};

fn main() {
    let opts = opts();
    banner(
        "R7",
        "random-waypoint mobility sweep (n = 80, 800 m field)",
        "paper §2 system model (mobility); §3.5 mobile dissemination bound",
    );
    let workload = default_workload(opts);
    let speeds: &[(f64, f64)] = if opts.quick {
        &[(0.0, 0.0), (5.0, 10.0)]
    } else {
        &[
            (0.0, 0.0),
            (1.0, 3.0),
            (3.0, 8.0),
            (5.0, 10.0),
            (10.0, 20.0),
        ]
    };
    let mut table = Table::new([
        "speed (m/s)",
        "protocol",
        "delivery",
        "min-delivery",
        "frames",
        "requests",
        "p99 (s)",
    ]);
    for &(lo, hi) in speeds {
        for protocol in [ProtocolChoice::Byzcast, ProtocolChoice::Flooding] {
            let mobility = if hi == 0.0 {
                MobilityChoice::Static
            } else {
                MobilityChoice::Waypoint {
                    min_mps: lo,
                    max_mps: hi,
                    pause: SimDuration::from_secs(2),
                }
            };
            let config = ScenarioConfig {
                seed: 0,
                n: 80,
                sim: SimConfig {
                    field: Field::new(800.0, 800.0),
                    ..SimConfig::default()
                },
                mobility,
                protocol: protocol.clone(),
                ..ScenarioConfig::default()
            };
            let agg = aggregate(&replicate(&config, &workload, &seeds(opts)));
            table.add_row([
                if hi == 0.0 {
                    "static".to_owned()
                } else {
                    format!("{lo}-{hi}")
                },
                agg.protocol.clone(),
                fnum(agg.delivery_ratio),
                fnum(agg.min_delivery_ratio),
                agg.frames_sent.to_string(),
                agg.requests.to_string(),
                fnum(agg.p99_latency_s),
            ]);
        }
    }
    print!("{table}");
}
