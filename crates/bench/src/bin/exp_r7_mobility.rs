//! Experiment R7 — mobility: delivery and overhead vs. node speed.
//!
//! The system model is mobile ("due to mobility, the physical structure of
//! the network is constantly evolving", §1); this experiment sweeps random-
//! waypoint speed and compares the overlay protocol (whose neighbour tables
//! and roles must track the churn) against flooding (which is oblivious to
//! it).

use byzcast_bench::{banner, default_workload, opts, runner};
use byzcast_harness::{
    report::fnum, run_sweep, MobilityChoice, ProtocolChoice, ScenarioConfig, SweepPoint, Table,
};
use byzcast_sim::{Field, SimConfig, SimDuration};

fn main() {
    let opts = opts();
    banner(
        "R7",
        "random-waypoint mobility sweep (n = 80, 800 m field)",
        "paper §2 system model (mobility); §3.5 mobile dissemination bound",
    );
    let workload = default_workload(&opts);
    let speeds: &[(f64, f64)] = if opts.quick {
        &[(0.0, 0.0), (5.0, 10.0)]
    } else {
        &[
            (0.0, 0.0),
            (1.0, 3.0),
            (3.0, 8.0),
            (5.0, 10.0),
            (10.0, 20.0),
        ]
    };

    let mut speed_labels = Vec::new();
    let mut points = Vec::new();
    for &(lo, hi) in speeds {
        for protocol in [ProtocolChoice::Byzcast, ProtocolChoice::Flooding] {
            let mobility = if hi == 0.0 {
                MobilityChoice::Static
            } else {
                MobilityChoice::Waypoint {
                    min_mps: lo,
                    max_mps: hi,
                    pause: SimDuration::from_secs(2),
                }
            };
            let config = ScenarioConfig {
                n: 80,
                sim: SimConfig {
                    field: Field::new(800.0, 800.0),
                    ..SimConfig::default()
                },
                mobility,
                protocol: protocol.clone(),
                ..ScenarioConfig::default()
            };
            let speed = if hi == 0.0 {
                "static".to_owned()
            } else {
                format!("{lo}-{hi}")
            };
            let label = config.protocol_label();
            speed_labels.push(speed.clone());
            points.push(SweepPoint::new(
                format!("speed={speed}/{label}"),
                vec![
                    ("speed_mps".to_owned(), speed),
                    ("protocol".to_owned(), label),
                ],
                config,
                workload.clone(),
            ));
        }
    }

    let results = run_sweep(&runner(&opts, "r7_mobility"), &points);
    let mut table = Table::new([
        "speed (m/s)",
        "protocol",
        "delivery",
        "min-delivery",
        "frames",
        "requests",
        "p99 (s)",
    ]);
    for (speed, result) in speed_labels.iter().zip(&results) {
        let agg = &result.aggregate;
        table.add_row([
            speed.clone(),
            agg.protocol.clone(),
            fnum(agg.delivery_ratio),
            fnum(agg.min_delivery_ratio),
            agg.frames_sent.to_string(),
            agg.requests.to_string(),
            fnum(agg.p99_latency_s),
        ]);
    }
    print!("{table}");
}
