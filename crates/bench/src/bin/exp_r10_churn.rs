//! Experiment R10 — delivery under crash/restart churn, invariant-checked.
//!
//! The paper's fault model (§2.1) spans more than mute nodes: "nodes may
//! crash and recover", and the recovery path (gossip digests + requests,
//! §3.3) exists precisely so restarted nodes catch up. This experiment
//! sweeps a churn rate λ (crashes per node per minute) on a static topology:
//! each point's fault plan crashes random non-sender nodes at random times
//! and restarts them 2–8 s later, with a 50/50 split between restarts that
//! retain their message store and restarts that lose it. Every run executes
//! under the standard invariant-oracle suite, so the table reports not just
//! delivery but whether any run violated validity, no-duplication,
//! semi-reliability (of the never-crashed nodes) or fd-accuracy.

use std::sync::Arc;

use byzcast_bench::{banner, opts, runner, ExpOpts};
use byzcast_harness::{
    check_run, report::fnum, run_sweep, standard_oracles, RunOutcome, ScenarioConfig, SweepPoint,
    Table, Workload,
};
use byzcast_sim::{FaultKind, FaultPlan, Field, NodeId, SimConfig, SimDuration, SimRng};

/// Builds the deterministic churn plan for one replication: Poisson-like
/// crash arrivals at rate `lambda` per node per minute over the window where
/// recovery can still complete before the horizon, restart 2–8 s later.
fn churn_plan(n: usize, senders: usize, lambda: f64, horizon_s: f64, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    if lambda <= 0.0 {
        return plan;
    }
    let mut rng = SimRng::new(seed ^ 0xC0_5EED ^ ((lambda * 1000.0) as u64));
    let window_start = 5.0;
    let window_end = (horizon_s - 12.0).max(window_start + 1.0);
    let window_min = (window_end - window_start) / 60.0;
    let candidates = n - senders;
    let total = (lambda * candidates as f64 * window_min).round() as usize;
    for _ in 0..total {
        let node = NodeId(senders as u32 + rng.gen_range_u64(candidates as u64) as u32);
        let at =
            SimDuration::from_secs_f64(window_start + rng.gen_f64() * (window_end - window_start));
        let downtime = SimDuration::from_secs_f64(2.0 + 6.0 * rng.gen_f64());
        let retain = rng.gen_f64() < 0.5;
        plan.push(
            at,
            FaultKind::Crash {
                node,
                retain_state: retain,
            },
        );
        plan.push(at + downtime, FaultKind::Restart { node });
    }
    plan
}

fn main() {
    let opts = opts();
    banner(
        "R10",
        "delivery and invariants under crash/restart churn (static, n = 60)",
        "paper §2.1 fault model: nodes may crash and recover; §3.3 recovery",
    );
    let n = if opts.quick { 40 } else { 60 };
    let lambdas: &[f64] = if opts.quick {
        &[0.0, 1.0, 4.0]
    } else {
        &[0.0, 0.5, 1.0, 2.0, 4.0]
    };
    let workload = Workload {
        senders: vec![NodeId(0), NodeId(1)],
        count: if opts.quick { 6 } else { 20 },
        payload_bytes: 256,
        start: SimDuration::from_secs(8),
        interval: SimDuration::from_secs(1),
        drain: SimDuration::from_secs(15),
    };
    let horizon_s = workload.horizon().as_secs_f64();
    let senders = workload.senders.len();

    let points: Vec<SweepPoint> = lambdas
        .iter()
        .map(|&lambda| {
            let config = ScenarioConfig {
                n,
                sim: SimConfig {
                    field: Field::new(800.0, 800.0),
                    ..SimConfig::default()
                },
                ..ScenarioConfig::default()
            };
            SweepPoint::new(
                format!("churn={lambda}"),
                vec![("churn_per_node_min".to_owned(), format!("{lambda}"))],
                config,
                workload.clone(),
            )
            .with_run(Arc::new(move |scenario: &ScenarioConfig, w: &Workload| {
                let mut s = scenario.clone();
                s.fault_plan = churn_plan(s.n, senders, lambda, horizon_s, s.seed);
                let checked = check_run(&s, w, &standard_oracles());
                let crashes = checked.summary.faults.as_ref().map_or(0, |f| f.crashes);
                let violations: u64 = checked.summary.oracle_outcomes.iter().map(|(_, c)| c).sum();
                RunOutcome {
                    summary: checked.summary,
                    extras: vec![
                        ("crashes", crashes as f64),
                        ("violations", violations as f64),
                    ],
                }
            }))
        })
        .collect();

    let results = run_sweep(&runner(&opts, "r10_churn"), &points);
    print_table(&opts, lambdas, &results);
}

fn print_table(_opts: &ExpOpts, lambdas: &[f64], results: &[byzcast_harness::PointResult]) {
    let mut table = Table::new([
        "churn/node/min",
        "crashes",
        "delivery",
        "min-delivery",
        "p99 (s)",
        "requests",
        "recovered",
        "violations",
    ]);
    for (lambda, result) in lambdas.iter().zip(results) {
        let agg = &result.aggregate;
        table.add_row([
            format!("{lambda}"),
            format!("{:.1}", result.extra_mean("crashes").unwrap_or(0.0)),
            fnum(agg.delivery_ratio),
            fnum(agg.min_delivery_ratio),
            fnum(agg.p99_latency_s),
            agg.requests.to_string(),
            agg.recovered.to_string(),
            format!("{:.1}", result.extra_mean("violations").unwrap_or(0.0)),
        ]);
    }
    print!("{table}");
}
