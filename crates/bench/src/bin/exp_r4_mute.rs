//! Experiment R4 — impact of mute Byzantine nodes.
//!
//! The paper's evaluation focuses on exactly this failure: "we investigate
//! the behavior of the protocol both in failure free runs and when some
//! nodes experience mute failures, as these failures seem to have the most
//! adverse impact on the protocol's performance" (§1). Mute adversaries here
//! are the worst case: they claim overlay dominator status (winning the
//! id-based election, since the highest ids are chosen) while silently
//! dropping all data-plane traffic; against the baselines the same nodes
//! simply go silent.

use byzcast_adversary::MutePolicy;
use byzcast_bench::{banner, default_scenario, default_workload, opts, runner};
use byzcast_harness::{report::fnum, run_sweep, AdversaryKind, ProtocolChoice, SweepPoint, Table};
use byzcast_overlay::OverlayKind;

fn main() {
    let opts = opts();
    banner(
        "R4",
        "delivery and recovery under mute overlay nodes (n = 100)",
        "paper §1/§4: runs where some nodes experience mute failures",
    );
    let n = 100;
    let workload = default_workload(&opts);
    let fractions: &[f64] = if opts.quick {
        &[0.0, 0.2]
    } else {
        &[0.0, 0.1, 0.2, 0.3, 0.4]
    };
    let protocols: Vec<(ProtocolChoice, OverlayKind)> = vec![
        (ProtocolChoice::Byzcast, OverlayKind::Cds),
        (ProtocolChoice::Byzcast, OverlayKind::MisBridges),
        (ProtocolChoice::Flooding, OverlayKind::Cds),
        (ProtocolChoice::MultiOverlay { f: 1 }, OverlayKind::Cds),
    ];

    let mut fracs = Vec::new();
    let mut points = Vec::new();
    for &frac in fractions {
        let count = (n as f64 * frac).round() as usize;
        let base = default_scenario(n, 0);
        for (protocol, overlay) in &protocols {
            let mut config = base.clone();
            config.protocol = protocol.clone();
            config.byzcast.overlay = *overlay;
            if count > 0 {
                config.adversary = Some(AdversaryKind::Mute(MutePolicy::DropData));
                config.adversary_count = count;
            }
            let label = config.protocol_label();
            fracs.push(frac);
            points.push(SweepPoint::new(
                format!("mute={:.0}%/{label}", frac * 100.0),
                vec![
                    ("mute_fraction".to_owned(), format!("{frac}")),
                    ("protocol".to_owned(), label),
                ],
                config,
                workload.clone(),
            ));
        }
    }

    let results = run_sweep(&runner(&opts, "r4_mute"), &points);
    let mut table = Table::new([
        "mute%",
        "protocol",
        "delivery",
        "min-delivery",
        "p99 (s)",
        "requests",
        "served",
        "suspicions(T/F)",
    ]);
    for (frac, result) in fracs.iter().zip(&results) {
        let agg = &result.aggregate;
        table.add_row([
            format!("{:.0}", frac * 100.0),
            agg.protocol.clone(),
            fnum(agg.delivery_ratio),
            fnum(agg.min_delivery_ratio),
            fnum(agg.p99_latency_s),
            agg.requests.to_string(),
            agg.recoveries_served.to_string(),
            format!("{}/{}", agg.true_suspicions, agg.false_suspicions),
        ]);
    }
    print!("{table}");
}
