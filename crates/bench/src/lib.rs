//! # byzcast-bench — experiment binaries and Criterion micro-benchmarks
//!
//! One `exp_*` binary per reconstructed experiment of the paper's evaluation
//! (see `EXPERIMENTS.md` at the repository root for the index and
//! provenance), plus Criterion benches for the protocol's hot paths.
//!
//! Every experiment binary runs on the shared parallel runner
//! ([`byzcast_harness::runner`]) and accepts:
//!
//! * `--quick` / `-q` — reduced sweep for smoke-testing;
//! * `--threads N` — worker threads (default: available parallelism, or
//!   `BYZCAST_THREADS`); results are bit-identical for any `N`;
//! * `--seeds N` — replicate each point over seeds `1..=N`;
//! * `--results-dir DIR` — write one JSONL record per run to
//!   `DIR/<experiment>.jsonl`;
//! * `--no-progress` — suppress the per-run progress lines on stderr.
//!
//! Aggregated tables go to stdout and depend only on the scenario and
//! seeds, never on thread count or scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use byzcast_harness::{RunnerConfig, ScenarioConfig, Workload};
use byzcast_sim::{Field, NodeId, SimConfig, SimDuration};

/// Options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct ExpOpts {
    /// Reduced sweep for smoke-testing.
    pub quick: bool,
    /// Worker threads for the runner.
    pub threads: usize,
    /// Override the replication seed count (`--seeds N` → seeds `1..=N`).
    pub seed_count: Option<usize>,
    /// Where to write per-run JSONL records.
    pub results_dir: Option<PathBuf>,
    /// Per-run progress lines on stderr.
    pub progress: bool,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            quick: false,
            threads: 1,
            seed_count: None,
            results_dir: None,
            progress: false,
        }
    }
}

/// Parses experiment options from the process arguments.
pub fn opts() -> ExpOpts {
    parse_opts(std::env::args().skip(1))
}

fn parse_opts(mut args: impl Iterator<Item = String>) -> ExpOpts {
    let mut opts = ExpOpts {
        threads: byzcast_harness::default_threads(),
        progress: true,
        ..ExpOpts::default()
    };
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" | "-q" => opts.quick = true,
            "--threads" => {
                opts.threads = value("--threads").parse().expect("--threads: not a number")
            }
            "--seeds" => {
                let n: usize = value("--seeds").parse().expect("--seeds: not a number");
                assert!(n >= 1, "--seeds: need at least 1");
                opts.seed_count = Some(n);
            }
            "--results-dir" => opts.results_dir = Some(PathBuf::from(value("--results-dir"))),
            "--no-progress" => opts.progress = false,
            _ => {} // positional args are parsed by the binaries themselves
        }
    }
    opts
}

/// Replication seeds: `1..=N` under `--seeds N`, otherwise `[1]` quick /
/// `[1, 2, 3]` full.
pub fn seeds(opts: &ExpOpts) -> Vec<u64> {
    match opts.seed_count {
        Some(count) => (1..=count as u64).collect(),
        None if opts.quick => vec![1],
        None => vec![1, 2, 3],
    }
}

/// The runner configuration for an experiment: threads, seeds, results dir
/// and progress from the options, `experiment` as the JSONL file stem.
pub fn runner(opts: &ExpOpts, experiment: &str) -> RunnerConfig {
    RunnerConfig {
        experiment: experiment.to_owned(),
        threads: opts.threads,
        seeds: seeds(opts),
        results_dir: opts.results_dir.clone(),
        progress: opts.progress,
    }
}

/// The node-count sweep of experiments R1–R3/R5 (paper-era densities on a
/// 1000 m × 1000 m field with 250 m range).
pub fn n_sweep(opts: &ExpOpts) -> Vec<usize> {
    if opts.quick {
        vec![40, 80]
    } else {
        vec![40, 60, 80, 100, 120, 140, 160]
    }
}

/// The standard scenario: 1000 m × 1000 m field, default radio (250 m range,
/// mild fading and background noise), static uniform placement.
pub fn default_scenario(n: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        n,
        sim: SimConfig {
            field: Field::new(1000.0, 1000.0),
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

/// The standard workload: a 512 B message stream at 8 msg/s from 4 senders
/// after a 10 s warm-up (overlay convergence), with a drain tail so
/// stragglers can recover. The stream is long enough that steady-state
/// per-message cost dominates the fixed gossip/beacon background.
pub fn default_workload(opts: &ExpOpts) -> Workload {
    Workload {
        senders: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        count: if opts.quick { 40 } else { 120 },
        payload_bytes: 512,
        start: SimDuration::from_secs(10),
        interval: SimDuration::from_millis(125),
        drain: SimDuration::from_secs(12),
    }
}

/// Prints the experiment banner with its provenance line.
pub fn banner(id: &str, title: &str, provenance: &str) {
    println!("== {id}: {title}");
    println!("   provenance: {provenance}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_of(args: &[&str]) -> ExpOpts {
        parse_opts(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn quick_sweeps_are_subsets() {
        let q = ExpOpts {
            quick: true,
            ..ExpOpts::default()
        };
        let f = ExpOpts::default();
        assert!(seeds(&q).len() < seeds(&f).len());
        for n in n_sweep(&q) {
            assert!(n_sweep(&f).contains(&n));
        }
    }

    #[test]
    fn flag_parsing() {
        let o = opts_of(&["--quick", "--threads", "3", "--seeds", "8"]);
        assert!(o.quick);
        assert_eq!(o.threads, 3);
        assert_eq!(seeds(&o), (1..=8).collect::<Vec<u64>>());
        let o = opts_of(&["--results-dir", "/tmp/results", "--no-progress"]);
        assert_eq!(o.results_dir, Some(PathBuf::from("/tmp/results")));
        assert!(!o.progress);
        assert!(o.threads >= 1);
    }

    #[test]
    fn runner_config_carries_options() {
        let o = opts_of(&["--seeds", "2", "--threads", "4"]);
        let r = runner(&o, "r1_overhead");
        assert_eq!(r.experiment, "r1_overhead");
        assert_eq!(r.seeds, vec![1, 2]);
        assert_eq!(r.threads, 4);
    }

    #[test]
    fn default_scenario_is_paper_geometry() {
        let s = default_scenario(100, 1);
        assert_eq!(s.n, 100);
        assert_eq!(s.sim.field.width, 1000.0);
        assert_eq!(s.sim.radio.range_m, 250.0);
    }

    #[test]
    fn default_workload_has_warmup() {
        let w = default_workload(&ExpOpts::default());
        assert!(w.start >= SimDuration::from_secs(5));
        assert_eq!(w.payload_bytes, 512);
    }
}
