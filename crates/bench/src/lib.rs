//! # byzcast-bench — experiment binaries and Criterion micro-benchmarks
//!
//! One `exp_*` binary per reconstructed experiment of the paper's evaluation
//! (see `EXPERIMENTS.md` at the repository root for the index and
//! provenance), plus Criterion benches for the protocol's hot paths.
//!
//! Every experiment binary accepts `--quick` to run a reduced sweep (fewer
//! seeds, fewer points) and prints aligned text tables to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use byzcast_harness::{ScenarioConfig, Workload};
use byzcast_sim::{Field, NodeId, SimConfig, SimDuration};

/// Options shared by all experiment binaries.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExpOpts {
    /// Reduced sweep for smoke-testing.
    pub quick: bool,
}

/// Parses experiment options from the process arguments.
pub fn opts() -> ExpOpts {
    ExpOpts {
        quick: std::env::args().any(|a| a == "--quick" || a == "-q"),
    }
}

/// Replication seeds.
pub fn seeds(opts: ExpOpts) -> Vec<u64> {
    if opts.quick {
        vec![1]
    } else {
        vec![1, 2, 3]
    }
}

/// The node-count sweep of experiments R1–R3/R5 (paper-era densities on a
/// 1000 m × 1000 m field with 250 m range).
pub fn n_sweep(opts: ExpOpts) -> Vec<usize> {
    if opts.quick {
        vec![40, 80]
    } else {
        vec![40, 60, 80, 100, 120, 140, 160]
    }
}

/// The standard scenario: 1000 m × 1000 m field, default radio (250 m range,
/// mild fading and background noise), static uniform placement.
pub fn default_scenario(n: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        n,
        sim: SimConfig {
            field: Field::new(1000.0, 1000.0),
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

/// The standard workload: a 512 B message stream at 8 msg/s from 4 senders
/// after a 10 s warm-up (overlay convergence), with a drain tail so
/// stragglers can recover. The stream is long enough that steady-state
/// per-message cost dominates the fixed gossip/beacon background.
pub fn default_workload(opts: ExpOpts) -> Workload {
    Workload {
        senders: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        count: if opts.quick { 40 } else { 120 },
        payload_bytes: 512,
        start: SimDuration::from_secs(10),
        interval: SimDuration::from_millis(125),
        drain: SimDuration::from_secs(12),
    }
}

/// Prints the experiment banner with its provenance line.
pub fn banner(id: &str, title: &str, provenance: &str) {
    println!("== {id}: {title}");
    println!("   provenance: {provenance}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweeps_are_subsets() {
        let q = ExpOpts { quick: true };
        let f = ExpOpts { quick: false };
        assert!(seeds(q).len() < seeds(f).len());
        for n in n_sweep(q) {
            assert!(n_sweep(f).contains(&n));
        }
    }

    #[test]
    fn default_scenario_is_paper_geometry() {
        let s = default_scenario(100, 1);
        assert_eq!(s.n, 100);
        assert_eq!(s.sim.field.width, 1000.0);
        assert_eq!(s.sim.radio.range_m, 250.0);
    }

    #[test]
    fn default_workload_has_warmup() {
        let w = default_workload(ExpOpts::default());
        assert!(w.start >= SimDuration::from_secs(5));
        assert_eq!(w.payload_bytes, 512);
    }
}
