//! # byzcast-baselines — the comparison protocols of the paper's evaluation
//!
//! Section 4 of the paper compares the overlay-gossip protocol against
//! *flooding*, and its introduction motivates the design by contrast with the
//! prior-art approach of maintaining *f + 1 node-independent overlays* and
//! flooding every message along each of them ([15, 34, 36]): "the price paid
//! by this approach is that every message has to be sent f + 1 times even if
//! in practice none of the devices suffered from a Byzantine fault".
//!
//! * [`flooding`] — classic flooding: every first reception is delivered and
//!   re-broadcast. Maximally robust, maximally chatty.
//! * [`multi_overlay`] — the f+1-overlays baseline: a (generously) oracle-
//!   constructed family of node-disjoint connected dominating sets, with
//!   every message flooded once per overlay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flooding;
pub mod multi_overlay;

pub use flooding::FloodingNode;
pub use multi_overlay::{plan_overlays, MoMsg, MultiOverlayNode};
