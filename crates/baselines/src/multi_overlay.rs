//! The f+1 node-independent overlays baseline.
//!
//! Prior work ([15, 34, 36] in the paper) tolerates up to `f` Byzantine nodes
//! by maintaining "f + 1 node independent overlays … and flood\[ing\] each
//! message along each of these overlays, guaranteeing that each message will
//! eventually arrive despite possible Byzantine nodes. Of course, the price
//! paid by this approach is that every message has to be sent f + 1 times
//! even if in practice none of the devices suffered from a Byzantine fault."
//!
//! The baseline is given an *oracle* overlay construction: [`plan_overlays`]
//! centrally computes `k` node-disjoint connected dominating sets from the
//! true topology (internal nodes of breadth-first spanning trees, preferring
//! nodes unused by earlier overlays). This is generous to the baseline — the
//! distributed protocols of \[15\] pay further maintenance overhead — which
//! makes the message-count comparison of experiment R1 conservative.

use std::collections::HashSet;
use std::sync::Arc;

use byzcast_core::message::{DataMsg, MessageId};
use byzcast_crypto::{Signer, Verifier};
use byzcast_sim::{AppPayload, Context, Message, NodeId, Protocol, TimerKey};

/// The baseline's wire message: a data message tagged with the overlay index
/// it is flooding along.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MoMsg {
    /// The signed data message.
    pub data: DataMsg,
    /// Which of the f+1 overlays this copy floods along.
    pub overlay: u8,
}

impl Message for MoMsg {
    fn wire_size(&self) -> usize {
        self.data.wire_size() + 1
    }
    fn kind(&self) -> &'static str {
        "data"
    }
}

/// A node participating in the f+1-overlays baseline.
pub struct MultiOverlayNode {
    id: NodeId,
    signer: Box<dyn Signer + Send>,
    verifier: Arc<dyn Verifier + Send + Sync>,
    /// `memberships[k]` — whether this node relays on overlay `k`.
    memberships: Vec<bool>,
    seen_copies: HashSet<(MessageId, u8)>,
    delivered: HashSet<MessageId>,
    next_seq: u64,
    /// Copies this node forwarded.
    pub forwards: u64,
    /// Receptions dropped for bad signatures.
    pub bad_signatures: u64,
}

impl MultiOverlayNode {
    /// Creates a node with its overlay membership vector (one flag per
    /// overlay, as produced by [`plan_overlays`]).
    ///
    /// # Panics
    ///
    /// Panics if `signer` does not sign as `id` or `memberships` is empty.
    pub fn new(
        id: NodeId,
        memberships: Vec<bool>,
        signer: Box<dyn Signer + Send>,
        verifier: Arc<dyn Verifier + Send + Sync>,
    ) -> Self {
        assert_eq!(signer.id().0, id.0, "signer must sign as the node's own id");
        assert!(!memberships.is_empty(), "need at least one overlay");
        MultiOverlayNode {
            id,
            signer,
            verifier,
            memberships,
            seen_copies: HashSet::new(),
            delivered: HashSet::new(),
            next_seq: 0,
            forwards: 0,
            bad_signatures: 0,
        }
    }

    /// Number of overlays this node relays on.
    pub fn membership_count(&self) -> usize {
        self.memberships.iter().filter(|&&m| m).count()
    }
}

impl Protocol for MultiOverlayNode {
    type Msg = MoMsg;

    fn on_packet(&mut self, ctx: &mut Context<'_, MoMsg>, _from: NodeId, msg: &MoMsg) {
        let k = msg.overlay as usize;
        if k >= self.memberships.len() {
            return; // copy for an overlay this run does not have
        }
        if self.seen_copies.contains(&(msg.data.id, msg.overlay)) {
            return;
        }
        if !msg.data.verify(self.verifier.as_ref()) {
            self.bad_signatures += 1;
            return;
        }
        self.seen_copies.insert((msg.data.id, msg.overlay));
        if self.delivered.insert(msg.data.id) {
            ctx.deliver(msg.data.id.origin, msg.data.payload_id);
        }
        if self.memberships[k] {
            ctx.send(*msg);
            self.forwards += 1;
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, MoMsg>, _timer: TimerKey) {}

    fn on_app_broadcast(&mut self, ctx: &mut Context<'_, MoMsg>, payload: AppPayload) {
        self.next_seq += 1;
        let data = DataMsg::sign(
            self.signer.as_ref(),
            self.next_seq,
            payload.id,
            payload.size_bytes as u32,
        );
        self.delivered.insert(data.id);
        ctx.deliver(self.id, payload.id);
        // "Every message has to be sent f + 1 times": one copy per overlay.
        for k in 0..self.memberships.len() as u8 {
            self.seen_copies.insert((data.id, k));
            ctx.send(MoMsg { data, overlay: k });
        }
    }
}

/// Centrally plans `k` node-disjoint connected dominating sets over the
/// ground-truth adjacency. Overlay `j` is the set of internal nodes of a
/// breadth-first spanning tree rooted to avoid nodes used by overlays
/// `< j`; when disjointness cannot be kept (sparse graphs), reuse is allowed
/// (and counted by comparing memberships).
///
/// Returns `memberships[node][overlay]`.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn plan_overlays(adj: &[Vec<NodeId>], k: u8, seed: u64) -> Vec<Vec<bool>> {
    assert!(k > 0, "need at least one overlay");
    let n = adj.len();
    let mut memberships = vec![vec![false; k as usize]; n];
    let mut used = vec![false; n];
    let mut rng = byzcast_sim::SimRng::new(seed);

    let _ = &mut rng; // reserved for future randomized tie-breaking

    for overlay in 0..k as usize {
        let mut visited = vec![false; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut roots: Vec<usize> = Vec::new();
        // One spanning tree per connected component (disconnected graphs
        // must still have every component covered). Root choice: an
        // unvisited node, preferring unused ones with maximal degree so
        // earlier overlays' relays stay out of this one.
        while let Some(root) = (0..n)
            .filter(|&i| !visited[i])
            .max_by_key(|&i| (!used[i], adj[i].len(), usize::MAX - i))
        {
            roots.push(root);
            visited[root] = true;
            // Two-tier BFS frontier: unused nodes expand first, so they
            // become the internal (relay) nodes where possible.
            let mut fresh: std::collections::VecDeque<usize> = [root].into();
            let mut stale: std::collections::VecDeque<usize> = Default::default();
            while let Some(u) = fresh.pop_front().or_else(|| stale.pop_front()) {
                for &v in &adj[u] {
                    let vi = v.index();
                    if !visited[vi] {
                        visited[vi] = true;
                        parent[vi] = Some(u);
                        if used[vi] {
                            stale.push_back(vi);
                        } else {
                            fresh.push_back(vi);
                        }
                    }
                }
            }
        }
        // Internal nodes of the trees = nodes that are some node's parent.
        let mut internal = vec![false; n];
        for &p in parent.iter().flatten() {
            internal[p] = true;
        }
        // A component root with no children (isolated node) relays itself.
        for root in roots {
            if !internal[root] && !adj[root].iter().any(|v| internal[v.index()]) {
                internal[root] = true;
            }
        }
        for (v, row) in memberships.iter_mut().enumerate() {
            if internal[v] {
                row[overlay] = true;
                used[v] = true;
            }
        }
    }
    memberships
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};
    use byzcast_sim::node::Action;
    use byzcast_sim::{SimRng, SimTime};

    fn keys() -> KeyRegistry<SimScheme> {
        KeyRegistry::generate(9, 8)
    }

    fn drive(
        n: &mut MultiOverlayNode,
        f: impl FnOnce(&mut MultiOverlayNode, &mut Context<'_, MoMsg>),
    ) -> Vec<Action<MoMsg>> {
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        {
            let mut ctx = Context::new(n.id, SimTime::from_secs(1), &mut rng, &mut actions);
            f(n, &mut ctx);
        }
        actions
    }

    #[test]
    fn broadcast_sends_one_copy_per_overlay() {
        let reg = keys();
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        let mut n = MultiOverlayNode::new(
            NodeId(0),
            vec![false, false, false],
            Box::new(reg.signer(SignerId(0))),
            verifier,
        );
        let actions = drive(&mut n, |n, ctx| {
            n.on_app_broadcast(
                ctx,
                AppPayload {
                    id: 1,
                    size_bytes: 64,
                },
            )
        });
        let sends = actions
            .iter()
            .filter(|a| matches!(a, Action::Send(_)))
            .count();
        assert_eq!(sends, 3, "f+1 copies expected");
    }

    #[test]
    fn member_forwards_only_its_overlay_and_delivers_once() {
        let reg = keys();
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        let mut n = MultiOverlayNode::new(
            NodeId(1),
            vec![true, false],
            Box::new(reg.signer(SignerId(1))),
            verifier,
        );
        let data = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        // Copy on overlay 0: member → forward + deliver.
        let a0 = drive(&mut n, |n, ctx| {
            n.on_packet(ctx, NodeId(0), &MoMsg { data, overlay: 0 })
        });
        assert_eq!(
            a0.iter().filter(|a| matches!(a, Action::Send(_))).count(),
            1
        );
        assert_eq!(
            a0.iter()
                .filter(|a| matches!(a, Action::Deliver { .. }))
                .count(),
            1
        );
        // Copy on overlay 1: not a member → deliver already done, no forward.
        let a1 = drive(&mut n, |n, ctx| {
            n.on_packet(ctx, NodeId(0), &MoMsg { data, overlay: 1 })
        });
        assert!(
            a1.is_empty()
                || a1
                    .iter()
                    .all(|a| !matches!(a, Action::Send(_) | Action::Deliver { .. }))
        );
        assert_eq!(n.forwards, 1);
        assert_eq!(n.membership_count(), 1);
    }

    #[test]
    fn bad_signature_copies_are_dropped() {
        let reg = keys();
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        let mut n = MultiOverlayNode::new(
            NodeId(1),
            vec![true],
            Box::new(reg.signer(SignerId(1))),
            verifier,
        );
        let mut data = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        data.payload_id = 99;
        let a = drive(&mut n, |n, ctx| {
            n.on_packet(ctx, NodeId(0), &MoMsg { data, overlay: 0 })
        });
        assert!(a.is_empty());
        assert_eq!(n.bad_signatures, 1);
    }

    /// Path graph of `n` nodes as adjacency lists.
    fn path_adj(n: usize) -> Vec<Vec<NodeId>> {
        (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(NodeId(i as u32 - 1));
                }
                if i + 1 < n {
                    v.push(NodeId(i as u32 + 1));
                }
                v
            })
            .collect()
    }

    /// Complete graph of `n` nodes.
    fn complete_adj(n: usize) -> Vec<Vec<NodeId>> {
        (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| NodeId(j as u32))
                    .collect()
            })
            .collect()
    }

    fn overlay_nodes(memberships: &[Vec<bool>], k: usize) -> Vec<bool> {
        memberships.iter().map(|m| m[k]).collect()
    }

    #[test]
    fn planned_overlays_dominate_and_connect() {
        use byzcast_sim::NodeId as N;
        let adj = complete_adj(10);
        let m = plan_overlays(&adj, 3, 1);
        for k in 0..3 {
            let overlay = overlay_nodes(&m, k);
            assert!(overlay.iter().any(|&b| b), "overlay {k} empty");
            // Domination: every node in overlay or adjacent to a member.
            for i in 0..10 {
                let ok = overlay[i] || adj[i].iter().any(|v: &N| overlay[v.index()]);
                assert!(ok, "node {i} uncovered in overlay {k}");
            }
        }
        // Disjointness on a dense graph.
        for node in &m {
            assert!(
                node.iter().filter(|&&b| b).count() <= 1,
                "overlap on dense graph"
            );
        }
    }

    #[test]
    fn sparse_graphs_allow_reuse_but_still_cover() {
        let adj = path_adj(6);
        let m = plan_overlays(&adj, 2, 1);
        for k in 0..2 {
            let overlay = overlay_nodes(&m, k);
            for i in 0..6 {
                let ok = overlay[i] || adj[i].iter().any(|v| overlay[v.index()]);
                assert!(ok, "node {i} uncovered in overlay {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one overlay")]
    fn zero_overlays_panics() {
        plan_overlays(&path_adj(3), 0, 1);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};
    use byzcast_sim::node::Action;
    use byzcast_sim::{SimRng, SimTime};

    fn drive(
        n: &mut MultiOverlayNode,
        f: impl FnOnce(&mut MultiOverlayNode, &mut Context<'_, MoMsg>),
    ) -> Vec<Action<MoMsg>> {
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        {
            let mut ctx = Context::new(n.id, SimTime::from_secs(1), &mut rng, &mut actions);
            f(n, &mut ctx);
        }
        actions
    }

    #[test]
    fn same_message_on_two_overlays_forwards_twice_delivers_once() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(4, 4);
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        let mut n = MultiOverlayNode::new(
            NodeId(1),
            vec![true, true],
            Box::new(reg.signer(SignerId(1))),
            verifier,
        );
        let data = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        let mut deliveries = 0;
        let mut forwards = 0;
        for overlay in [0u8, 1, 0, 1] {
            let actions = drive(&mut n, |n, ctx| {
                n.on_packet(ctx, NodeId(0), &MoMsg { data, overlay })
            });
            deliveries += actions
                .iter()
                .filter(|a| matches!(a, Action::Deliver { .. }))
                .count();
            forwards += actions
                .iter()
                .filter(|a| matches!(a, Action::Send(_)))
                .count();
        }
        assert_eq!(deliveries, 1, "payload must reach the app once");
        assert_eq!(
            forwards, 2,
            "one forward per overlay copy, duplicates dropped"
        );
        assert_eq!(n.forwards, 2);
    }

    #[test]
    fn copies_for_unknown_overlays_are_ignored() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(4, 4);
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        let mut n = MultiOverlayNode::new(
            NodeId(1),
            vec![true],
            Box::new(reg.signer(SignerId(1))),
            verifier,
        );
        let data = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        let actions = drive(&mut n, |n, ctx| {
            n.on_packet(ctx, NodeId(0), &MoMsg { data, overlay: 9 })
        });
        assert!(actions.is_empty());
    }

    #[test]
    fn wire_size_accounts_for_the_overlay_tag() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(4, 1);
        let data = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        let m = MoMsg { data, overlay: 0 };
        assert_eq!(m.wire_size(), data.wire_size() + 1);
        assert_eq!(m.kind(), "data");
    }

    #[test]
    fn later_overlays_prefer_unused_relays_on_dense_graphs() {
        // On a complete graph, overlays must be pairwise disjoint.
        let n = 12;
        let adj: Vec<Vec<NodeId>> = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| NodeId(j as u32))
                    .collect()
            })
            .collect();
        let m = plan_overlays(&adj, 4, 7);
        for node in &m {
            assert!(
                node.iter().filter(|&&b| b).count() <= 1,
                "node reused across overlays on a complete graph"
            );
        }
        // Every overlay is non-empty.
        for k in 0..4 {
            assert!(m.iter().any(|node| node[k]), "overlay {k} empty");
        }
    }

    #[test]
    #[should_panic(expected = "at least one overlay")]
    fn empty_membership_vector_panics() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(4, 1);
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        let _ = MultiOverlayNode::new(
            NodeId(0),
            vec![],
            Box::new(reg.signer(SignerId(0))),
            verifier,
        );
    }
}
